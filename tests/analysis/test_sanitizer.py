"""Pipeline invariant sanitizer: clean runs stay clean, broken ones trap."""

from __future__ import annotations

import pytest

from tests.conftest import ALL_MECHANISMS, make_sim, run_to_halt
from repro.analysis.sanitizer import PipelineSanitizer, SanitizerError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import DataSegment
from repro.pipeline.core import SMTCore
from repro.pipeline.thread import ThreadState
from repro.pipeline.uop import Uop, UopState

COUNTDOWN = """
main:
    li   r1, 20
loop:
    sub  r1, r1, 1
    bne  r1, r0, loop
    halt
"""


def _missing_loop(data_base: int) -> tuple[str, list[DataSegment]]:
    """A kernel whose loads alternate between two pages (DTLB thrash)."""
    source = f"""
    main:
        li   r1, {data_base}
        li   r5, 5
        li   r7, 0
    loop:
        ld   r6, 0(r1)
        ld   r9, 8192(r1)
        add  r7, r7, r6
        add  r7, r7, r9
        sub  r5, r5, 1
        bne  r5, r0, loop
        halt
    """
    segments = [
        DataSegment(base=data_base, words=[1]),
        DataSegment(base=data_base + 8192, words=[2]),
    ]
    return source, segments


def _fresh_parts(sanitize: bool = True):
    sim = make_sim(COUNTDOWN, sanitize=sanitize)
    core = sim.core
    return core, core.threads[0], core._sanitizer


def _window_uop(seq: int, now: int = 0) -> Uop:
    uop = Uop(seq, 0, 0, Instruction(op=Opcode.NOP))
    uop.state = UopState.WINDOW
    uop.issued = True
    uop.finish_cycle = now
    return uop


class TestEnablement:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        sim = make_sim(COUNTDOWN)
        assert sim.core._sanitizer is None
        assert sim.core.window.sanitizer is None

    def test_config_flag_attaches(self):
        core, _, sanitizer = _fresh_parts()
        assert isinstance(sanitizer, PipelineSanitizer)
        assert core.window.sanitizer is sanitizer

    def test_env_flag_attaches(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sim = make_sim(COUNTDOWN)
        assert isinstance(sim.core._sanitizer, PipelineSanitizer)

    def test_env_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        sim = make_sim(COUNTDOWN)
        assert sim.core._sanitizer is None


class TestCleanRuns:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS + ("perfect",))
    def test_sanitized_run_matches_plain(self, mechanism, data_base):
        source, segments = _missing_loop(data_base)
        plain = make_sim(
            source, mechanism=mechanism, dtlb_entries=1, segments=segments
        )
        sanitized = make_sim(
            source,
            mechanism=mechanism,
            dtlb_entries=1,
            segments=segments,
            sanitize=True,
        )
        cycles_plain = run_to_halt(plain)
        cycles_sanitized = run_to_halt(sanitized)
        assert cycles_plain == cycles_sanitized
        assert sanitized.core.threads[0].arch.read_int(7) == 15


class TestHookChecks:
    def test_double_retire_trips_lifecycle(self):
        _, thread, sanitizer = _fresh_parts()
        uop = _window_uop(0)
        uop.state = UopState.RETIRED
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_retire(thread, uop, 0)
        assert exc.value.code == "uop-lifecycle"
        assert "twice" in str(exc.value)

    def test_squashed_uop_retiring_trips_lifecycle(self):
        _, thread, sanitizer = _fresh_parts()
        uop = _window_uop(0)
        uop.state = UopState.SQUASHED
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_retire(thread, uop, 0)
        assert exc.value.code == "uop-lifecycle"
        assert "squashed" in str(exc.value)

    def test_non_head_retire_trips_rob_order(self):
        _, thread, sanitizer = _fresh_parts()
        head, straggler = _window_uop(0), _window_uop(1)
        thread.rob.append(head)
        thread.rob.append(straggler)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_retire(thread, straggler, 0)
        assert exc.value.code == "rob-order"

    def test_unfinished_uop_trips_retire_early(self):
        _, thread, sanitizer = _fresh_parts()
        uop = _window_uop(0)
        uop.issued = False
        thread.rob.append(uop)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_retire(thread, uop, 0)
        assert exc.value.code == "retire-early"

    def test_sequence_regression_trips_monotonic(self):
        _, thread, sanitizer = _fresh_parts()
        sanitizer._last_retired_seq[thread.tid] = 100
        uop = _window_uop(5)
        thread.rob.append(uop)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_retire(thread, uop, 0)
        assert exc.value.code == "retire-monotonic"

    def test_linked_handler_blocks_retire(self):
        core, thread, sanitizer = _fresh_parts()
        uop = _window_uop(0)
        uop.linked_handler = core.threads[1]
        thread.rob.append(uop)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_retire(thread, uop, 0)
        assert exc.value.code == "splice-order"

    def test_handler_retire_without_parked_master(self):
        core, thread, sanitizer = _fresh_parts()
        handler_thread = core.threads[1]
        handler_thread.state = ThreadState.EXCEPTION
        handler_thread.master_tid = thread.tid
        handler_thread.master_uop = _window_uop(0)
        uop = _window_uop(1)
        handler_thread.rob.append(uop)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_retire(handler_thread, uop, 0)
        assert exc.value.code == "splice-order"

    def test_double_insert_trips_lifecycle(self):
        core, _, sanitizer = _fresh_parts()
        uop = _window_uop(0)
        core.window.insert(uop)
        with pytest.raises(SanitizerError) as exc:
            core.window.insert(uop)
        assert exc.value.code == "uop-lifecycle"

    def test_window_overflow_trips_occupancy(self):
        core, _, sanitizer = _fresh_parts()
        core.window._occupancy = core.window.capacity
        with pytest.raises(SanitizerError) as exc:
            core.window.insert(_window_uop(0))
        assert exc.value.code == "occupancy"

    def test_occupancy_recount_catches_drift(self):
        core, _, sanitizer = _fresh_parts()
        core.window._occupancy += 3  # simulate accounting drift
        with pytest.raises(SanitizerError) as exc:
            sanitizer._verify_occupancy(0)
        assert exc.value.code == "occupancy"

    def test_error_carries_cycle_and_trace(self):
        _, thread, sanitizer = _fresh_parts()
        good = _window_uop(0)
        thread.rob.append(good)
        sanitizer.on_retire(thread, good, 0)
        thread.rob.popleft()
        good.state = UopState.RETIRED
        thread.rob.append(good)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_retire(thread, good, 7)
        assert exc.value.cycle == 7
        assert "last pipeline events" in str(exc.value)
        assert "retire" in str(exc.value)


class TestBrokenSplice:
    def test_broken_splice_ordering_is_caught(self, data_base, monkeypatch):
        """Retiring without the splice gates must raise, not corrupt."""

        def broken_retire(self, now):
            # The real _retire minus both splice gates: handler uops may
            # retire while the master runs ahead, and the excepting uop
            # may retire while its handler is still linked.
            threads = self.threads
            do_retire = self._do_retire
            progress = True
            while progress:
                progress = False
                for thread in threads:
                    if thread.state is ThreadState.IDLE:
                        continue
                    rob = thread.rob
                    if not rob:
                        continue
                    head = rob[0]
                    if not head.issued or head.finish_cycle > now:
                        continue
                    if head.state != UopState.WINDOW:
                        continue
                    do_retire(thread, head, now)
                    progress = True

        monkeypatch.setattr(SMTCore, "_retire", broken_retire)
        source, segments = _missing_loop(data_base)
        sim = make_sim(
            source,
            mechanism="multithreaded",
            dtlb_entries=1,
            segments=segments,
            sanitize=True,
        )
        with pytest.raises(SanitizerError) as exc:
            run_to_halt(sim)
        assert exc.value.code == "splice-order"
