"""Guest-program static analyzer: every diagnostic has a fixture."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.guest import analyze_program, analyze_source, analyze_unit
from repro.isa.instructions import Instruction, Opcode
from repro.workloads import BENCHMARKS, build_benchmark

FIXTURES = Path(__file__).parent / "fixtures"


def codes(diagnostics):
    return {d.code for d in diagnostics}


def analyze_fixture(name: str, **kwargs):
    return analyze_source((FIXTURES / name).read_text(), unit=name, **kwargs)


class TestSourceFixtures:
    @pytest.mark.parametrize(
        "fixture, expected, is_error",
        [
            ("undefined_label.s", "undefined-label", True),
            ("duplicate_label.s", "duplicate-label", True),
            ("read_never_written.s", "read-never-written", True),
            ("fall_through_end.s", "fall-through-end", True),
            ("priv_outside_pal.s", "priv-outside-pal", True),
            ("unreachable.s", "unreachable-code", False),
            ("read_before_def.s", "read-before-def", False),
        ],
    )
    def test_each_diagnostic_fires(self, fixture, expected, is_error):
        diagnostics = analyze_fixture(fixture)
        matching = [d for d in diagnostics if d.code == expected]
        assert matching, f"{fixture} did not raise {expected}: {diagnostics}"
        assert all(d.is_error == is_error for d in matching)

    def test_clean_fixture_is_clean(self):
        assert analyze_fixture("clean.s") == []

    def test_inline_suppression_silences_the_finding(self):
        assert "read-never-written" in codes(
            analyze_fixture("read_never_written.s")
        )
        assert analyze_fixture("suppressed.s") == []

    def test_unit_suppression_silences_the_finding(self):
        diagnostics = analyze_fixture(
            "read_never_written.s", suppress=("read-never-written",)
        )
        assert "read-never-written" not in codes(diagnostics)

    def test_diagnostics_carry_locations(self):
        (diag,) = [
            d
            for d in analyze_fixture("read_never_written.s")
            if d.code == "read-never-written"
        ]
        assert diag.pc == 1  # second instruction
        assert diag.line == 5  # source line of the add
        assert diag.label == "main"


class TestHandBuiltUnits:
    """Checks that need Program-level shapes the assembler can't emit."""

    def test_target_out_of_range(self):
        insts = [Instruction(op=Opcode.JMP, target=99)]
        diagnostics = analyze_unit(insts, {}, roots={0})
        assert "target-out-of-range" in codes(diagnostics)

    def test_unresolved_target(self):
        insts = [Instruction(op=Opcode.JMP), Instruction(op=Opcode.HALT)]
        diagnostics = analyze_unit(insts, {}, roots={0})
        assert "unresolved-target" in codes(diagnostics)

    def test_user_branch_into_pal(self):
        insts = [
            Instruction(op=Opcode.JMP, target=1),
            Instruction(op=Opcode.NOP, privileged=True),
            Instruction(op=Opcode.HALT, privileged=True),
        ]
        diagnostics = analyze_unit(insts, {}, roots={0})
        assert "branch-into-pal" in codes(diagnostics)

    def test_handler_branch_out_of_pal_warns(self):
        insts = [
            Instruction(op=Opcode.JMP, target=1, privileged=True),
            Instruction(op=Opcode.HALT),
        ]
        diagnostics = analyze_unit(insts, {}, roots={0})
        matching = [d for d in diagnostics if d.code == "branch-out-of-pal"]
        assert matching and not matching[0].is_error

    def test_fall_through_privilege_boundary(self):
        insts = [
            Instruction(op=Opcode.NOP),
            Instruction(op=Opcode.NOP, privileged=True),
            Instruction(op=Opcode.HALT, privileged=True),
        ]
        diagnostics = analyze_unit(insts, {}, roots={0})
        assert "fall-through-pal" in codes(diagnostics)

    def test_priv_op_outside_pal_in_assembled_program(self):
        insts = [Instruction(op=Opcode.RETI), Instruction(op=Opcode.HALT)]
        diagnostics = analyze_unit(insts, {}, roots={0})
        assert "priv-outside-pal" in codes(diagnostics)

    def test_label_out_of_range_warns(self):
        insts = [Instruction(op=Opcode.HALT)]
        diagnostics = analyze_unit(insts, {"ghost": 7}, roots={0})
        assert "label-out-of-range" in codes(diagnostics)


class TestIndirectFlow:
    def test_jump_table_blocks_not_reported_unreachable(self):
        source = """
        main:
            li    r1, 1
            jmpi  r1
        case0:
            halt
        case1:
            halt
        """
        diagnostics = analyze_source(source, unit="jmpi")
        assert "unreachable-code" not in codes(diagnostics)

    def test_label_roots_do_not_fake_read_before_def(self):
        # r2 is written before the indirect jump; the case block reading
        # it must not warn just because its caller context is unknown.
        source = """
        main:
            li    r1, 1
            li    r2, 42
            jmpi  r1
        case0:
            add   r3, r2, r0
            halt
        """
        diagnostics = analyze_source(source, unit="jmpi-defs")
        assert "read-before-def" not in codes(diagnostics)


class TestShippedTree:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmarks_have_no_errors(self, name):
        import importlib

        module = importlib.import_module(BENCHMARKS[name].build.__module__)
        suppress = getattr(module, "LINT_OK", ())
        diagnostics = analyze_program(
            build_benchmark(name), unit=name, suppress=suppress
        )
        assert diagnostics == [], diagnostics

    def test_handler_images_are_clean(self):
        from repro.exceptions import handler_code

        for name in ("DTLB_HANDLER_SOURCE", "EMUL_HANDLER_SOURCE"):
            diagnostics = analyze_source(
                getattr(handler_code, name), privileged=True, unit=name
            )
            assert diagnostics == [], (name, diagnostics)
