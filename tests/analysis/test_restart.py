"""Tests for the restartability pass (``repro.analysis.restart``).

Two halves:

* the shipped handler images for every mechanism must verify clean, and
* each diagnostic has a broken fixture under
  ``tests/analysis/fixtures/restart/`` that must trip it -- including the
  two back-to-back-trap bugs found by the PR 5 fuzzer, which this pass
  must now reject statically.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.restart import (
    MECHANISMS,
    analyze_handler_source,
    lint_mechanism_handlers,
    mechanism_images,
)

FIXTURES = Path(__file__).parent / "fixtures" / "restart"


def _lint_fixture(name):
    path = FIXTURES / name
    return analyze_handler_source(path.read_text(), unit=path.stem, file=str(path))


class TestShippedHandlers:
    def test_all_mechanisms_verify_clean(self):
        assert lint_mechanism_handlers() == []

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_each_mechanism_clean(self, mechanism):
        assert lint_mechanism_handlers([mechanism]) == []

    def test_perfect_has_no_images(self):
        assert mechanism_images("perfect") == {}

    @pytest.mark.parametrize(
        "mechanism", [m for m in MECHANISMS if m != "perfect"]
    )
    def test_trap_mechanisms_expose_images(self, mechanism):
        images = mechanism_images(mechanism)
        assert images, f"{mechanism} should ship at least one handler image"
        for source in images.values():
            assert "reti" in source

    def test_every_scenario_cause_image_is_discovered(self):
        # The new restartable causes ship real PAL images; the pass
        # must pick them up through the same *_SOURCE discovery as the
        # DTLB handler, not a hand-maintained list.
        images = mechanism_images("traditional")
        for name in ("dtlb_handler", "emul_handler", "itlb_miss_handler",
                     "unaligned_handler", "brev_handler", "swint_handler"):
            assert name in images, sorted(images)


class TestBrokenFixtures:
    """Each diagnostic code must fire on its dedicated broken handler."""

    @pytest.mark.parametrize(
        ("fixture", "code", "severity"),
        [
            ("clobber_user_reg.s", "restart-clobber-user-reg", Severity.ERROR),
            ("store_unreverted.s", "restart-store-unreverted", Severity.ERROR),
            ("clobber_priv_latch.s", "restart-clobber-priv-latch", Severity.ERROR),
            ("no_reti.s", "restart-no-reti", Severity.ERROR),
            ("save_not_restored.s", "restart-save-not-restored", Severity.WARNING),
            ("indirect_flow.s", "restart-indirect-flow", Severity.WARNING),
        ],
    )
    def test_fixture_trips_expected_code(self, fixture, code, severity):
        diags = _lint_fixture(fixture)
        assert diags, f"{fixture} should produce diagnostics"
        assert {d.code for d in diags} == {code}
        assert all(d.severity is severity for d in diags)

    def test_clobber_flags_every_pass_through_register(self):
        # r9 and r12 both bypass the PAL shadow bank: two distinct sites.
        diags = _lint_fixture("clobber_user_reg.s")
        assert [d.pc for d in diags] == [1, 2]

    def test_store_flagged_only_before_reversion(self):
        # The store sits before hardexc, so only the store itself fires;
        # the reversion point is not double-reported.
        diags = _lint_fixture("store_unreverted.s")
        assert len(diags) == 1
        assert diags[0].pc == 2


class TestBackToBackTrapRegressions:
    """The two PR 5 fuzz-found bugs, rejected statically."""

    def test_stale_generation_retry_loop(self):
        # Pattern (a): a retry branch back across tlbwr lets a stale
        # handler generation re-commit a TLB write.
        diags = _lint_fixture("back_to_back_stale.s")
        assert [d.code for d in diags] == ["restart-recommit"]
        assert diags[0].is_error
        assert "tlbwr" in diags[0].message.lower() or "commit" in diags[0].message.lower()

    def test_two_generation_mtdst(self):
        # Pattern (b): a path exists executing mtdst twice, renaming an
        # old generation's result against the newer trap's EXC_DST latch.
        diags = _lint_fixture("two_generation_mtdst.s")
        assert [d.code for d in diags] == ["restart-recommit"]
        assert diags[0].is_error
        # The second mtdst (on the second_gen path) is the flagged site.
        assert diags[0].pc == 5
        assert diags[0].label == "second_gen"


class TestSuppression:
    def test_inline_ok_comment_suppresses(self):
        assert _lint_fixture("suppressed.s") == []

    def test_suppression_is_code_specific(self):
        source = (
            "entry:\n"
            "    mfpr  r1, VA\n"
            "    mtpr  EXC_PC, r1   ; lint: ok(some-other-code)\n"
            "    reti\n"
        )
        diags = analyze_handler_source(source, unit="t", file="<test>")
        assert [d.code for d in diags] == ["restart-clobber-priv-latch"]


class TestMalformedSource:
    def test_assembler_error_becomes_diagnostic(self):
        diags = analyze_handler_source("entry:\n    mtpr r1\n", unit="t", file="<t>")
        assert [d.code for d in diags] == ["asm-error"]
        assert diags[0].is_error
