"""repro-lint CLI: exit codes, formats, and target handling."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

ERROR_FIXTURES = [
    "undefined_label.s",
    "duplicate_label.s",
    "read_never_written.s",
    "fall_through_end.s",
    "priv_outside_pal.s",
]


class TestExitCodes:
    @pytest.mark.parametrize("fixture", ERROR_FIXTURES)
    def test_each_seeded_bad_fixture_fails(self, fixture, capsys):
        assert main(["guest", str(FIXTURES / fixture)]) == 1
        out = capsys.readouterr().out
        assert "error[" in out

    def test_clean_fixture_passes(self, capsys):
        assert main(["guest", str(FIXTURES / "clean.s")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warning_fixture_passes_unless_strict(self, capsys):
        target = str(FIXTURES / "unreachable.s")
        assert main(["guest", target]) == 0
        assert main(["guest", target, "--strict"]) == 1

    def test_shipped_tree_is_clean(self, capsys):
        assert main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_target_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["guest", "no-such-benchmark"])


class TestFormats:
    def test_json_payload_shape(self, capsys):
        code = main(
            ["guest", str(FIXTURES / "undefined_label.s"), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] >= 1
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "undefined-label"
        assert diag["severity"] == "error"
        assert diag["passname"] == "guest"

    def test_format_flag_works_before_subcommand_too(self, capsys):
        assert main(["--format", "json", "arch"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"diagnostics": [], "errors": 0, "warnings": 0}


class TestTargets:
    def test_benchmark_by_name(self, capsys):
        assert main(["guest", "compress"]) == 0

    def test_arch_on_fixture_tree_fails(self, capsys):
        badarch = FIXTURES / "badarch"
        assert main(["arch", "--root", str(badarch)]) == 1
        out = capsys.readouterr().out
        assert "missing-slots" in out
        assert "layering" in out


class TestNewSubcommands:
    def test_parity_subcommand_is_clean(self, capsys):
        assert main(["parity"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_parity_selftest(self, capsys):
        assert main(["parity", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest" in out

    def test_restart_subcommand_is_clean(self, capsys):
        assert main(["restart"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_restart_on_broken_fixture_fails(self, capsys):
        bad = FIXTURES / "restart" / "no_reti.s"
        assert main(["restart", str(bad)]) == 1
        assert "restart-no-reti" in capsys.readouterr().out

    def test_default_sweep_runs_all_four_passes(self, capsys):
        assert main([]) == 0
        assert "clean" in capsys.readouterr().out


class TestSarif:
    def test_sarif_payload_shape(self, capsys):
        bad = FIXTURES / "restart" / "clobber_priv_latch.s"
        assert main(["restart", str(bad), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert "sarif-2.1.0" in payload["$schema"]
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "restart-clobber-priv-latch" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "restart-clobber-priv-latch"
        assert result["level"] == "error"
        assert result["message"]["text"]
        (loc,) = result["locations"]
        uri = loc["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("clobber_priv_latch.s")

    def test_sarif_clean_run_has_empty_results(self, capsys):
        assert main(["arch", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []

    def test_json_format_unchanged_by_new_flags(self, capsys):
        # Byte-compat anchor: the json payload shape must not grow keys.
        assert main(["--format", "json", "arch"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"diagnostics": [], "errors": 0, "warnings": 0}


class TestBaseline:
    def test_update_baseline_records_findings(self, tmp_path, capsys):
        bad = FIXTURES / "restart" / "clobber_priv_latch.s"
        baseline = tmp_path / "baseline.json"
        code = main(
            ["restart", str(bad), "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        assert len(payload["fingerprints"]) == 1
        assert "restart-clobber-priv-latch" in payload["fingerprints"][0]

    def test_baseline_accepts_preexisting_findings(self, tmp_path, capsys):
        bad = FIXTURES / "restart" / "clobber_priv_latch.s"
        baseline = tmp_path / "baseline.json"
        main(["restart", str(bad), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        assert main(["restart", str(bad), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_new_finding_still_fails_with_baseline(self, tmp_path, capsys):
        # Baseline only the latch clobber, then lint a file that also
        # trips a *new* code: the run must still fail on the new finding.
        baseline = tmp_path / "baseline.json"
        main(
            [
                "restart",
                str(FIXTURES / "restart" / "clobber_priv_latch.s"),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "restart",
                str(FIXTURES / "restart" / "no_reti.s"),
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        assert "restart-no-reti" in capsys.readouterr().out

    def test_update_baseline_requires_baseline_path(self):
        with pytest.raises(SystemExit) as exc:
            main(["restart", "--update-baseline"])
        assert exc.value.code == 2
