"""repro-lint CLI: exit codes, formats, and target handling."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

ERROR_FIXTURES = [
    "undefined_label.s",
    "duplicate_label.s",
    "read_never_written.s",
    "fall_through_end.s",
    "priv_outside_pal.s",
]


class TestExitCodes:
    @pytest.mark.parametrize("fixture", ERROR_FIXTURES)
    def test_each_seeded_bad_fixture_fails(self, fixture, capsys):
        assert main(["guest", str(FIXTURES / fixture)]) == 1
        out = capsys.readouterr().out
        assert "error[" in out

    def test_clean_fixture_passes(self, capsys):
        assert main(["guest", str(FIXTURES / "clean.s")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warning_fixture_passes_unless_strict(self, capsys):
        target = str(FIXTURES / "unreachable.s")
        assert main(["guest", target]) == 0
        assert main(["guest", target, "--strict"]) == 1

    def test_shipped_tree_is_clean(self, capsys):
        assert main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_target_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["guest", "no-such-benchmark"])


class TestFormats:
    def test_json_payload_shape(self, capsys):
        code = main(
            ["guest", str(FIXTURES / "undefined_label.s"), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] >= 1
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "undefined-label"
        assert diag["severity"] == "error"
        assert diag["passname"] == "guest"

    def test_format_flag_works_before_subcommand_too(self, capsys):
        assert main(["--format", "json", "arch"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"diagnostics": [], "errors": 0, "warnings": 0}


class TestTargets:
    def test_benchmark_by_name(self, capsys):
        assert main(["guest", "compress"]) == 0

    def test_arch_on_fixture_tree_fails(self, capsys):
        badarch = FIXTURES / "badarch"
        assert main(["arch", "--root", str(badarch)]) == 1
        out = capsys.readouterr().out
        assert "missing-slots" in out
        assert "layering" in out
