; seeded-bad: r5 is read but no instruction ever writes it
; -> read-never-written
main:
    li   r1, 1
    add  r2, r5, r1
    halt
