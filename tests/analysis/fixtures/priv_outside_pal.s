; seeded-bad: reti is a privileged instruction; this unit is user code
; -> priv-outside-pal
main:
    li   r1, 1
    reti
    halt
