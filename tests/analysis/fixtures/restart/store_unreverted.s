; Broken handler: memory store before the hardexc reversion point.
; If the handler is squashed after the store retires (back-to-back
; trap), the replayed generation applies the store a second time.
entry:
    mfpr  r1, VA
    mfpr  r2, PTBR
    st    r1, 0(r2)
    hardexc
    reti
