; A deliberate latch write, acknowledged with the guest lint's
; suppression comment syntax -- must lint clean.
entry:
    mfpr  r1, VA
    mtpr  EXC_PC, r1   ; lint: ok(restart-clobber-priv-latch)
    reti
