; Handler with indirect control flow: successors are unbounded, so the
; restartability analysis is conservative (warning).
entry:
    mfpr  r1, VA
    jmpi  r1
tail:
    reti
