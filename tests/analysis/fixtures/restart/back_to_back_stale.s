; PR 5 bug pattern (a): stale-generation replay.  The retry loop
; branches back across the tlbwr, so remnants of an earlier handler
; generation can re-execute the commit ahead of the active generation
; after an executed reti -- the first fuzz-found back-to-back-trap bug.
entry:
    mfpr  r1, VA
    mfpr  r2, PTBR
    ld    r5, 0(r2)
    and   r6, r5, 1
    tlbwr r1, r5
    beq   r6, r0, entry
    reti
