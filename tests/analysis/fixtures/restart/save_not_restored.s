; Suspicious handler: saves into SCRATCH but one exit path skips the
; restore, leaking state into the next handler generation (warning).
entry:
    mfpr  r1, VA
    mtpr  SCRATCH, r1
    beq   r1, r0, skip
    mfpr  r2, SCRATCH
skip:
    reti
