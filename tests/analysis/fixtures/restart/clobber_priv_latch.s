; Broken handler: overwrites a hardware-latched exception register
; (EXC_PC) before reversion.  A back-to-back trap re-enters the handler
; with a corrupt return PC.
entry:
    mfpr  r1, VA
    mtpr  EXC_PC, r1
    reti
