; Broken handler: writes registers outside the PAL shadow bank.
; r1-r7 shadow onto indices 33-39 (pal_reg); r9/r12 pass through, so a
; squashed-and-replayed handler clobbers live user state.
entry:
    mfpr  r1, VA
    li    r9, 1
    add   r12, r9, r9
    reti
