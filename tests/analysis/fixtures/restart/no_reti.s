; Broken handler: terminates with halt, so the excepting instruction
; never restarts.
entry:
    mfpr  r1, VA
    halt
