; PR 5 bug pattern (b): two-generation mtdst.  A path exists on which
; mtdst executes twice, so an old generation's tail renames its result
; against the *newer* trap's EXC_DST latch -- the second fuzz-found
; back-to-back-trap bug.
entry:
    mfpr  r1, EXC_SRC
    mtdst r1
    bne   r1, r0, second_gen
    reti
second_gen:
    mfpr  r2, EXC_SRC
    mtdst r2
    reti
