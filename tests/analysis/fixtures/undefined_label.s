; seeded-bad: branches to a label nobody defines -> undefined-label
main:
    li   r1, 1
    jmp  nowhere
    halt
