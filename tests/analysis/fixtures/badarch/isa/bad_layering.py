# violates: layering (isa must not import pipeline)
from repro.pipeline.uop import Uop  # noqa: F401
