# violates: layering (memory must not import exceptions)
import repro.exceptions  # noqa: F401
