# violates: nondet-time, nondet-random, nondet-set-order
import time  # noqa: F401
from random import random  # noqa: F401


def drain(window):
    total = 0
    for uop in window._uops:
        total += uop.seq
    return total


def squash_all(window):
    # sorted() iteration is the sanctioned form and must NOT be flagged.
    return [uop.seq for uop in sorted(window._uops, key=lambda u: u.seq)]
