# violates: missing-slots (Uop is a required-__slots__ hot-loop class)


class Uop:
    def __init__(self, seq):
        self.seq = seq
