# violates: nondet-random in the deterministic half of sim; the second
# import is silenced by an inline suppression and must not be reported.
import random  # noqa: F401
import time  # noqa: F401  # lint: ok(nondet-time)
