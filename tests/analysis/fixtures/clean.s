; a well-formed unit the analyzer must pass
main:
    li   r1, 10
loop:
    sub  r1, r1, 1
    bne  r1, r0, loop
    halt
