; seeded-bad (warning class): r2 is written on only one path to its read
; -> read-before-def
main:
    li   r1, 1
    beq  r1, r0, skip
    li   r2, 5
skip:
    add  r3, r2, r0
    halt
