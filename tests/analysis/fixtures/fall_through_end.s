; seeded-bad: no halt/branch at the end of the text -> fall-through-end
main:
    li   r1, 1
    add  r2, r1, r1
