; seeded-bad: the same label defined twice -> duplicate-label
main:
    li   r1, 1
loop:
    add  r1, r1, r1
loop:
    halt
