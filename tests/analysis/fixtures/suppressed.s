; the same defect as read_never_written.s, silenced by an inline marker
main:
    li   r1, 1
    add  r2, r5, r1    ; lint: ok(read-never-written)
    halt
