; seeded-bad (warning class): the add after jmp can never execute
; -> unreachable-code
main:
    li   r1, 1
    jmp  done
    add  r1, r1, r1
done:
    halt
