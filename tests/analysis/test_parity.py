"""Tests for the kernel-parity pass (``repro.analysis.parity``).

The pass diffs the mutation/hook fact sets of the reference pipeline
against the fused batched kernel.  The shipped tree must verify clean,
the self-test must catch a seeded drift, and the diff/SoA/facade
checkers are exercised on synthetic inputs.
"""

from __future__ import annotations

import textwrap

from repro.analysis.parity import (
    FactSet,
    ParityModel,
    SELFTEST_FACT,
    check_reference_facade,
    check_soa,
    diff_model,
    extract_model,
    run_parity,
    scan_ledger,
    selftest,
)


class TestShippedTree:
    def test_shipped_tree_is_clean(self):
        assert run_parity() == []

    def test_fact_sets_are_substantial(self):
        # Guard against the extractor silently degrading to a no-op: both
        # kernels mutate a lot of state, and a collapse in either fact set
        # would make the diff vacuously clean.
        model = extract_model()
        assert len(model.ref) > 50
        assert len(model.fused) > 50

    def test_fused_side_is_subset_plus_ledger(self):
        model = extract_model()
        fused_only = model.fused.keys() - model.ref.keys()
        assert fused_only == set(), (
            "fused kernel must not mutate state the reference never touches"
        )
        ledgered = {fact for fact, _reason, _line in model.ledger}
        ref_only = {f.split(":", 1)[1] for f in model.ref.keys() - model.fused.keys()}
        assert ref_only == ledgered

    def test_selftest_catches_seeded_drift(self):
        ok, report = selftest()
        assert ok, report
        assert SELFTEST_FACT.split(":", 1)[1] in report


def _model(ref_facts, fused_facts, ledger=()):
    ref = FactSet()
    for f in ref_facts:
        ref.record(f, ("Ref.method", 10))
    fused = FactSet()
    for f in fused_facts:
        fused.record(f, ("Fused.method", 20))
    return ParityModel(
        ref=ref,
        fused=fused,
        ledger=list(ledger),
        fused_file="<fused>",
        ref_file="<ref>",
    )


class TestDiffModel:
    def test_matching_sets_are_clean(self):
        model = _model(["mut:A.x", "hook:h.f"], ["mut:A.x", "hook:h.f"])
        assert diff_model(model) == []

    def test_reference_only_mutation_is_error(self):
        model = _model(["mut:A.x"], [])
        diags = diff_model(model)
        assert [d.code for d in diags] == ["parity-mutation-drift"]
        assert diags[0].is_error
        assert "A.x" in diags[0].message
        assert "Ref.method:10" in diags[0].message

    def test_reference_only_hook_is_error(self):
        diags = diff_model(_model(["hook:listeners.fetch"], []))
        assert [d.code for d in diags] == ["parity-hook-drift"]
        assert diags[0].is_error

    def test_ledger_entry_accepts_drift(self):
        model = _model(
            ["hook:listeners.fetch"],
            [],
            ledger=[("listeners.fetch", "fused bails to reference", 5)],
        )
        assert diff_model(model) == []

    def test_unused_ledger_entry_is_error(self):
        model = _model(
            ["mut:A.x"],
            ["mut:A.x"],
            ledger=[("listeners.fetch", "stale reason", 5)],
        )
        diags = diff_model(model)
        assert [d.code for d in diags] == ["parity-elided-unused"]
        assert diags[0].is_error
        assert diags[0].line == 5

    def test_fused_only_hook_is_error(self):
        diags = diff_model(_model([], ["hook:faults.observe"]))
        assert [d.code for d in diags] == ["parity-hook-drift"]
        assert diags[0].is_error

    def test_fused_only_mutation_is_warning(self):
        diags = diff_model(_model([], ["mut:A.scratch"]))
        assert [d.code for d in diags] == ["parity-unmatched-site"]
        assert not diags[0].is_error

    def test_ledger_does_not_excuse_fused_only_hooks(self):
        model = _model(
            [],
            ["hook:faults.observe"],
            ledger=[("faults.observe", "bogus", 3)],
        )
        codes = sorted(d.code for d in diff_model(model))
        assert codes == ["parity-elided-unused", "parity-hook-drift"]


class TestScanLedger:
    def test_parses_fact_reason_and_line(self):
        text = "x = 1\n# parity: elided(listeners.fetch, fused path bails)\n"
        assert scan_ledger(text) == [("listeners.fetch", "fused path bails", 2)]

    def test_ignores_unrelated_comments(self):
        assert scan_ledger("# parity is great\n# elided(x, y)\n") == []


SOA_OK = textwrap.dedent(
    """
    class SweepBatch:
        _SOA_COLUMNS = ("pcs", "live")

        def __init__(self, n):
            self.pcs = [0] * n
            self.live = [True] * n

        def step(self):
            return self.pcs, self.live
    """
)


class TestCheckSoa:
    def test_complete_declaration_is_clean(self):
        assert check_soa(SOA_OK, file="<t>") == []

    def test_undeclared_column_is_error(self):
        source = SOA_OK.replace('_SOA_COLUMNS = ("pcs", "live")', '_SOA_COLUMNS = ("pcs",)')
        diags = check_soa(source, file="<t>")
        assert [d.code for d in diags] == ["parity-soa-undeclared"]
        assert "live" in diags[0].message

    def test_unknown_declared_name_is_error(self):
        source = SOA_OK.replace('"live")', '"live", "ghost")')
        diags = check_soa(source, file="<t>")
        assert [d.code for d in diags] == ["parity-soa-unknown"]
        assert "ghost" in diags[0].message

    def test_uncovered_column_is_error(self):
        # Declared and assigned, but never consumed outside __init__:
        # nothing would notice if snapshot/restore dropped it.
        source = SOA_OK.replace("return self.pcs, self.live", "return self.pcs")
        diags = check_soa(source, file="<t>")
        assert [d.code for d in diags] == ["parity-soa-uncovered"]
        assert "live" in diags[0].message

    def test_missing_class_is_ignored(self):
        assert check_soa("class Other:\n    pass\n", file="<t>") == []


class TestReferenceFacade:
    def test_plain_reexport_is_clean(self):
        source = "from repro.pipeline.core import SMTCore\n\nReferenceEngine = SMTCore\n"
        assert check_reference_facade(source, file="<t>") == []

    def test_shadowing_method_is_error(self):
        source = textwrap.dedent(
            """
            class ReferenceEngine:
                def run_to(self, cycle):
                    pass
            """
        )
        diags = check_reference_facade(source, file="<t>")
        assert [d.code for d in diags] == ["parity-reference-shadow"]
        assert diags[0].is_error
