"""Architecture lint: the shipped tree is clean, the fixture tree is not."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis.archlint import (
    ALLOWED_IMPORTS,
    SLOTS_REQUIRED,
    check_file,
    check_tree,
)

BADARCH = Path(__file__).parent / "fixtures" / "badarch"
PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def codes_by_file(diagnostics):
    out = {}
    for diag in diagnostics:
        out.setdefault(Path(diag.unit).name, set()).add(diag.code)
    return out


class TestFixtureTree:
    def test_every_rule_fires_once(self):
        found = codes_by_file(check_tree(BADARCH))
        assert found["bad_layering.py"] == {"layering"}
        assert found["uop.py"] == {"missing-slots", "missing-snapshot"}
        assert found["nondet.py"] == {
            "nondet-time",
            "nondet-random",
            "nondet-set-order",
        }
        assert found["simulator.py"] == {"nondet-random"}

    def test_isa_layering_message_names_the_target(self):
        diagnostics = check_file(
            BADARCH / "isa" / "bad_layering.py", Path("isa/bad_layering.py")
        )
        (diag,) = diagnostics
        assert "repro.pipeline" in diag.message
        assert diag.is_error

    def test_memory_must_not_import_exceptions(self):
        diagnostics = check_file(
            BADARCH / "memory" / "bad_layering.py",
            Path("memory/bad_layering.py"),
        )
        assert [d.code for d in diagnostics] == ["layering"]
        assert "repro.exceptions" in diagnostics[0].message

    def test_inline_suppression_is_honored(self):
        diagnostics = check_file(
            BADARCH / "sim" / "simulator.py", Path("sim/simulator.py")
        )
        assert [d.code for d in diagnostics] == ["nondet-random"]

    def test_sorted_iteration_is_not_flagged(self):
        diagnostics = check_file(
            BADARCH / "pipeline" / "nondet.py", Path("pipeline/nondet.py")
        )
        flagged_lines = {
            d.line for d in diagnostics if d.code == "nondet-set-order"
        }
        assert len(flagged_lines) == 1  # the bare loop, not the sorted() one


class TestShippedTree:
    def test_src_repro_is_clean(self):
        assert check_tree(PACKAGE_ROOT) == []

    def test_rule_tables_match_reality(self):
        # Every package in the layering table exists, and every class the
        # slots rule names still exists in the named module.
        for package in ALLOWED_IMPORTS:
            assert (PACKAGE_ROOT / package).is_dir(), package
        for rel, classes in SLOTS_REQUIRED.items():
            source = (PACKAGE_ROOT / rel).read_text()
            for cls in classes:
                assert f"class {cls}" in source, (rel, cls)

    def test_isa_remains_a_leaf(self):
        # The ISSUE's named regression: isa importing pipeline/sim.
        assert ALLOWED_IMPORTS["isa"] == frozenset()
        assert "exceptions" not in ALLOWED_IMPORTS["memory"]


class TestStaticPassLayering:
    """analysis/parity.py and analysis/restart.py must stay AST-only."""

    def _lint(self, tmp_path, rel, source):
        path = tmp_path / Path(rel).name
        path.write_text(source)
        return check_file(path, Path(rel))

    def test_parity_importing_engine_is_flagged(self, tmp_path):
        diags = self._lint(
            tmp_path, "analysis/parity.py", "from repro.engine import core\n"
        )
        assert [d.code for d in diags] == ["layering-static-pass"]
        assert diags[0].is_error

    def test_restart_importing_pipeline_is_flagged(self, tmp_path):
        diags = self._lint(
            tmp_path, "analysis/restart.py", "import repro.pipeline.core\n"
        )
        assert [d.code for d in diags] == ["layering-static-pass"]

    def test_isa_imports_remain_allowed(self, tmp_path):
        diags = self._lint(
            tmp_path,
            "analysis/restart.py",
            "from repro.isa.instructions import Instruction\n",
        )
        assert diags == []


class TestSoaDeclarationRule:
    def _lint(self, tmp_path, source):
        path = tmp_path / "batched.py"
        path.write_text(source)
        return check_file(path, Path("engine/batched.py"))

    def test_missing_soa_columns_is_flagged(self, tmp_path):
        diags = self._lint(
            tmp_path,
            "class SweepBatch:\n    __slots__ = ('pcs',)\n"
            "    def __init__(self):\n        self.pcs = []\n",
        )
        assert "missing-soa-columns" in {d.code for d in diags}

    def test_declared_columns_pass(self, tmp_path):
        diags = self._lint(
            tmp_path,
            "class SweepBatch:\n"
            "    __slots__ = ('pcs',)\n"
            "    _SOA_COLUMNS = ('pcs',)\n"
            "    def __init__(self):\n        self.pcs = []\n",
        )
        assert diags == []

    def test_declaring_nonexistent_column_is_flagged(self, tmp_path):
        diags = self._lint(
            tmp_path,
            "class SweepBatch:\n"
            "    __slots__ = ('pcs',)\n"
            "    _SOA_COLUMNS = ('pcs', 'ghost')\n"
            "    def __init__(self):\n        self.pcs = []\n",
        )
        assert "soa-declaration" in {d.code for d in diags}


class TestLedgerSyntaxRule:
    def _lint(self, tmp_path, source, rel="engine/core.py"):
        path = tmp_path / Path(rel).name
        path.write_text(source)
        return check_file(path, Path(rel))

    def test_wellformed_ledger_entry_passes(self, tmp_path):
        diags = self._lint(
            tmp_path, "# parity: elided(listeners.fetch, fused path bails)\n"
        )
        assert diags == []

    def test_malformed_ledger_entry_is_flagged(self, tmp_path):
        diags = self._lint(tmp_path, "# parity: elided listeners.fetch\n")
        assert [d.code for d in diags] == ["parity-ledger-syntax"]

    def test_rule_scoped_to_engine_package(self, tmp_path):
        # parity.py's own docstring quotes ledger examples; the syntax
        # rule must not police packages other than engine/.
        diags = self._lint(
            tmp_path, "# parity: elided nonsense\n", rel="pipeline/core.py"
        )
        assert diags == []
