"""SweepBatch driver semantics: lockstep stepping, ragged completion,
spec-ordered results, and the single-cell failure surface."""

import pytest

from repro.engine import BatchedSMTCore, SweepBatch, get_backend
from repro.engine.batched import PHASE_DONE, PHASE_MEASURE, PHASE_WARMUP
from repro.sim.config import MachineConfig
from repro.sim.parallel import CellSpec, run_cell


def _spec(mechanism, user_insts, warmup_insts=200, max_cycles=2_000_000):
    return CellSpec(
        workload="compress",
        config=MachineConfig(mechanism=mechanism, idle_threads=1),
        user_insts=user_insts,
        warmup_insts=warmup_insts,
        max_cycles=max_cycles,
    )


def test_ragged_batch_completes_in_spec_order():
    # Deliberately unequal run lengths: the short cell retires from the
    # batch first and the others must be unaffected.
    specs = [
        _spec("traditional", 400),
        _spec("multithreaded", 1600),
        _spec("quickstart", 900),
    ]
    batch = SweepBatch(specs, core_cls=BatchedSMTCore, quantum=256)
    batch.load()
    seen_live = []
    while batch.step():
        seen_live.append(len(batch.live))
    results = batch.results()
    assert len(results) == len(specs)
    # The batch really thinned out over time, not all at once.
    assert seen_live and seen_live[-1] < len(specs)
    for spec, result in zip(specs, results):
        assert result == run_cell(spec, engine="reference")


def test_phase_columns_track_cell_lifecycle():
    batch = SweepBatch([_spec("traditional", 300)], core_cls=BatchedSMTCore)
    assert batch.phase[0] == PHASE_WARMUP
    batch.load()
    while batch.step():
        pass
    assert batch.phase[0] == PHASE_DONE
    row = batch.row(0)
    assert not row.live
    assert row.result is not None


def test_no_warmup_cell_anchors_straight_to_measure():
    batch = SweepBatch(
        [_spec("traditional", 300, warmup_insts=0)], core_cls=BatchedSMTCore
    )
    batch.load()
    assert batch.phase[0] == PHASE_MEASURE


def test_results_before_completion_raises():
    batch = SweepBatch([_spec("traditional", 400)], core_cls=BatchedSMTCore)
    batch.load()
    with pytest.raises(RuntimeError, match="not finished"):
        batch.results()


def test_step_before_load_raises():
    batch = SweepBatch([_spec("traditional", 400)])
    with pytest.raises(RuntimeError, match="load"):
        batch.step()


def test_exceeding_max_cycles_matches_single_cell_error_shape():
    batch = SweepBatch(
        [_spec("traditional", 10_000, max_cycles=120)],
        core_cls=BatchedSMTCore,
        quantum=64,
    )
    batch.load()
    with pytest.raises(RuntimeError, match="exceeded 120 cycles"):
        while batch.step():
            pass


def test_bad_quantum_rejected():
    with pytest.raises(ValueError, match="quantum"):
        SweepBatch([], quantum=0)
    batch = SweepBatch([_spec("traditional", 300)], core_cls=BatchedSMTCore)
    batch.load()
    with pytest.raises(ValueError, match="positive"):
        batch.step(0)


def test_backend_facade_round_trip():
    spec = _spec("hardware", 600)
    backend = get_backend("batched")
    backend.configure([spec])
    results = backend.run()
    assert results[0] == run_cell(spec, engine="reference")
    # The facade exposes the live simulator and the digest convenience.
    assert backend.simulator(0).core.cycle > 0
    assert backend.digest(0) == backend.digest(0)
