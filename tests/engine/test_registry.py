"""Engine registry: name resolution, env override, backend lookup."""

import pytest

from repro.engine import (
    ENGINES,
    BatchedEngine,
    BatchedSMTCore,
    ReferenceEngine,
    core_class,
    get_backend,
    resolve_engine,
)


class TestResolveEngine:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == "reference"
        assert resolve_engine(None) == "reference"
        assert resolve_engine("") == "reference"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        assert resolve_engine() == "batched"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        assert resolve_engine("reference") == "reference"

    def test_unknown_name_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp-drive")

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine()

    def test_registry_lists_reference_first(self):
        assert ENGINES == ("reference", "batched")


class TestBackendLookup:
    def test_get_backend_types(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert isinstance(get_backend(), ReferenceEngine)
        assert isinstance(get_backend("batched"), BatchedEngine)

    def test_get_backend_returns_fresh_instances(self):
        assert get_backend("batched") is not get_backend("batched")

    def test_core_class_per_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert core_class("reference") is None
        assert core_class("batched") is BatchedSMTCore
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        assert core_class() is BatchedSMTCore
