"""Batch-of-1 equivalence: the batched engine must be bit-identical to
the reference path for every mechanism -- same ``SimResult``, same full
``SimStats`` dict, same architectural digest."""

import pytest

from repro.engine import get_backend
from repro.sim.config import MECHANISMS, MachineConfig
from repro.sim.parallel import CellSpec, run_cell

USER_INSTS = 1200
WARMUP_INSTS = 300
MAX_CYCLES = 2_000_000


def _spec(mechanism, workload="compress"):
    return CellSpec(
        workload=workload,
        config=MachineConfig(mechanism=mechanism, idle_threads=1),
        user_insts=USER_INSTS,
        warmup_insts=WARMUP_INSTS,
        max_cycles=MAX_CYCLES,
    )


def _run_backend(name, spec):
    backend = get_backend(name)
    backend.configure([spec])
    results = backend.run()
    return backend, results[0]


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_batch_of_one_matches_reference(mechanism):
    spec = _spec(mechanism)
    reference = run_cell(spec, engine="reference")
    backend, batched = _run_backend("batched", spec)

    assert batched == reference
    assert batched.stats.as_dict() == reference.stats.as_dict()

    ref_backend, _ = _run_backend("reference", spec)
    assert backend.digest(0) == ref_backend.digest(0)


@pytest.mark.parametrize("workload", ["gcc", "murphi", ("compress", "gcc")])
def test_batch_of_one_matches_reference_across_workloads(workload):
    spec = _spec("multithreaded", workload=workload)
    reference = run_cell(spec, engine="reference")
    _, batched = _run_backend("batched", spec)
    assert batched == reference
    assert batched.stats.as_dict() == reference.stats.as_dict()


def test_no_warmup_cell_matches_reference():
    spec = CellSpec(
        workload="compress",
        config=MachineConfig(mechanism="traditional", idle_threads=1),
        user_insts=800,
        warmup_insts=0,
        max_cycles=MAX_CYCLES,
    )
    reference = run_cell(spec, engine="reference")
    _, batched = _run_backend("batched", spec)
    assert batched == reference
