"""Squash-recovery correctness: rename rebuild, RAS repair, nesting."""

import pytest

from repro.isa.program import DataSegment
from tests.conftest import make_sim, run_to_halt


class TestRenameRecovery:
    def test_values_correct_across_repeated_mispredicts(self):
        """Alternating unpredictable branches stress the rename-map
        rebuild; any stale mapping corrupts the accumulators."""
        sim = make_sim(
            """
            main:
                li   r1, 64
                li   r2, 0
                li   r3, 0
            loop:
                and  r4, r1, 1
                mul  r4, r4, 3
                beq  r4, r0, even
                add  r2, r2, r1
                jmp  next
            even:
                add  r3, r3, r1
            next:
                sub  r1, r1, 1
                bne  r1, r0, loop
                halt
            """
        )
        run_to_halt(sim)
        odd_sum = sum(i for i in range(1, 65) if i % 2 == 1)
        even_sum = sum(i for i in range(1, 65) if i % 2 == 0)
        assert sim.core.threads[0].arch.read_int(2) == odd_sum
        assert sim.core.threads[0].arch.read_int(3) == even_sum
        assert sim.core.stats.mispredicts > 5

    def test_wrong_path_work_does_not_leak_into_registers(self):
        sim = make_sim(
            """
            main:
                li   r1, 10
                li   r7, 42
            loop:
                and  r4, r1, 1
                mul  r4, r4, 7
                bne  r4, r0, poison
            back:
                sub  r1, r1, 1
                bne  r1, r0, loop
                halt
            poison:
                li   r7, 666
                li   r7, 42
                jmp  back
            """
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(7) == 42


class TestRASRecovery:
    def test_calls_across_mispredicted_branches(self):
        """Wrong-path calls/returns must not corrupt the RAS."""
        sim = make_sim(
            """
            main:
                li   r1, 24
                li   r2, 0
            loop:
                and  r4, r1, 1
                mul  r4, r4, 5
                beq  r4, r0, no_call
                call bump
            no_call:
                sub  r1, r1, 1
                bne  r1, r0, loop
                halt
            bump:
                add  r2, r2, 1
                ret
            """
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 12

    def test_nested_calls_return_correctly(self):
        sim = make_sim(
            """
            main:
                li   r1, 0
                call outer
                call outer
                halt
            outer:
                add  r1, r1, 1
                or   r9, lr, r0     ; preserve link
                call inner
                or   lr, r9, r0
                ret
            inner:
                add  r1, r1, 10
                ret
            """
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(1) == 22


class TestStoreQueueRecovery:
    def test_squashed_stores_never_forward(self, data_base):
        """A wrong-path store must not forward its value to a correct-path
        load after the squash."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r2, 7
                st   r2, 0(r1)
                li   r5, 16
                li   r7, 0
            loop:
                and  r4, r5, 1
                mul  r4, r4, 9
                beq  r4, r0, clean
                li   r6, 999
                st   r6, 0(r1)       ; odd iterations really store 999
                li   r6, 7
                st   r6, 0(r1)       ; ...then restore 7
            clean:
                ld   r8, 0(r1)
                add  r7, r7, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            regions=[(data_base, 8192)],
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(7) == 7 * 16
