"""Tests for fetch-engine behaviours: stalls, privilege fences, buffers."""

import pytest

from repro.isa.program import DataSegment
from repro.pipeline.thread import ThreadState
from tests.conftest import make_sim, run_to_halt


class TestFetchStalls:
    def test_fetch_stops_at_halt(self):
        sim = make_sim("main:\n  li r1, 1\n  halt")
        run_to_halt(sim)
        # Nothing past halt exists, and fetch never ran away.
        assert sim.core.stats.fetched <= 4

    def test_wrong_path_fetch_off_text_end_recovers(self, data_base):
        """A mispredicted branch can send fetch past the last instruction;
        the machine must stall (not crash) and recover at resolution."""
        sim = make_sim(
            f"""
            main:
                li   r1, 3
                mul  r2, r1, r1
                mul  r2, r2, r2
                beq  r2, r0, never
                halt
            never:
                li   r3, 1
            """,
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 81

    def test_privilege_fence_blocks_user_fetch_of_pal(self):
        """Wrong paths that land in PAL code must not execute it."""
        sim = make_sim(
            """
            main:
                li   r1, 5
                mul  r2, r1, r1
                jmpi r2              ; lands wherever r2 points (25 -> user)
            filler0:
                li   r3, 7
                halt
            """,
        )
        # pc 25 may be out of range or in user code; either way the run
        # must never retire a privileged instruction in user mode.
        core = sim.core
        for _ in range(5_000):
            core.step()
            if core.threads[0].halted:
                break
        assert core.threads[0].retired_handler == 0

    def test_icache_cold_start_delays_first_fetch(self):
        sim = make_sim("main:\n  li r1, 1\n  halt")
        cycles = run_to_halt(sim)
        # A cold I-cache costs a memory-latency startup.
        assert cycles > 100

    def test_fetch_buffer_never_overflows(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)       ; long stall: buffer backs up
            loop:
                add  r3, r3, 1
                jmp  loop
            """,
            mechanism="perfect",
            segments=[DataSegment(base=data_base, words=[1])],
            fetch_buffer_size=4,
        )
        core = sim.core
        for _ in range(2_000):
            core.step()
            for thread in core.threads:
                assert len(thread.fetch_buffer) <= 4


class TestExceptionThreadFetch:
    def test_handler_thread_stops_at_reti(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                halt
            """,
            mechanism="multithreaded",
            segments=[DataSegment(base=data_base, words=[1])],
        )
        core = sim.core
        max_handler_rob = 0
        while not core.threads[0].halted and core.cycle < 50_000:
            core.step()
            if core.threads[1].state is ThreadState.EXCEPTION:
                max_handler_rob = max(max_handler_rob, len(core.threads[1].rob))
        # With perfect handler-length prediction the exception thread
        # fetches exactly the common-case handler (10 instructions).
        assert 0 < max_handler_rob <= 10

    def test_handler_gets_fetch_priority(self, data_base):
        """With fetch priority the handler completes promptly even while
        the main thread has endless instructions to fetch."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
            loop:
                add  r3, r3, 1
                add  r4, r4, 1
                add  r5, r5, 1
                jmp  loop
            """,
            mechanism="multithreaded",
            segments=[DataSegment(base=data_base, words=[1])],
        )
        core = sim.core
        for _ in range(50_000):
            core.step()
            if sim.mechanism.stats.committed_fills:
                break
        assert sim.mechanism.stats.committed_fills == 1
