"""End-to-end pipeline tests on small programs (perfect TLB)."""

import pytest

from repro.isa.program import DataSegment
from tests.conftest import make_sim, run_to_halt


def final_int(sim, reg):
    return sim.core.threads[0].arch.read_int(reg)


def final_fp(sim, reg):
    return sim.core.threads[0].arch.read_fp(reg)


class TestArithmetic:
    def test_simple_sum(self):
        sim = make_sim(
            """
            main:
                li   r1, 10
                li   r2, 32
                add  r3, r1, r2
                halt
            """
        )
        run_to_halt(sim)
        assert final_int(sim, 3) == 42

    def test_dependent_chain(self):
        sim = make_sim(
            """
            main:
                li   r1, 1
                add  r1, r1, r1
                add  r1, r1, r1
                add  r1, r1, r1
                halt
            """
        )
        run_to_halt(sim)
        assert final_int(sim, 1) == 8

    def test_mul_div(self):
        sim = make_sim(
            """
            main:
                li   r1, 6
                li   r2, 7
                mul  r3, r1, r2
                div  r4, r3, r2
                halt
            """
        )
        run_to_halt(sim)
        assert final_int(sim, 3) == 42
        assert final_int(sim, 4) == 6

    def test_loop_counts_correctly(self):
        sim = make_sim(
            """
            main:
                li   r1, 100
                li   r2, 0
            loop:
                add  r2, r2, 3
                sub  r1, r1, 1
                bne  r1, r0, loop
                halt
            """
        )
        run_to_halt(sim)
        assert final_int(sim, 2) == 300
        assert final_int(sim, 1) == 0

    def test_fp_pipeline(self):
        sim = make_sim(
            """
            main:
                li    r1, 9
                itof  f1, r1
                fsqrt f2, f1
                li    r2, 4
                itof  f3, r2
                fadd  f4, f2, f3
                fdiv  f5, f4, f3
                ftoi  r3, f4
                halt
            """
        )
        run_to_halt(sim)
        assert final_fp(sim, 4) == 7.0
        assert final_fp(sim, 5) == 1.75
        assert final_int(sim, 3) == 7


class TestMemoryOps:
    def test_load_from_segment(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                ld   r3, 8(r1)
                halt
            """,
            segments=[DataSegment(base=data_base, words=[111, 222])],
        )
        run_to_halt(sim)
        assert final_int(sim, 2) == 111
        assert final_int(sim, 3) == 222

    def test_store_commits_to_memory(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r2, 77
                st   r2, 16(r1)
                halt
            """,
            regions=[(data_base, 8192)],
        )
        run_to_halt(sim)
        assert sim.memory.read_word(data_base + 16) == 77

    def test_store_to_load_forwarding(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r2, 55
                st   r2, 0(r1)
                ld   r3, 0(r1)
                halt
            """,
            regions=[(data_base, 8192)],
        )
        run_to_halt(sim)
        assert final_int(sim, 3) == 55
        assert sim.core.stats.store_forwards >= 1

    def test_load_bypasses_older_nonmatching_store(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r2, 9
                st   r2, 0(r1)
                ld   r3, 64(r1)
                halt
            """,
            segments=[DataSegment(base=data_base, words=[0] * 8 + [31415])],
        )
        run_to_halt(sim)
        assert final_int(sim, 3) == 31415

    def test_fp_load_store(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                fld  f1, 0(r1)
                fadd f2, f1, f1
                fst  f2, 8(r1)
                halt
            """,
            segments=[DataSegment(base=data_base, words=[2.5, 0.0])],
        )
        run_to_halt(sim)
        assert sim.memory.read_word(data_base + 8) == 5.0


class TestControlFlow:
    def test_taken_and_not_taken_branches(self):
        sim = make_sim(
            """
            main:
                li   r1, 5
                beq  r1, r0, wrong
                li   r2, 1
                jmp  done
            wrong:
                li   r2, 2
            done:
                halt
            """
        )
        run_to_halt(sim)
        assert final_int(sim, 2) == 1

    def test_call_and_ret(self):
        sim = make_sim(
            """
            main:
                li   r1, 5
                call double
                call double
                halt
            double:
                add  r1, r1, r1
                ret
            """
        )
        run_to_halt(sim)
        assert final_int(sim, 1) == 20

    def test_indirect_call_through_table(self, data_base):
        sim = make_sim(
            f"""
            main:
                li    r1, {data_base}
                ld    r2, 0(r1)
                calli r2
                halt
            target:
                li    r3, 123
                ret
            """,
        )
        # The jump table needs the resolved label address.
        program = sim.programs[0]
        target_pc = program.labels["target"]
        sim.memory.write_word(data_base, target_pc)
        sim.page_table.map_range(data_base, 8)
        run_to_halt(sim)
        assert final_int(sim, 3) == 123

    def test_mispredicted_branch_recovers_state(self):
        """A data-dependent alternating branch forces mispredicts; the
        architectural result must still be exact."""
        sim = make_sim(
            """
            main:
                li   r1, 50
                li   r2, 0
                li   r4, 0
            loop:
                and  r3, r1, 1
                beq  r3, r0, even
                add  r2, r2, 1
                jmp  next
            even:
                add  r4, r4, 1
            next:
                sub  r1, r1, 1
                bne  r1, r0, loop
                halt
            """
        )
        run_to_halt(sim)
        assert final_int(sim, 2) == 25
        assert final_int(sim, 4) == 25

    def test_wrong_path_stores_never_commit(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 20
            loop:
                and  r3, r5, 3
                bne  r3, r0, skip
                li   r6, 666
                st   r6, 0(r1)
            skip:
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            segments=[DataSegment(base=data_base, words=[0])],
        )
        run_to_halt(sim)
        # Stores executed only when r5 % 4 == 0 -> value 666 present,
        # but the memory word must never hold a value from a squashed path.
        assert sim.memory.read_word(data_base) in (0, 666)


class TestCounters:
    def test_retired_matches_program(self):
        sim = make_sim(
            """
            main:
                li   r1, 10
            loop:
                sub  r1, r1, 1
                bne  r1, r0, loop
                halt
            """
        )
        run_to_halt(sim)
        # li + 10*(sub+bne) + halt
        assert sim.core.stats.retired_user == 1 + 20 + 1

    def test_ipc_positive(self):
        sim = make_sim("main:\n  li r1, 1\n  halt")
        run_to_halt(sim)
        assert sim.core.stats.cycles > 0
