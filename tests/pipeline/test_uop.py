"""Unit tests for the dynamic-instruction record."""

from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.uop import Uop, UopState


def _uop(op=Opcode.ADD, seq=0, **kw):
    return Uop(seq, 0, 0, Instruction(op=op, **kw))


class TestReadiness:
    def test_literal_sources_always_ready(self):
        uop = _uop()
        uop.src_a_value = 1
        uop.src_b_value = 2
        assert uop.src_ready(now=0)
        assert uop.src_values() == (1, 2)

    def test_producer_not_issued_blocks(self):
        producer = _uop(seq=1)
        consumer = _uop(seq=2)
        consumer.src_a_uop = producer
        assert not consumer.src_ready(now=10)

    def test_producer_ready_at_finish_cycle(self):
        producer = _uop(seq=1)
        producer.issued = True
        producer.finish_cycle = 5
        producer.value = 42
        consumer = _uop(seq=2)
        consumer.src_a_uop = producer
        assert not consumer.src_ready(now=4)
        assert consumer.src_ready(now=5)
        assert consumer.src_values()[0] == 42

    def test_value_ready(self):
        uop = _uop()
        assert not uop.value_ready(0)
        uop.issued = True
        uop.finish_cycle = 3
        assert not uop.value_ready(2)
        assert uop.value_ready(3)

    def test_missing_values_default_to_zero(self):
        uop = _uop()
        assert uop.src_values() == (0, 0)


class TestLifecycle:
    def test_initial_state(self):
        uop = _uop()
        assert uop.state == UopState.FETCH_BUF
        assert uop.in_flight
        assert not uop.renamed and not uop.issued

    def test_terminal_states_not_in_flight(self):
        uop = _uop()
        uop.state = UopState.RETIRED
        assert not uop.in_flight
        uop.state = UopState.SQUASHED
        assert not uop.in_flight

    def test_repr_is_stable(self):
        assert "add" in repr(_uop())
