"""Unit tests for the instruction window and reservations."""

from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.uop import Uop, UopState
from repro.pipeline.window import InstructionWindow


def _uop(seq, free_slot=False):
    uop = Uop(seq, 0, 0, Instruction(op=Opcode.NOP))
    uop.free_slot = free_slot
    return uop


class TestOccupancy:
    def test_insert_remove(self):
        window = InstructionWindow(4)
        uop = _uop(1)
        window.insert(uop)
        assert window.occupancy == 1
        window.remove(uop)
        assert window.occupancy == 0

    def test_capacity_gate_for_app_threads(self):
        window = InstructionWindow(2)
        window.insert(_uop(1))
        assert window.can_insert_app()
        window.insert(_uop(2))
        assert not window.can_insert_app()

    def test_free_slot_uops_not_counted(self):
        window = InstructionWindow(2)
        window.insert(_uop(1, free_slot=True))
        assert window.occupancy == 0
        assert window.can_insert_app()

    def test_uops_kept_sorted_by_seq(self):
        window = InstructionWindow(8)
        for seq in (5, 1, 3):
            window.insert(_uop(seq))
        assert [u.seq for u in window.uops] == [1, 3, 5]

    def test_remove_absent_uop_is_noop(self):
        window = InstructionWindow(4)
        window.remove(_uop(9))
        assert window.occupancy == 0

    def test_peak_occupancy_tracked(self):
        window = InstructionWindow(4)
        a, b = _uop(1), _uop(2)
        window.insert(a)
        window.insert(b)
        window.remove(a)
        assert window.peak_occupancy == 2


class TestReservations:
    def test_reservation_blocks_app_insertion(self):
        window = InstructionWindow(4)
        window.insert(_uop(1))
        window.reserve(exc_id=9, slots=3)
        assert not window.can_insert_app()

    def test_handler_insert_consumes_reservation(self):
        window = InstructionWindow(4)
        window.reserve(exc_id=9, slots=2)
        window.insert(_uop(1), exc_id=9)
        assert window.reserved_total == 1
        window.insert(_uop(2), exc_id=9)
        assert window.reserved_total == 0

    def test_release_frees_remaining_reservation(self):
        window = InstructionWindow(4)
        window.reserve(exc_id=9, slots=3)
        window.insert(_uop(1), exc_id=9)
        window.release(9)
        assert window.reserved_total == 0
        assert window.can_insert_app()

    def test_release_unknown_id_is_noop(self):
        window = InstructionWindow(4)
        window.release(42)
        assert window.reserved_total == 0

    def test_multiple_concurrent_reservations(self):
        window = InstructionWindow(10)
        window.reserve(1, 3)
        window.reserve(2, 4)
        assert window.reserved_total == 7
        window.release(1)
        assert window.reserved_total == 4

    def test_negative_reservation_clamped(self):
        window = InstructionWindow(4)
        window.reserve(1, -5)
        assert window.reserved_total == 0
