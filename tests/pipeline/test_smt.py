"""SMT tests: multiple application threads sharing the core."""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import SLICE_STRIDE, make_program
from repro.workloads.suite import build_mix


def _counting_program(base, iterations):
    return make_program(
        f"""
        main:
            li   r1, {iterations}
            li   r2, 0
        loop:
            add  r2, r2, 1
            sub  r1, r1, 1
            bne  r1, r0, loop
            halt
        """,
        regions=[(base, 8192)],
    )


def _run_to_all_halt(sim, max_cycles=100_000):
    core = sim.core
    while core.cycle < max_cycles:
        apps = [t for t in core.threads if t.program and not t.is_exception_thread]
        if apps and all(t.halted for t in apps):
            return core.cycle
        core.step()
    raise AssertionError("threads did not halt")


class TestMultipleThreads:
    def test_two_threads_both_complete_correctly(self):
        programs = [
            _counting_program(0x1000_0000, 40),
            _counting_program(0x1000_0000 + SLICE_STRIDE, 60),
        ]
        sim = Simulator(programs, MachineConfig(mechanism="perfect", idle_threads=0))
        _run_to_all_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 40
        assert sim.core.threads[1].arch.read_int(2) == 60

    def test_threads_have_isolated_register_state(self):
        programs = [_counting_program(0x1000_0000, 10)] * 1
        programs.append(_counting_program(0x1000_0000 + SLICE_STRIDE, 99))
        sim = Simulator(programs, MachineConfig(mechanism="perfect", idle_threads=0))
        _run_to_all_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 10
        assert sim.core.threads[1].arch.read_int(2) == 99

    def test_smt_throughput_exceeds_single_thread(self):
        """Two co-scheduled threads finish the same combined work in fewer
        cycles than run back to back."""
        single = Simulator(
            [_counting_program(0x1000_0000, 300)],
            MachineConfig(mechanism="perfect", idle_threads=0),
        )
        t_single = _run_to_all_halt(single)
        both = Simulator(
            [
                _counting_program(0x1000_0000, 300),
                _counting_program(0x1000_0000 + SLICE_STRIDE, 300),
            ],
            MachineConfig(mechanism="perfect", idle_threads=0),
        )
        t_both = _run_to_all_halt(both)
        assert t_both < 2 * t_single

    def test_fig7_mix_builds_disjoint_slices(self):
        programs = build_mix(("adm", "gcc", "vor"))
        spans = []
        for program in programs:
            bases = [s.base for s in program.data_segments]
            bases += [b for b, _ in program.regions]
            spans.append((min(bases), max(bases)))
        for i in range(len(spans)):
            for j in range(i + 1, len(spans)):
                assert spans[i][1] < spans[j][0] or spans[j][1] < spans[i][0]

    def test_mix_runs_under_multithreaded_mechanism(self):
        programs = build_mix(("cmp", "vor", "mph"))
        sim = Simulator(
            programs, MachineConfig(mechanism="multithreaded", idle_threads=1)
        )
        result = sim.run(user_insts=400, warmup_insts=0, max_cycles=400_000)
        assert all(n >= 400 for n in result.per_thread_user[:3])

    def test_icount_chooser_balances_fetch(self):
        programs = [
            _counting_program(0x1000_0000, 500),
            _counting_program(0x1000_0000 + SLICE_STRIDE, 500),
        ]
        sim = Simulator(programs, MachineConfig(mechanism="perfect", idle_threads=0))
        for _ in range(300):
            sim.core.step()
        a = sim.core.threads[0].retired_user
        b = sim.core.threads[1].retired_user
        assert a > 0 and b > 0
        assert abs(a - b) < max(a, b)  # neither thread starved

    def test_round_robin_chooser_also_runs(self):
        programs = [
            _counting_program(0x1000_0000, 50),
            _counting_program(0x1000_0000 + SLICE_STRIDE, 50),
        ]
        sim = Simulator(
            programs,
            MachineConfig(mechanism="perfect", idle_threads=0, chooser="round_robin"),
        )
        _run_to_all_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 50
