"""Resource-limit tests: issue width, FU pools, and ports behave as
Table 1 specifies."""

import pytest

from repro.isa.program import DataSegment
from tests.conftest import make_sim, run_to_halt


def _throughput(source, cycles=600, **config):
    sim = make_sim(source, mechanism="perfect", **config)
    core = sim.core
    # Skip the cold-start I-cache fill.
    while core.stats.retired_user == 0 and core.cycle < 5_000:
        core.step()
    start_retired, start_cycle = core.stats.retired_user, core.cycle
    for _ in range(cycles):
        core.step()
    return (core.stats.retired_user - start_retired) / cycles


INDEPENDENT_ALU = """
main:
loop:
    add r1, r1, 1
    add r2, r2, 1
    add r3, r3, 1
    add r4, r4, 1
    add r5, r5, 1
    add r6, r6, 1
    add r7, r7, 1
    jmp loop
"""


class TestIssueWidth:
    def test_ipc_bounded_by_width(self):
        for width in (2, 4, 8):
            ipc = _throughput(INDEPENDENT_ALU, width=width,
                              window_size={2: 32, 4: 64, 8: 128}[width])
            assert ipc <= width + 0.01

    def test_wider_machine_is_faster_on_parallel_code(self):
        narrow = _throughput(INDEPENDENT_ALU, width=2, window_size=32)
        wide = _throughput(INDEPENDENT_ALU, width=8, window_size=128)
        assert wide > narrow * 1.5


class TestFunctionalUnitPools:
    def test_fp_divide_port_is_a_bottleneck(self):
        """One FP div/sqrt unit: four independent divides per iteration
        cannot exceed 1 divide per cycle."""
        source = """
main:
loop:
    fdiv f1, f11, f12
    fdiv f2, f11, f12
    fdiv f3, f11, f12
    fdiv f4, f11, f12
    jmp  loop
"""
        ipc = _throughput(source, cycles=800)
        # 5 instructions per iteration, at most 1 fdiv issued per cycle
        # -> at most 1.25 IPC.
        assert ipc <= 1.3

    def test_fp_add_pool_allows_three_per_cycle(self):
        source = """
main:
loop:
    fadd f1, f1, f11
    fadd f2, f2, f11
    fadd f3, f3, f11
    fadd f4, f4, f11
    fadd f5, f5, f11
    fadd f6, f6, f11
    jmp  loop
"""
        ipc = _throughput(source, cycles=800)
        # 6 fadds + jmp per iteration with 3 FP issues/cycle -> 2 cycles
        # of FP plus ALU slack: IPC around 3.5, never above 3.5+eps... the
        # binding constraint is 6 fadds / 3 per cycle = 2 cycles/iter.
        assert 2.0 < ipc <= 3.6

    def test_memory_ports_bound_load_throughput(self, data_base):
        source = f"""
main:
    li  r10, {data_base}
loop:
    ld  r1, 0(r10)
    ld  r2, 8(r10)
    ld  r3, 16(r10)
    ld  r4, 24(r10)
    ld  r5, 32(r10)
    ld  r6, 40(r10)
    jmp loop
"""
        sim = make_sim(
            source, mechanism="perfect",
            segments=[DataSegment(base=0x1000_0000, words=[1] * 8)],
        )
        core = sim.core
        while core.stats.retired_user == 0 and core.cycle < 5_000:
            core.step()
        start_retired, start_cycle = core.stats.retired_user, core.cycle
        for _ in range(600):
            core.step()
        ipc = (core.stats.retired_user - start_retired) / 600
        # 6 loads / 3 ports = 2 cycles per iteration of 7 instructions.
        assert ipc <= 3.6


class TestLatencies:
    def test_dependent_alu_chain_runs_one_per_cycle(self):
        source = """
main:
loop:
    add r1, r1, 1
    add r1, r1, 1
    add r1, r1, 1
    add r1, r1, 1
    add r1, r1, 1
    add r1, r1, 1
    add r1, r1, 1
    jmp loop
"""
        ipc = _throughput(source, cycles=600)
        assert 0.8 < ipc <= 1.35  # chain-limited near 1 + the free jmp

    def test_dependent_mul_chain_runs_one_per_three_cycles(self):
        source = """
main:
loop:
    mul r1, r1, 3
    mul r1, r1, 3
    mul r1, r1, 3
    jmp loop
"""
        ipc = _throughput(source, cycles=600)
        # 3 muls x 3 cycles each per iteration of 4 instructions.
        assert ipc <= 4 / 9 + 0.1
