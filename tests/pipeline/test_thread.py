"""Unit tests for the thread-context state machine."""

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.pipeline.thread import ThreadContext, ThreadState
from repro.pipeline.uop import Uop


def _program():
    program = Program()
    program.insts = [Instruction(op=Opcode.NOP), Instruction(op=Opcode.HALT)]
    return program


class TestLifecycle:
    def test_starts_idle(self):
        thread = ThreadContext(0)
        assert thread.state is ThreadState.IDLE
        assert not thread.can_fetch(0)

    def test_activate_binds_program(self):
        thread = ThreadContext(0)
        thread.activate(_program())
        assert thread.state is ThreadState.NORMAL
        assert thread.can_fetch(0)

    def test_fetch_gates(self):
        thread = ThreadContext(0, fetch_buffer_size=2)
        thread.activate(_program())
        assert thread.can_fetch(0)
        thread.fetch_stall_until = 10
        assert not thread.can_fetch(5)
        assert thread.can_fetch(10)
        thread.halted = True
        assert not thread.can_fetch(10)

    def test_buffer_capacity_gates_fetch(self):
        thread = ThreadContext(0, fetch_buffer_size=1)
        thread.activate(_program())
        uop = Uop(0, 0, 0, Instruction(op=Opcode.NOP))
        thread.fetch_buffer.append(uop)
        assert not thread.can_fetch(0)

    def test_reset_to_idle_clears_everything(self):
        thread = ThreadContext(0)
        thread.activate(_program())
        uop = Uop(0, 0, 0, Instruction(op=Opcode.NOP))
        thread.rob.append(uop)
        thread.fetch_buffer.append(uop)
        thread.fetch_done = True
        thread.master_tid = 3
        thread.reset_to_idle()
        assert thread.state is ThreadState.IDLE
        assert not thread.rob and not thread.fetch_buffer
        assert thread.master_tid is None
        assert not thread.fetch_done

    def test_counters_survive_reset(self):
        thread = ThreadContext(0)
        thread.retired_handler = 7
        thread.reset_to_idle()
        assert thread.retired_handler == 7  # lifetime counter


class TestRenameRebuild:
    def test_rebuild_maps_only_renamed_prefix(self):
        thread = ThreadContext(0)
        a = Uop(0, 0, 0, Instruction(op=Opcode.ADD, rd=1, ra=2, rb=3))
        a.renamed = True
        b = Uop(1, 0, 1, Instruction(op=Opcode.ADD, rd=2, ra=1, rb=1))
        b.renamed = False  # still in the fetch buffer
        thread.rob.extend([a, b])
        thread.rebuild_rename_maps()
        assert thread.int_map[1] is a
        assert thread.int_map[2] is None

    def test_rebuild_uses_latest_writer(self):
        thread = ThreadContext(0)
        first = Uop(0, 0, 0, Instruction(op=Opcode.ADD, rd=1, ra=2, rb=3))
        second = Uop(1, 0, 1, Instruction(op=Opcode.SUB, rd=1, ra=2, rb=3))
        first.renamed = second.renamed = True
        thread.rob.extend([first, second])
        thread.rebuild_rename_maps()
        assert thread.int_map[1] is second

    def test_rebuild_handles_fp_and_shadow(self):
        thread = ThreadContext(0)
        fp = Uop(0, 0, 0, Instruction(op=Opcode.FADD, rd=3, ra=1, rb=2))
        pal = Uop(
            1, 0, 1,
            Instruction(op=Opcode.MFPR, rd=1, imm=0, privileged=True),
        )
        fp.renamed = pal.renamed = True
        thread.rob.extend([fp, pal])
        thread.rebuild_rename_maps()
        assert thread.fp_map[3] is fp
        assert thread.int_map[33] is pal  # r1 shadowed
        assert thread.int_map[1] is None

    def test_rebuild_handles_dynamic_dest(self):
        thread = ThreadContext(0)
        mtdst = Uop(
            0, 0, 0, Instruction(op=Opcode.MTDST, ra=1, privileged=True)
        )
        mtdst.renamed = True
        mtdst.dyn_dest = 9
        thread.rob.append(mtdst)
        thread.rebuild_rename_maps()
        assert thread.int_map[9] is mtdst
