"""Cross-table invariants that keep the core's dispatch tables honest."""

from repro.isa.instructions import OPCODE_FU, SRC_SPACES as _SRC_SPACES, Opcode
from repro.sim.config import FU_GROUPS, FUPool


class TestDispatchTables:
    def test_every_opcode_has_source_spaces(self):
        for op in Opcode:
            assert op in _SRC_SPACES, f"{op} missing from rename table"

    def test_source_spaces_are_valid(self):
        for op, (a, b) in _SRC_SPACES.items():
            assert a in (None, "int", "fp"), op
            assert b in (None, "int", "fp"), op

    def test_every_fu_class_has_a_pool_group(self):
        pool = FUPool()
        for fu in set(OPCODE_FU.values()):
            if fu.value == "none":
                continue
            group, latency = FU_GROUPS[fu]
            assert pool.capacity(group) >= 1
            assert latency >= 1

    def test_source_spaces_match_operand_fields(self):
        """An opcode declaring an int/fp space for ra must be assembled
        with an ra operand somewhere (spot checks on the tricky ones)."""
        assert _SRC_SPACES[Opcode.LI] == (None, None)
        assert _SRC_SPACES[Opcode.MFPR] == (None, None)
        assert _SRC_SPACES[Opcode.ST] == ("int", "int")
        assert _SRC_SPACES[Opcode.FST] == ("int", "fp")
        assert _SRC_SPACES[Opcode.TLBWR] == ("int", "int")
        assert _SRC_SPACES[Opcode.MTDST] == ("int", None)
        assert _SRC_SPACES[Opcode.EMUL] == ("int", None)

    def test_branches_issue_on_alu(self):
        from repro.isa.instructions import FUClass

        assert FU_GROUPS[FUClass.BRANCH][0] == "alu"
