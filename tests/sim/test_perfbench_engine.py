"""Perfbench engine plumbing: rep isolation, the compare report shape,
and the CLI flag contracts (no real benchmarking here -- measurement is
monkeypatched so these stay fast and deterministic)."""

import json

import pytest

import repro.sim.perfbench as perfbench
from repro.sim.config import MECHANISMS


def _fake_measure(values):
    def measure(mechanism, reps, core_cls=None):
        # Reference (core_cls None) measures slower than the batched
        # kernel in this canned world.
        base = values[mechanism]
        return base if core_cls is None else base * 2.0

    return measure


@pytest.fixture
def canned(monkeypatch):
    values = {mech: 10_000.0 + i for i, mech in enumerate(MECHANISMS)}
    monkeypatch.setattr(perfbench, "measure_mechanism", _fake_measure(values))
    return values


class TestRunCompare:
    def test_report_shape(self, canned):
        report = perfbench.run_compare(reps=1)
        assert report["protocol"]["engine"] == "batched-vs-reference"
        assert report["protocol"]["reps_best_of"] == 1
        # Top-level numbers are the batched ones so --baseline gating
        # applies to the new kernel.
        assert set(report["instrs_per_sec"]) == set(MECHANISMS)
        for mech in MECHANISMS:
            assert report["instrs_per_sec"][mech] == pytest.approx(
                2 * report["reference"]["instrs_per_sec"][mech]
            )
            assert report["speedup_vs_reference"][mech] == pytest.approx(2.0)
        assert report["aggregate_speedup_vs_reference"] == pytest.approx(2.0)

    def test_run_records_engine_in_protocol(self, canned):
        report = perfbench.run(reps=1, engine="batched")
        assert report["protocol"]["engine"] == "batched"


class TestCli:
    def test_min_speedup_requires_engine_compare(self, capsys):
        with pytest.raises(SystemExit):
            perfbench.main(["--min-speedup", "1.5"])

    def test_engine_compare_conflicts_with_engine(self, capsys):
        with pytest.raises(SystemExit):
            perfbench.main(["--engine-compare", "--engine", "batched"])

    def test_engine_compare_gate_pass_and_fail(
        self, canned, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "BENCH_batched.json"
        assert (
            perfbench.main(
                ["--engine-compare", "--min-speedup", "1.5",
                 "--output", str(out)]
            )
            == 0
        )
        report = json.loads(out.read_text())
        assert report["aggregate_speedup_vs_reference"] == pytest.approx(2.0)
        assert "PASS" in capsys.readouterr().out
        assert (
            perfbench.main(
                ["--engine-compare", "--min-speedup", "2.5",
                 "--output", str(out)]
            )
            == 1
        )
        assert "FAIL" in capsys.readouterr().out

    def test_engine_compare_default_output_name(
        self, canned, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        perfbench.main(["--engine-compare"])
        assert (tmp_path / "BENCH_batched.json").exists()


class TestRepIsolation:
    def test_each_rep_starts_from_a_collected_heap(self, monkeypatch):
        collections = []
        monkeypatch.setattr(
            perfbench.gc, "collect", lambda: collections.append(1)
        )
        monkeypatch.setattr(perfbench, "BENCHMARKS", {})
        with pytest.raises(ZeroDivisionError):
            # No benchmarks -> 0/0, but the per-rep collect must have
            # happened before any timing work.
            perfbench.measure_mechanism("perfect", reps=1)
        assert collections, "rep did not gc.collect() before measuring"
