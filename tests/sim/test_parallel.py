"""The parallel experiment runner: determinism, ordering, caching."""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.sim.config import MachineConfig
from repro.sim.parallel import (
    CellSpec,
    ResultCache,
    _worker_init,
    default_jobs,
    run_cells,
)
from repro.sim.simulator import SimResult


def make_specs() -> list[CellSpec]:
    """A small grid: 2 benchmarks x 2 mechanisms."""
    return [
        CellSpec(
            workload=bench,
            config=MachineConfig(mechanism=mech, idle_threads=1),
            user_insts=600,
            warmup_insts=150,
            max_cycles=2_000_000,
        )
        for bench in ("compress", "murphi")
        for mech in ("traditional", "multithreaded")
    ]


def result_key(result: SimResult) -> dict:
    return dataclasses.asdict(result)


class TestDeterminism:
    def test_parallel_matches_serial(self, tmp_path, monkeypatch):
        """jobs=2 and jobs=1 produce identical stats for every cell."""
        monkeypatch.setenv("REPRO_CACHE", "0")
        serial = run_cells(make_specs(), jobs=1)
        parallel = run_cells(make_specs(), jobs=2)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert result_key(s) == result_key(p)

    def test_mix_workload(self, monkeypatch):
        """Tuple workloads (multiprogrammed mixes) run and are ordered."""
        monkeypatch.setenv("REPRO_CACHE", "0")
        spec = CellSpec(
            workload=("compress", "murphi"),
            config=MachineConfig(mechanism="multithreaded", idle_threads=1),
            user_insts=400,
            warmup_insts=100,
            max_cycles=2_000_000,
        )
        (a,), (b,) = run_cells([spec], jobs=1), run_cells([spec], jobs=2)
        assert result_key(a) == result_key(b)
        assert len(a.per_thread_user) >= 2


class TestCache:
    def test_second_run_is_served_from_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        cache = ResultCache(tmp_path)
        specs = make_specs()[:2]
        first = run_cells(specs, jobs=1, cache=cache)
        files = list(tmp_path.glob("*.pkl"))
        assert len(files) == 2

        # Poison run_cell: a cache hit must not re-simulate.
        import repro.sim.parallel as parallel_mod

        def boom(spec):  # pragma: no cover - would fail the test
            raise AssertionError("cache miss: cell was re-simulated")

        monkeypatch.setattr(parallel_mod, "run_cell", boom)
        second = run_cells(specs, jobs=1, cache=cache)
        for a, b in zip(first, second):
            assert result_key(a) == result_key(b)

    def test_cache_key_separates_configs(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        specs = make_specs()
        run_cells(specs, jobs=1, cache=cache)
        # 4 distinct (workload, config) cells -> 4 distinct entries.
        assert len(list(tmp_path.glob("*.pkl"))) == 4

    def test_disabled_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_cells(make_specs()[:1], jobs=1)
        assert list(tmp_path.glob("*.pkl")) == []


class TestJobs:
    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert default_jobs() == 7

    @pytest.mark.parametrize("raw", ["many", "2.5", "-3", "1e3"])
    def test_invalid_env_is_rejected_early(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()

    @pytest.mark.parametrize("raw", ["", "0", " 0 "])
    def test_zero_or_unset_means_cpu_count(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        assert default_jobs() >= 1


class TestSanitizePropagation:
    def test_worker_init_sets_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        _worker_init({"REPRO_SANITIZE": "1"})
        assert os.environ["REPRO_SANITIZE"] == "1"

    def test_worker_init_clears_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        _worker_init({})
        assert "REPRO_SANITIZE" not in os.environ

    def test_sanitized_parallel_run_matches_serial(
        self, tmp_path, monkeypatch
    ):
        """A sanitized fan-out completes and stays bit-identical."""
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        specs = make_specs()[:2]
        parallel = run_cells(specs, jobs=2, cache=None)
        monkeypatch.delenv("REPRO_SANITIZE")
        serial = run_cells(specs, jobs=1, cache=None)
        assert [result_key(r) for r in parallel] == [
            result_key(r) for r in serial
        ]
