"""The parallel experiment runner: determinism, ordering, caching."""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.sim.config import MachineConfig
from repro.sim.parallel import (
    CellSpec,
    ResultCache,
    _worker_init,
    default_jobs,
    run_cell,
    run_cells,
)
from repro.sim.simulator import SimResult


def make_specs() -> list[CellSpec]:
    """A small grid: 2 benchmarks x 2 mechanisms."""
    return [
        CellSpec(
            workload=bench,
            config=MachineConfig(mechanism=mech, idle_threads=1),
            user_insts=600,
            warmup_insts=150,
            max_cycles=2_000_000,
        )
        for bench in ("compress", "murphi")
        for mech in ("traditional", "multithreaded")
    ]


def result_key(result: SimResult) -> dict:
    return dataclasses.asdict(result)


class TestDeterminism:
    def test_parallel_matches_serial(self, tmp_path, monkeypatch):
        """jobs=2 and jobs=1 produce identical stats for every cell."""
        monkeypatch.setenv("REPRO_CACHE", "0")
        serial = run_cells(make_specs(), jobs=1)
        parallel = run_cells(make_specs(), jobs=2)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert result_key(s) == result_key(p)

    def test_mix_workload(self, monkeypatch):
        """Tuple workloads (multiprogrammed mixes) run and are ordered."""
        monkeypatch.setenv("REPRO_CACHE", "0")
        spec = CellSpec(
            workload=("compress", "murphi"),
            config=MachineConfig(mechanism="multithreaded", idle_threads=1),
            user_insts=400,
            warmup_insts=100,
            max_cycles=2_000_000,
        )
        (a,), (b,) = run_cells([spec], jobs=1), run_cells([spec], jobs=2)
        assert result_key(a) == result_key(b)
        assert len(a.per_thread_user) >= 2


class TestCache:
    def test_second_run_is_served_from_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        cache = ResultCache(tmp_path)
        specs = make_specs()[:2]
        first = run_cells(specs, jobs=1, cache=cache)
        files = list(tmp_path.glob("*.pkl"))
        assert len(files) == 2

        # Poison run_cell: a cache hit must not re-simulate.
        import repro.sim.parallel as parallel_mod

        def boom(spec):  # pragma: no cover - would fail the test
            raise AssertionError("cache miss: cell was re-simulated")

        monkeypatch.setattr(parallel_mod, "run_cell", boom)
        second = run_cells(specs, jobs=1, cache=cache)
        for a, b in zip(first, second):
            assert result_key(a) == result_key(b)

    def test_cache_key_separates_configs(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        specs = make_specs()
        run_cells(specs, jobs=1, cache=cache)
        # 4 distinct (workload, config) cells -> 4 distinct entries.
        assert len(list(tmp_path.glob("*.pkl"))) == 4

    def test_disabled_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_cells(make_specs()[:1], jobs=1)
        assert list(tmp_path.glob("*.pkl")) == []

    def test_cache_object_honors_disable_itself(self, tmp_path, monkeypatch):
        """REPRO_CACHE=0 gates get/put inside the cache: an explicitly
        held ResultCache drops puts and misses gets, so callers never
        need their own enabled() guard."""
        cache = ResultCache(tmp_path)
        spec = make_specs()[0]
        (result,) = run_cells([spec], jobs=1, cache=cache)
        assert cache.get(spec) is not None
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert cache.get(spec) is None  # entry exists; gate says miss
        other = make_specs()[1]
        cache.put(other, result)
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert cache.get(other) is None  # the put was dropped


class TestEngineFingerprint:
    def test_source_tree_is_hashed_exactly_once_per_process(self, tmp_path):
        """The fingerprint walks the whole source tree; callers hit it
        on every cache key, so it must be computed once and memoized."""
        import repro.sim.parallel as parallel_mod
        from repro.sim.parallel import engine_fingerprint

        parallel_mod._FINGERPRINT_CACHE.clear()
        baseline = parallel_mod._fingerprint_passes
        first = engine_fingerprint()
        for _ in range(3):
            assert engine_fingerprint() == first
        # Cache-key construction reuses the memo too.
        ResultCache(tmp_path)._path(make_specs()[0])
        assert parallel_mod._fingerprint_passes == baseline + 1


class TestManifestFailureContainment:
    def test_put_survives_non_oserror_manifest_failure(
        self, tmp_path, monkeypatch
    ):
        """Once the pickle is published the cell *is* cached: a manifest
        builder blowing up (any exception, not just OSError) must warn
        once, not crash the worker."""
        import repro.obs.manifest as manifest_mod

        def broken(*args, **kwargs):
            raise ValueError("unserializable counter")

        monkeypatch.setattr(manifest_mod, "build_manifest", broken)
        monkeypatch.setattr(ResultCache, "_manifest_warned", False)
        cache = ResultCache(tmp_path)
        spec = make_specs()[0]
        result = run_cell(spec)

        with pytest.warns(RuntimeWarning, match="manifest write failed"):
            cache.put(spec, result)
        # The result itself was published and is served...
        assert result_key(cache.get(spec)) == result_key(result)
        # ...without a manifest, and without leaking a temp file.
        assert not cache.manifest_path(spec).exists()
        assert list(tmp_path.glob("*.tmp.*")) == []

        # The warning is a once-per-process latch, not per-cell noise.
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            cache.put(spec, result)  # a second failure stays silent

    def test_oserror_manifest_failure_stays_silent(
        self, tmp_path, monkeypatch
    ):
        """I/O trouble (read-only dir, ENOSPC) already degrades the
        pickle path quietly; the manifest path matches."""
        import warnings as warnings_mod

        import repro.obs.manifest as manifest_mod

        def no_space(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(manifest_mod, "write_manifest", no_space)
        monkeypatch.setattr(ResultCache, "_manifest_warned", False)
        cache = ResultCache(tmp_path)
        spec = make_specs()[0]
        result = run_cell(spec)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            cache.put(spec, result)
        assert result_key(cache.get(spec)) == result_key(result)


class TestJobs:
    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert default_jobs() == 7

    @pytest.mark.parametrize("raw", ["many", "2.5", "-3", "1e3"])
    def test_invalid_env_is_rejected_early(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()

    @pytest.mark.parametrize("raw", ["", "0", " 0 "])
    def test_zero_or_unset_means_cpu_count(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        assert default_jobs() >= 1


class TestSanitizePropagation:
    def test_worker_init_sets_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        _worker_init({"REPRO_SANITIZE": "1"})
        assert os.environ["REPRO_SANITIZE"] == "1"

    def test_worker_init_clears_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        _worker_init({})
        assert "REPRO_SANITIZE" not in os.environ

    def test_sanitized_parallel_run_matches_serial(
        self, tmp_path, monkeypatch
    ):
        """A sanitized fan-out completes and stays bit-identical."""
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        specs = make_specs()[:2]
        parallel = run_cells(specs, jobs=2, cache=None)
        monkeypatch.delenv("REPRO_SANITIZE")
        serial = run_cells(specs, jobs=1, cache=None)
        assert [result_key(r) for r in parallel] == [
            result_key(r) for r in serial
        ]
