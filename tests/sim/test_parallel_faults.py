"""Robustness tests for the parallel runner: crashed workers, hung
workers, cache atomicity, and environment propagation."""

import os
import pickle

import pytest

from repro.sim.config import MachineConfig
from repro.sim.parallel import (
    CellSpec,
    ResultCache,
    job_timeout,
    max_retries,
    run_cell,
    run_cells,
)


def _specs(n=3):
    mechanisms = ("perfect", "traditional", "multithreaded", "quickstart")
    return [
        CellSpec("compress", MachineConfig(mechanism=mechanisms[i]),
                 2000, 400, 150_000)
        for i in range(n)
    ]


def _same(a, b):
    return all(
        x.cycles == y.cycles
        and x.retired_user == y.retired_user
        and x.committed_fills == y.committed_fills
        for x, y in zip(a, b)
    )


@pytest.fixture
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")


@pytest.fixture
def serial_reference(no_cache):
    return run_cells(_specs(), jobs=1)


def test_killed_worker_is_retried_with_identical_results(
    tmp_path, monkeypatch, serial_reference
):
    latch = tmp_path / "kill.latch"
    latch.touch()
    monkeypatch.setenv("REPRO_TEST_WORKER_FAULT", f"kill:{latch}")
    results = run_cells(_specs(), jobs=3)
    assert not latch.exists(), "the sabotage never fired"
    assert _same(results, serial_reference)


def test_hung_worker_is_killed_and_retried(
    tmp_path, monkeypatch, serial_reference
):
    latch = tmp_path / "hang.latch"
    latch.touch()
    monkeypatch.setenv("REPRO_TEST_WORKER_FAULT", f"hang:{latch}")
    monkeypatch.setenv("REPRO_JOB_TIMEOUT", "15")
    results = run_cells(_specs(), jobs=3)
    assert not latch.exists(), "the sabotage never fired"
    assert _same(results, serial_reference)


def test_retries_exhausted_degrades_to_serial(monkeypatch, serial_reference):
    # Arm an inexhaustible kill (the latch regenerates): every pool
    # generation dies, so only the serial completion path can finish.
    monkeypatch.setenv("REPRO_RETRIES", "1")
    calls = {"n": 0}

    import repro.sim.parallel as parallel

    real_attempt = parallel._run_pool_attempt

    def broken_attempt(todo, pending, out, workers, timeout):
        calls["n"] += 1
        return pending  # pool produced nothing

    monkeypatch.setattr(parallel, "_run_pool_attempt", broken_attempt)
    results = run_cells(_specs(), jobs=3)
    assert calls["n"] == 2  # first attempt + one retry
    assert _same(results, serial_reference)
    monkeypatch.setattr(parallel, "_run_pool_attempt", real_attempt)


def test_cache_put_is_atomic_and_prunes_dead_writers(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _specs(1)[0]
    result = run_cell(spec)

    # A tmp file from a dead writer pid must be swept on the next put.
    stale = tmp_path / "deadbeef.pkl.tmp.999999999"
    tmp_path.mkdir(exist_ok=True)
    stale.write_bytes(b"partial")
    # Our own (live) tmp files are left alone.
    own = tmp_path / f"cafef00d.pkl.tmp.{os.getpid()}"
    own.write_bytes(b"in-flight")

    cache.put(spec, result)
    assert not stale.exists()
    assert own.exists()
    hit = cache.get(spec)
    assert hit is not None and hit.cycles == result.cycles

    # A truncated pickle under the final name is treated as a miss, not
    # an error.
    path = cache._path(spec)
    path.write_bytes(pickle.dumps(result)[:10])
    assert cache.get(spec) is None


def test_worker_env_propagates_fault_spec(monkeypatch):
    import repro.sim.parallel as parallel

    monkeypatch.setenv("REPRO_FAULTS", "seed:1,mem_delay:40")
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    env = parallel._worker_env()
    assert env["REPRO_FAULTS"] == "seed:1,mem_delay:40"
    assert "REPRO_SANITIZE" not in env

    # A worker initialised from that env reproduces it exactly.
    monkeypatch.setenv("REPRO_FAULTS", "stale-value")
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    parallel._worker_init(env)
    assert os.environ["REPRO_FAULTS"] == "seed:1,mem_delay:40"
    assert "REPRO_SANITIZE" not in os.environ


def test_fault_spec_keys_the_cache(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    spec = _specs(1)[0]
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    clean_path = cache._path(spec)
    monkeypatch.setenv("REPRO_FAULTS", "seed:1,mem_delay:40")
    assert cache._path(spec) != clean_path


def test_knob_validation():
    for env, getter in (("REPRO_JOB_TIMEOUT", job_timeout),
                        ("REPRO_RETRIES", max_retries)):
        os.environ[env] = "nonsense"
        try:
            with pytest.raises(ValueError):
                getter()
            os.environ[env] = "-1"
            with pytest.raises(ValueError):
                getter()
        finally:
            del os.environ[env]
    assert job_timeout() == 0.0
    assert max_retries() == 2
