"""Tests for the Simulator driver and SimResult."""

import pytest

from repro.memory.tlb import PerfectTLB, TLB
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.suite import build_benchmark


class TestConstruction:
    def test_perfect_mechanism_uses_perfect_tlb(self):
        sim = Simulator(build_benchmark("compress"), MachineConfig(mechanism="perfect"))
        assert isinstance(sim.dtlb, PerfectTLB)
        assert sim.mechanism is None

    def test_real_mechanism_uses_real_tlb(self):
        sim = Simulator(
            build_benchmark("compress"), MachineConfig(mechanism="multithreaded")
        )
        assert isinstance(sim.dtlb, TLB)
        assert sim.dtlb.capacity == 64

    def test_idle_threads_added_to_contexts(self):
        sim = Simulator(
            build_benchmark("compress"),
            MachineConfig(mechanism="multithreaded", idle_threads=3),
        )
        assert len(sim.core.threads) == 4

    def test_workload_pages_mapped(self):
        sim = Simulator(build_benchmark("compress"), MachineConfig())
        assert sim.page_table.mapped_pages > 64  # exceeds TLB reach

    def test_prewarm_installs_hot_data_in_l2(self):
        sim = Simulator(build_benchmark("compress"), MachineConfig())
        program = sim.programs[0]
        base, _ = program.warm_ranges[0]
        assert sim.hierarchy.l2.probe(base)

    def test_empty_program_list_rejected(self):
        with pytest.raises(ValueError):
            Simulator([], MachineConfig())


class TestRuns:
    def test_run_reaches_instruction_target(self):
        sim = Simulator(build_benchmark("vortex"), MachineConfig(mechanism="perfect"))
        result = sim.run(user_insts=500, warmup_insts=100, max_cycles=200_000)
        assert result.retired_user >= 500
        assert result.cycles > 0

    def test_warmup_excluded_from_measurement(self):
        sim = Simulator(build_benchmark("vortex"), MachineConfig(mechanism="perfect"))
        result = sim.run(user_insts=500, warmup_insts=500, max_cycles=200_000)
        assert result.stats.retired_user >= 1000  # raw counter: whole run
        assert result.retired_user < result.stats.retired_user

    def test_determinism(self):
        def one_run():
            sim = Simulator(
                build_benchmark("murphi"),
                MachineConfig(mechanism="multithreaded"),
            )
            return sim.run(user_insts=800, warmup_insts=200, max_cycles=400_000)

        a, b = one_run(), one_run()
        assert a.cycles == b.cycles
        assert a.committed_fills == b.committed_fills

    def test_max_cycles_guard_raises(self):
        sim = Simulator(build_benchmark("compress"), MachineConfig())
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(user_insts=10_000_000, max_cycles=500)

    def test_result_fields_consistent(self):
        sim = Simulator(
            build_benchmark("compress"), MachineConfig(mechanism="multithreaded")
        )
        result = sim.run(user_insts=600, warmup_insts=200, max_cycles=400_000)
        assert result.mechanism == "multithreaded"
        assert result.committed_fills > 0
        assert result.miss_rate_per_kilo_inst > 0
        assert 0 < result.ipc <= 8
        assert result.per_thread_user[0] >= 800
