"""Multi-process result-cache stress: concurrent writers, kill-mid-write.

Several real processes hammer one cache directory with puts and gets of
the same cells while saboteur processes die abruptly, leaving behind the
partial ``*.tmp.<pid>`` files a writer killed mid-write would.  The
invariants under test are the cache's two hard promises:

* a reader is **never** served a truncated or corrupt pickle -- every
  ``get`` returns either ``None`` or the bit-exact result;
* temp files orphaned by dead writers are pruned on the next ``put``
  (pid-liveness), while live writers' temps are left alone.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

from repro.sim.config import MachineConfig
from repro.sim.parallel import CellSpec, ResultCache, run_cell

#: Argv: cache_dir rounds sabotage("0"/"1").  Exit 0 = every get was
#: clean; exit 43 = saboteur died on cue; any other exit = corruption.
WORKER = r"""
import dataclasses, os, pickle, sys
from repro.sim.config import MachineConfig
from repro.sim.parallel import CellSpec, ResultCache, run_cell

cache_dir, rounds, sabotage = sys.argv[1], int(sys.argv[2]), sys.argv[3] == "1"
spec = CellSpec(
    workload="compress",
    config=MachineConfig(mechanism="traditional", idle_threads=1),
    user_insts=200,
    warmup_insts=50,
    max_cycles=2_000_000,
)
cache = ResultCache(cache_dir)
result = run_cell(spec)
expected = dataclasses.asdict(result)
payload = pickle.dumps(result)
for _ in range(rounds):
    cache.put(spec, result)
    got = cache.get(spec)
    if got is not None and dataclasses.asdict(got) != expected:
        sys.exit(7)  # corrupt or foreign pickle served
    if sabotage:
        # What a writer killed between open and rename leaves behind:
        # a half-written, pid-suffixed temp under this (live) pid.
        tmp = cache._path(spec).with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(payload[: len(payload) // 2])
if sabotage:
    os._exit(43)  # die without cleanup; the temp is now orphaned
"""


def spawn(cache_dir: Path, rounds: int, sabotage: bool) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env["REPRO_CACHE"] = "1"
    return subprocess.Popen(
        [sys.executable, "-c", WORKER, str(cache_dir), str(rounds),
         "1" if sabotage else "0"],
        env=env,
    )


def test_concurrent_processes_never_see_torn_pickles(tmp_path):
    """4 writers x 8 rounds on one cell, half dying mid-write."""
    workers = [spawn(tmp_path, rounds=8, sabotage=i % 2 == 1) for i in range(4)]
    codes = [w.wait(timeout=600) for w in workers]
    assert codes[0::2] == [0, 0], f"clean worker saw corruption: {codes}"
    assert codes[1::2] == [43, 43], f"saboteurs died wrong: {codes}"

    # The saboteurs' partial temps are orphaned under dead pids.
    orphans = list(tmp_path.glob("*.tmp.*"))
    assert orphans, "saboteurs should have left partial temps behind"

    spec = CellSpec(
        workload="compress",
        config=MachineConfig(mechanism="traditional", idle_threads=1),
        user_insts=200,
        warmup_insts=50,
        max_cycles=2_000_000,
    )
    cache = ResultCache(tmp_path)

    # The published pickle survived every kill bit-exact.
    got = cache.get(spec)
    assert got is not None
    assert dataclasses.asdict(got) == dataclasses.asdict(run_cell(spec))

    # The next put prunes every dead writer's temp (pid-liveness).
    cache.put(spec, got)
    assert list(tmp_path.glob("*.tmp.*")) == []


def test_live_writers_temps_are_not_pruned(tmp_path):
    """Pid-liveness must only reap the dead: our own in-flight temp (a
    live pid) survives another process's prune pass."""
    spec = CellSpec(
        workload="compress",
        config=MachineConfig(mechanism="traditional", idle_threads=1),
        user_insts=200,
        warmup_insts=50,
        max_cycles=2_000_000,
    )
    cache = ResultCache(tmp_path)
    result = run_cell(spec)
    cache.put(spec, result)

    live_tmp = cache._path(spec).with_suffix(f".tmp.{os.getpid()}")
    live_tmp.write_bytes(b"in flight")
    dead_tmp = cache._path(spec).with_suffix(".json.tmp.999999999")
    dead_tmp.write_bytes(b"dead manifest writer")

    cache._prune_stale_tmps()
    assert live_tmp.exists(), "live writer's temp must survive"
    assert not dead_tmp.exists(), "dead pid's manifest temp must be reaped"
    live_tmp.unlink()
