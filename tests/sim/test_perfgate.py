"""Gate logic tests for the engine perf-regression check."""

from repro.sim.perfbench import check_gate, format_gate_summary


def _report(scale=1.0):
    ips = {"perfect": 16000.0, "traditional": 14000.0}
    return {
        "instrs_per_sec": {k: v * scale for k, v in ips.items()},
        "aggregate": 14933.3 * scale,
    }


BASELINE = _report()


def test_equal_throughput_passes():
    rows, ok = check_gate(_report(), BASELINE, max_drop=0.15)
    assert ok
    assert {name for name, *_ in rows} == {
        "perfect", "traditional", "aggregate"
    }
    assert all(within for *_, within in rows)


def test_small_drop_within_tolerance_passes():
    rows, ok = check_gate(_report(0.90), BASELINE, max_drop=0.15)
    assert ok


def test_large_drop_fails():
    rows, ok = check_gate(_report(0.80), BASELINE, max_drop=0.15)
    assert not ok
    assert all(not within for *_, within in rows)


def test_single_mechanism_regression_fails():
    report = _report()
    report["instrs_per_sec"]["traditional"] = 10000.0
    rows, ok = check_gate(report, BASELINE, max_drop=0.15)
    assert not ok
    bad = {name for name, *_, within in rows if not within}
    assert "traditional" in bad
    assert "perfect" not in bad


def test_improvement_never_trips_the_gate():
    rows, ok = check_gate(_report(2.0), BASELINE, max_drop=0.15)
    assert ok


def test_unknown_mechanisms_in_baseline_are_ignored():
    baseline = {
        "instrs_per_sec": {"perfect": 16000.0, "retired_mech": 1.0},
        "aggregate": 14933.3,
    }
    rows, ok = check_gate(_report(), baseline, max_drop=0.15)
    assert ok
    assert "retired_mech" not in {name for name, *_ in rows}


def test_summary_is_markdown_with_deltas():
    rows, ok = check_gate(_report(0.80), BASELINE, max_drop=0.15)
    text = format_gate_summary(rows, ok, 0.15)
    assert "FAIL" in text
    assert "**REGRESSION**" in text
    assert "| mechanism |" in text
    assert "-20.0%" in text
