"""Edge-case tests for SimResult and run control."""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.simulator import SimResult, Simulator
from repro.sim.stats import SimStats
from repro.workloads.suite import build_benchmark


class TestSimResultEdges:
    def _result(self, **kw):
        defaults = dict(
            cycles=100,
            mechanism="perfect",
            stats=SimStats(),
            tlb=None,
            branch=None,
            mech=None,
            l1d=None,
            l2=None,
        )
        defaults.update(kw)
        return SimResult(**defaults)

    def test_zero_cycles_ipc(self):
        assert self._result(cycles=0).ipc == 0.0

    def test_zero_user_miss_rate(self):
        assert self._result(retired_user=0).miss_rate_per_kilo_inst == 0.0

    def test_miss_rate_units(self):
        result = self._result(committed_fills=5, retired_user=1000)
        assert result.miss_rate_per_kilo_inst == 5.0


class TestRunControl:
    def test_zero_warmup_skips_warmup_phase(self):
        sim = Simulator(build_benchmark("murphi"), MachineConfig(mechanism="perfect"))
        result = sim.run(user_insts=300, warmup_insts=0, max_cycles=200_000)
        assert result.retired_user == result.stats.retired_user

    def test_repeated_run_calls_measure_incrementally(self):
        sim = Simulator(build_benchmark("murphi"), MachineConfig(mechanism="perfect"))
        first = sim.run(user_insts=300, warmup_insts=0, max_cycles=400_000)
        second = sim.run(user_insts=300, warmup_insts=0, max_cycles=800_000)
        assert second.retired_user >= 300
        assert sim.core.stats.retired_user >= first.retired_user + 300

    def test_stats_as_dict_round_trip(self):
        sim = Simulator(build_benchmark("murphi"), MachineConfig(mechanism="perfect"))
        sim.run(user_insts=200, warmup_insts=0, max_cycles=200_000)
        d = sim.core.stats.as_dict()
        assert d["retired_user"] >= 200
        assert d["cycles"] > 0
        assert "ipc" in d

    def test_stats_as_dict_is_exhaustive(self):
        # A hand-maintained as_dict once dropped emulation_events and the
        # derived totals; diff against the dataclass definition so any
        # future field lands in reports automatically.
        import dataclasses

        from repro.sim.stats import SimStats

        stats = SimStats()
        d = stats.as_dict()
        field_names = {f.name for f in dataclasses.fields(SimStats)}
        property_names = {
            name
            for name in dir(SimStats)
            if isinstance(getattr(SimStats, name), property)
        }
        assert set(d) == field_names | property_names
        assert {"emulation_events", "retired_total", "fetch_waste_fraction"} <= set(d)

    def test_fetch_waste_fraction_bounded(self):
        sim = Simulator(
            build_benchmark("gcc"), MachineConfig(mechanism="perfect")
        )
        sim.run(user_insts=500, warmup_insts=100, max_cycles=400_000)
        assert 0.0 <= sim.core.stats.fetch_waste_fraction <= 1.0
