"""Tests for the penalty-per-miss metric plumbing."""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.metrics import PenaltyResult, penalty_per_miss, run_pair
from repro.workloads.suite import build_benchmark


class TestPenaltyResult:
    def test_penalty_arithmetic(self):
        result = PenaltyResult(
            mechanism="traditional",
            cycles=1500,
            perfect_cycles=1000,
            fills=50,
            retired_user=5000,
        )
        assert result.penalty_cycles == 500
        assert result.penalty_per_miss == 10.0
        assert result.relative_overhead == pytest.approx(1 / 3)

    def test_zero_fills_is_total(self):
        result = PenaltyResult("x", 100, 100, 0, 1000)
        assert result.penalty_per_miss == 0.0

    def test_speedup_over(self):
        fast = PenaltyResult("a", 1000, 900, 10, 100)
        slow = PenaltyResult("b", 2000, 900, 10, 100)
        assert fast.speedup_over(slow) == 2.0


class TestRunPair:
    def test_pair_produces_positive_penalty(self):
        config = MachineConfig(mechanism="traditional")
        mech, perfect, penalty = run_pair(
            lambda: build_benchmark("compress"), config, user_insts=1000
        )
        assert mech.mechanism == "traditional"
        assert perfect.mechanism == "perfect"
        assert penalty.fills > 0
        assert penalty.penalty_per_miss > 0

    def test_penalty_per_miss_from_results(self):
        config = MachineConfig(mechanism="hardware")
        mech, perfect, _ = run_pair(
            lambda: build_benchmark("vortex"), config, user_insts=800
        )
        packaged = penalty_per_miss(mech, perfect)
        assert packaged.cycles == mech.cycles
        assert packaged.fills == mech.committed_fills
