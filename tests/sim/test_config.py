"""Tests for MachineConfig: Table 1 defaults and the paper's sweeps."""

import pytest

from repro.isa.instructions import FUClass
from repro.sim.config import FUPool, MachineConfig


class TestTable1Defaults:
    def test_core_shape(self):
        config = MachineConfig()
        assert config.width == 8
        assert config.window_size == 128
        assert config.pipe_depth == 7  # 3 fetch + 1 decode + 1 sched + 2 rr

    def test_fu_pool(self):
        pool = MachineConfig().fu_pool
        assert (pool.alu, pool.muldiv, pool.fp, pool.fpdiv, pool.mem) == (
            8, 3, 3, 1, 3,
        )

    def test_fu_latencies(self):
        config = MachineConfig()
        assert config.fu_latency(FUClass.INT_ALU) == 1
        assert config.fu_latency(FUClass.INT_MUL) == 3
        assert config.fu_latency(FUClass.INT_DIV) == 12
        assert config.fu_latency(FUClass.FP_ADD) == 2
        assert config.fu_latency(FUClass.FP_MUL) == 4
        assert config.fu_latency(FUClass.FP_DIV) == 12
        assert config.fu_latency(FUClass.FP_SQRT) == 26
        assert config.fu_latency(FUClass.STORE) == 2

    def test_memory_system(self):
        h = MachineConfig().hierarchy
        assert h.l1d_size == 64 * 1024 and h.l1d_ways == 2 and h.l1d_line == 32
        assert h.l2_size == 1024 * 1024 and h.l2_ways == 4 and h.l2_line == 64
        assert h.memory_latency == 80
        assert h.l1l2_bus_occupancy == 2
        assert h.l2mem_bus_occupancy == 11

    def test_dtlb_entries(self):
        assert MachineConfig().dtlb_entries == 64


class TestSweeps:
    @pytest.mark.parametrize("depth", [3, 7, 11])
    def test_pipe_depth_sweep(self, depth):
        config = MachineConfig().with_pipe_depth(depth)
        assert config.pipe_depth == depth
        assert config.decode_latency == 1

    def test_pipe_depth_minimum(self):
        with pytest.raises(ValueError):
            MachineConfig().with_pipe_depth(2)

    @pytest.mark.parametrize("width,window", [(2, 32), (4, 64), (8, 128)])
    def test_width_sweep(self, width, window):
        config = MachineConfig().with_width(width)
        assert config.width == width
        assert config.window_size == window
        assert config.fu_pool == FUPool.for_width(width)

    def test_width_sweep_rejects_odd_width(self):
        with pytest.raises(ValueError):
            MachineConfig().with_width(6)

    def test_with_mechanism(self):
        config = MachineConfig().with_mechanism("hardware", idle_threads=3)
        assert config.mechanism == "hardware"
        assert config.idle_threads == 3

    def test_sweeps_do_not_mutate_original(self):
        base = MachineConfig()
        base.with_pipe_depth(11)
        assert base.pipe_depth == 7


class TestValidation:
    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError, match="mechanism"):
            MachineConfig(mechanism="magic")

    def test_unknown_chooser_rejected(self):
        with pytest.raises(ValueError, match="chooser"):
            MachineConfig(chooser="alphabetical")

    def test_tiny_window_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(window_size=2)

    def test_fu_pool_width_validation(self):
        with pytest.raises(ValueError):
            FUPool.for_width(3)

    def test_pool_capacity_lookup(self):
        assert FUPool().capacity("mem") == 3
        assert MachineConfig.fu_group(FUClass.LOAD) == "mem"
        assert MachineConfig.fu_group(FUClass.BRANCH) == "alu"
