"""Engine wiring in the parallel runner: cache keys, worker env
propagation, batch claims, and pool bit-identity across backends."""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.parallel import (
    _WORKER_ENV_KEYS,
    CellSpec,
    ResultCache,
    pool_batch_size,
    run_cell,
    run_cell_batch,
    run_cells,
)


def _spec(mechanism="traditional", user_insts=600):
    return CellSpec(
        workload="compress",
        config=MachineConfig(mechanism=mechanism, idle_threads=1),
        user_insts=user_insts,
        warmup_insts=150,
        max_cycles=2_000_000,
    )


class TestCacheKey:
    def test_engine_keys_the_cache_path(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = _spec()
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        reference_path = cache._path(spec)
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        batched_path = cache._path(spec)
        assert reference_path != batched_path

    def test_batched_result_never_serves_reference_request(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        spec = _spec()
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        cache.put(spec, run_cell(spec))
        assert cache.get(spec) is not None
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert cache.get(spec) is None


class TestWorkerEnv:
    def test_engine_propagates_to_pool_workers(self):
        assert "REPRO_ENGINE" in _WORKER_ENV_KEYS


class TestPoolBatchSize:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "5")
        assert pool_batch_size(100, 4) == 5

    @pytest.mark.parametrize("raw", ["0", "-3", "lots"])
    def test_bad_env_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BATCH", raw)
        with pytest.raises(ValueError, match="REPRO_BATCH"):
            pool_batch_size(100, 4)

    def test_auto_sizing(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        # Few cells: one per claim keeps all workers busy.
        assert pool_batch_size(3, 8) == 1
        # Large grids amortize several cells per claim, capped at 16.
        assert pool_batch_size(100, 4) == 100 // 16
        assert pool_batch_size(10_000, 4) == 16


class TestBatchClaims:
    def test_run_cell_batch_matches_run_cell(self):
        specs = [_spec("traditional"), _spec("multithreaded")]
        expected = [run_cell(s, engine="reference") for s in specs]
        assert run_cell_batch(specs, engine="batched") == expected
        assert run_cell_batch(specs, engine="reference") == expected

    def test_pool_is_bit_identical_across_engines(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        specs = [_spec("traditional"), _spec("quickstart"), _spec("hardware")]
        serial = [run_cell(s, engine="reference") for s in specs]
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        monkeypatch.setenv("REPRO_BATCH", "2")
        assert run_cells(specs, jobs=2) == serial
