"""Tests for the pipeline tracer."""

import pytest

from repro.isa.program import DataSegment
from repro.sim.trace import PipelineTracer
from tests.conftest import make_sim, run_to_halt


def _miss_sim(data_base, mechanism="multithreaded"):
    return make_sim(
        f"""
        main:
            li   r1, {data_base}
            ld   r2, 0(r1)
            add  r3, r2, 1
            halt
        """,
        mechanism=mechanism,
        segments=[DataSegment(base=data_base, words=[41])],
    )


class TestTracer:
    def test_retirement_order_captured(self, data_base):
        sim = _miss_sim(data_base)
        with PipelineTracer(sim.core) as tracer:
            run_to_halt(sim)
        order = tracer.retirement_order()
        assert order, "no retirements recorded"
        ops = [e.op for e in order]
        assert "halt" in ops and "reti" in ops

    def test_handler_episode_detected(self, data_base):
        sim = _miss_sim(data_base)
        with PipelineTracer(sim.core) as tracer:
            run_to_halt(sim)
        episodes = tracer.handler_episodes()
        assert len(episodes) == 1
        assert episodes[0].handler_instructions == 10  # common-case handler
        assert episodes[0].latency >= 0

    def test_issue_and_squash_kinds(self, data_base):
        sim = _miss_sim(data_base, mechanism="traditional")
        with PipelineTracer(sim.core, kinds=("issue", "squash")) as tracer:
            run_to_halt(sim)
        assert tracer.of_kind("issue")
        assert tracer.of_kind("squash")  # the trap squashed something
        assert not tracer.of_kind("retire")

    def test_detach_restores_core(self, data_base):
        sim = _miss_sim(data_base)
        original = sim.core._do_retire
        tracer = PipelineTracer(sim.core)
        assert sim.core._do_retire != original
        tracer.detach()
        assert sim.core._do_retire == original
        run_to_halt(sim)
        assert not tracer.events  # recorded nothing after detach

    def test_format_is_readable(self, data_base):
        sim = _miss_sim(data_base)
        with PipelineTracer(sim.core) as tracer:
            run_to_halt(sim)
        text = tracer.format(limit=5)
        assert "retire" in text
        assert "more events" in text

    def test_trace_does_not_change_timing(self, data_base):
        plain = _miss_sim(data_base)
        cycles_plain = run_to_halt(plain)
        traced = _miss_sim(data_base)
        with PipelineTracer(traced.core, kinds=("retire", "issue", "squash")):
            cycles_traced = run_to_halt(traced)
        assert cycles_plain == cycles_traced
