"""Tests for the pipeline tracer."""

import pytest

from repro.isa.program import DataSegment
from repro.sim.trace import PipelineTracer, TraceEvent, group_handler_episodes
from tests.conftest import make_sim, run_to_halt


def _miss_sim(data_base, mechanism="multithreaded"):
    return make_sim(
        f"""
        main:
            li   r1, {data_base}
            ld   r2, 0(r1)
            add  r3, r2, 1
            halt
        """,
        mechanism=mechanism,
        segments=[DataSegment(base=data_base, words=[41])],
    )


class TestTracer:
    def test_retirement_order_captured(self, data_base):
        sim = _miss_sim(data_base)
        with PipelineTracer(sim.core) as tracer:
            run_to_halt(sim)
        order = tracer.retirement_order()
        assert order, "no retirements recorded"
        ops = [e.op for e in order]
        assert "halt" in ops and "reti" in ops

    def test_handler_episode_detected(self, data_base):
        sim = _miss_sim(data_base)
        with PipelineTracer(sim.core) as tracer:
            run_to_halt(sim)
        episodes = tracer.handler_episodes()
        assert len(episodes) == 1
        assert episodes[0].handler_instructions == 10  # common-case handler
        assert episodes[0].latency >= 0

    def test_issue_and_squash_kinds(self, data_base):
        sim = _miss_sim(data_base, mechanism="traditional")
        with PipelineTracer(sim.core, kinds=("issue", "squash")) as tracer:
            run_to_halt(sim)
        assert tracer.of_kind("issue")
        assert tracer.of_kind("squash")  # the trap squashed something
        assert not tracer.of_kind("retire")

    def test_detach_stops_recording(self, data_base):
        sim = _miss_sim(data_base)
        tracer = PipelineTracer(sim.core)
        assert len(sim.core.listeners) == 1
        tracer.detach()
        assert len(sim.core.listeners) == 0
        run_to_halt(sim)
        assert not tracer.events  # recorded nothing after detach

    def test_nested_detach_any_order(self, data_base):
        # The monkey-patch implementation required LIFO detach; detaching
        # the inner tracer first resurrected the outer tracer's stale
        # spy.  Bus subscribers detach independently in any order.
        sim = _miss_sim(data_base)
        outer = PipelineTracer(sim.core)
        inner = PipelineTracer(sim.core)
        outer.detach()  # non-LIFO: outer first
        run_to_halt(sim)
        inner.detach()
        assert not outer.events
        assert inner.retirement_order()

    def test_traditional_episodes_counted(self, data_base):
        # The old tid != 0 filter dropped traditional-trap episodes,
        # which run their handler on the faulting (tid-0) thread.
        sim = _miss_sim(data_base, mechanism="traditional")
        with PipelineTracer(sim.core) as tracer:
            run_to_halt(sim)
        episodes = tracer.handler_episodes()
        assert len(episodes) == 1
        assert episodes[0].tid == 0
        assert episodes[0].handler_instructions == 10


class TestEpisodeGrouping:
    @staticmethod
    def _retire(cycle, tid, seq, op, is_handler=True):
        return TraceEvent("retire", cycle, tid, seq, seq, op, is_handler)

    def test_back_to_back_episodes_split_on_reti(self):
        # Two spliced handlers retiring with no user retirement between
        # them used to merge into one giant episode.
        events = [
            self._retire(10, 1, 100, "ld"),
            self._retire(10, 1, 101, "reti"),
            self._retire(11, 1, 200, "ld"),
            self._retire(11, 1, 201, "reti"),
        ]
        episodes = group_handler_episodes(events)
        assert [e.handler_instructions for e in episodes] == [2, 2]

    def test_split_on_tid_change(self):
        events = [
            self._retire(10, 1, 100, "ld"),
            self._retire(10, 2, 200, "ld"),
            self._retire(11, 2, 201, "reti"),
        ]
        episodes = group_handler_episodes(events)
        assert [(e.tid, e.handler_instructions) for e in episodes] == [
            (1, 1),
            (2, 2),
        ]

    def test_user_retire_terminates_episode(self):
        events = [
            self._retire(10, 1, 100, "ld"),
            self._retire(11, 0, 5, "add", is_handler=False),
            self._retire(12, 1, 101, "ld"),
        ]
        episodes = group_handler_episodes(events)
        assert len(episodes) == 2

    def test_format_is_readable(self, data_base):
        sim = _miss_sim(data_base)
        with PipelineTracer(sim.core) as tracer:
            run_to_halt(sim)
        text = tracer.format(limit=5)
        assert "retire" in text
        assert "more events" in text

    def test_trace_does_not_change_timing(self, data_base):
        plain = _miss_sim(data_base)
        cycles_plain = run_to_halt(plain)
        traced = _miss_sim(data_base)
        with PipelineTracer(traced.core, kinds=("retire", "issue", "squash")):
            cycles_traced = run_to_halt(traced)
        assert cycles_plain == cycles_traced
