"""Shared test helpers.

``make_sim`` assembles a small user program (PAL handler installed at PC
0 automatically), maps its data, and returns a ready
:class:`~repro.sim.simulator.Simulator`.  ``run_to_halt`` steps a
simulator until every application thread retires ``halt`` (the usual
pattern for the deterministic architectural-state tests).
"""

from __future__ import annotations

import pytest

from repro.isa.program import DataSegment, Program
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import make_program


def build_test_program(
    source: str,
    segments: list[DataSegment] | None = None,
    regions: list[tuple[int, int]] | None = None,
) -> Program:
    """Assemble a test kernel with the standard layout."""
    return make_program(source, segments=segments or [], regions=regions or [])


def make_sim(
    source: str,
    mechanism: str = "perfect",
    segments: list[DataSegment] | None = None,
    regions: list[tuple[int, int]] | None = None,
    **config_kwargs,
) -> Simulator:
    """Build a simulator around one small assembled program."""
    program = build_test_program(source, segments, regions)
    config = MachineConfig(mechanism=mechanism, **config_kwargs)
    return Simulator(program, config)


def run_to_halt(sim: Simulator, max_cycles: int = 200_000) -> int:
    """Step until every application thread halts; returns the cycle count."""
    core = sim.core
    while core.cycle < max_cycles:
        if all(
            t.halted
            for t in core.threads
            if t.program is not None and not t.is_exception_thread
        ):
            return core.cycle
        core.step()
    raise AssertionError(f"program did not halt within {max_cycles} cycles")


@pytest.fixture
def data_base() -> int:
    """A standard data base address used by small test kernels."""
    return 0x1000_0000


#: All real exception mechanisms (perfect excluded).
ALL_MECHANISMS = ("traditional", "multithreaded", "hardware", "quickstart")
