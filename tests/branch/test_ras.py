"""Unit and property tests for the checkpointing return address stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch.ras import ReturnAddressStack


class TestBasics:
    def test_push_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(100)
        ras.push(200)
        assert ras.pop() == 200
        assert ras.pop() == 100

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(42)
        assert ras.peek() == 42
        assert ras.pop() == 42

    def test_wraps_at_capacity(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites the oldest
        assert ras.pop() == 3
        assert ras.pop() == 2

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestCheckpointing:
    def test_restore_undoes_pushes(self):
        ras = ReturnAddressStack(8)
        ras.push(1)
        cp = ras.checkpoint()
        ras.push(2)
        ras.push(3)
        ras.restore(cp)
        assert ras.pop() == 1

    def test_restore_undoes_pops(self):
        ras = ReturnAddressStack(8)
        ras.push(1)
        ras.push(2)
        cp = ras.checkpoint()
        ras.pop()
        ras.pop()
        ras.restore(cp)
        assert ras.pop() == 2

    def test_restore_repairs_overwritten_top(self):
        """A wrong-path pop-then-push clobbers the entry the correct path
        needs; the saved top value must repair it."""
        ras = ReturnAddressStack(8)
        ras.push(10)
        cp = ras.checkpoint()
        ras.pop()  # wrong path returns...
        ras.push(99)  # ...then calls, overwriting slot of 10
        ras.restore(cp)
        assert ras.pop() == 10

    @settings(max_examples=60)
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(0, 1000)),
                st.tuples(st.just("pop"), st.just(0)),
            ),
            max_size=30,
        )
    )
    def test_checkpoint_restores_top_after_any_single_branch_shadow(self, ops):
        """Property: after any sequence of speculative operations, restore
        brings back the checkpointed top-of-stack value."""
        ras = ReturnAddressStack(16)
        for i in range(5):
            ras.push(1000 + i)
        cp = ras.checkpoint()
        top_before = ras.peek()
        for op, value in ops:
            if op == "push":
                ras.push(value)
            else:
                ras.pop()
        ras.restore(cp)
        assert ras.peek() == top_before
