"""Unit tests for the combined front-end prediction unit."""

import pytest

from repro.branch.unit import BranchPredictionUnit
from repro.isa.instructions import Instruction, Opcode


def _inst(op, **kw):
    return Instruction(op=op, **kw)


@pytest.fixture
def unit():
    return BranchPredictionUnit()


class TestPredict:
    def test_direct_jump_perfect_target(self, unit):
        pred = unit.predict(10, _inst(Opcode.JMP, target=55))
        assert pred.taken and pred.target == 55

    def test_cond_branch_gets_direction_and_target(self, unit):
        inst = _inst(Opcode.BNE, ra=1, rb=0, target=3)
        pred = unit.predict(10, inst)
        assert pred.target in (3, 11)

    def test_cond_branch_updates_speculative_history(self, unit):
        before = unit.ghr
        unit.predict(10, _inst(Opcode.BEQ, ra=1, rb=0, target=3))
        assert unit.ghr != before or unit.ghr == (before << 1) & unit.yags.history_mask

    def test_call_pushes_return_address(self, unit):
        unit.predict(10, _inst(Opcode.CALL, rd=30, target=99))
        pred = unit.predict(99, _inst(Opcode.RET, ra=30))
        assert pred.target == 11

    def test_calli_pushes_and_predicts_indirect(self, unit):
        pred = unit.predict(10, _inst(Opcode.CALLI, rd=30, ra=5))
        assert pred.taken
        ret = unit.predict(50, _inst(Opcode.RET, ra=30))
        assert ret.target == 11

    def test_reti_is_unpredictable(self, unit):
        pred = unit.predict(10, _inst(Opcode.RETI))
        assert pred.target is None

    def test_non_branch_rejected(self, unit):
        with pytest.raises(ValueError):
            unit.predict(10, _inst(Opcode.ADD, rd=1, ra=1, rb=1))


class TestRepair:
    def test_repair_restores_and_reapplies_direction(self, unit):
        inst = _inst(Opcode.BEQ, ra=1, rb=0, target=3)
        pred = unit.predict(10, inst)
        ghr_spec = unit.ghr
        unit.predict(11, inst)  # deeper speculation
        unit.repair(10, inst, pred.checkpoint, actual_taken=not pred.taken,
                    actual_target=3 if not pred.taken else 11)
        # History now reflects the actual outcome of the repaired branch
        expected = ((pred.checkpoint.ghr << 1) | (0 if pred.taken else 1))
        assert unit.ghr == expected & unit.yags.history_mask
        assert unit.ghr != ghr_spec or pred.taken != (not pred.taken)

    def test_repair_restores_ras_for_wrong_path_call(self, unit):
        unit.predict(10, _inst(Opcode.CALL, rd=30, target=99))  # real call
        inst = _inst(Opcode.BEQ, ra=1, rb=0, target=3)
        pred = unit.predict(99, inst)
        unit.predict(3, _inst(Opcode.CALL, rd=30, target=50))  # wrong path
        unit.repair(99, inst, pred.checkpoint, actual_taken=not pred.taken,
                    actual_target=100)
        ret = unit.predict(60, _inst(Opcode.RET, ra=30))
        assert ret.target == 11  # the real call's return address

    def test_repair_of_mispredicted_ret(self, unit):
        unit.predict(10, _inst(Opcode.CALL, rd=30, target=99))
        inst = _inst(Opcode.RET, ra=30)
        pred = unit.predict(99, inst)
        unit.repair(99, inst, pred.checkpoint, actual_taken=True, actual_target=77)
        # The pop is re-applied: stack is back to pre-call depth.
        assert unit.ras._tos == 0


class TestTrain:
    def test_training_improves_cond_prediction(self, unit):
        inst = _inst(Opcode.BNE, ra=1, rb=0, target=3)
        for _ in range(10):
            pred = unit.predict(10, inst)
            unit.train(10, inst, pred.checkpoint, True, 3, pred.taken, pred.target)
            unit.repair(10, inst, pred.checkpoint, True, 3)
        pred = unit.predict(10, inst)
        assert pred.taken is True

    def test_stats_track_mispredictions(self, unit):
        inst = _inst(Opcode.BNE, ra=1, rb=0, target=3)
        pred = unit.predict(10, inst)
        unit.train(10, inst, pred.checkpoint, not pred.taken,
                   3 if not pred.taken else 11, pred.taken, pred.target)
        assert unit.stats.cond_predictions == 1
        assert unit.stats.cond_mispredictions == 1

    def test_indirect_training(self, unit):
        inst = _inst(Opcode.JMPI, ra=4)
        for _ in range(4):
            pred = unit.predict(20, inst)
            unit.train(20, inst, pred.checkpoint, True, 333, True, pred.target)
        pred = unit.predict(20, inst)
        assert pred.target == 333
