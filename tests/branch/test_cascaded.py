"""Unit tests for the cascaded indirect target predictor."""

from repro.branch.cascaded import CascadedIndirectPredictor


class TestCascaded:
    def test_monomorphic_branch_uses_stage1(self):
        pred = CascadedIndirectPredictor()
        for _ in range(5):
            predicted = pred.predict(40, 0)
            pred.update(40, 0, 500, predicted)
        assert pred.predict(40, 0) == 500
        # Leaky filter: after the cold-start miss, a monomorphic branch
        # earns no further stage-2 entries.
        allocated = [e for e in pred.stage2 if e is not None]
        assert len(allocated) <= 1

    def test_polymorphic_branch_earns_stage2_entries(self):
        pred = CascadedIndirectPredictor()
        # Alternate targets under two distinct path histories.
        for _ in range(6):
            for path, target in ((0b01, 111), (0b10, 222)):
                predicted = pred.predict(40, path)
                pred.update(40, path, target, predicted)
        assert pred.predict(40, 0b01) == 111
        assert pred.predict(40, 0b10) == 222

    def test_stage2_requires_tag_match(self):
        pred = CascadedIndirectPredictor()
        predicted = pred.predict(40, 0)
        pred.update(40, 0, 999, predicted)  # stage-1 miss -> allocate s2
        # A different PC mapping to the same set must not read that entry.
        other = pred.predict(40 + pred.stage2_size, 0)
        assert other != 999 or pred.stage1[pred._s1_index(40 + pred.stage2_size)] == 999

    def test_fold_path_changes_history(self):
        path = 0
        folded = CascadedIndirectPredictor.fold_path(path, 1234)
        assert folded != path

    def test_fold_path_bounded(self):
        path = (1 << 12) - 1
        folded = CascadedIndirectPredictor.fold_path(path, 0xFFFF)
        assert 0 <= folded < (1 << 12)

    def test_accuracy_counters(self):
        pred = CascadedIndirectPredictor()
        for _ in range(4):
            predicted = pred.predict(1, 0)
            pred.update(1, 0, 77, predicted)
        assert pred.predictions == 4
        assert 0.0 <= pred.accuracy <= 1.0
