"""Unit tests for the YAGS direction predictor."""

from repro.branch.yags import YAGSPredictor


def train(pred: YAGSPredictor, pc: int, history: int, taken: bool, times: int = 8):
    for _ in range(times):
        predicted = pred.predict(pc, history)
        pred.update(pc, history, taken, predicted)


class TestYAGS:
    def test_learns_always_taken(self):
        pred = YAGSPredictor()
        train(pred, pc=100, history=0, taken=True)
        assert pred.predict(100, 0) is True

    def test_learns_always_not_taken(self):
        pred = YAGSPredictor()
        train(pred, pc=100, history=0, taken=False)
        assert pred.predict(100, 0) is False

    def test_exception_cache_learns_history_correlated_branch(self):
        """A branch taken under history A but not under history B must be
        predicted correctly for both (the whole point of YAGS)."""
        pred = YAGSPredictor()
        for _ in range(12):
            for history, taken in ((0b0101, True), (0b1010, False)):
                predicted = pred.predict(300, history)
                pred.update(300, history, taken, predicted)
        assert pred.predict(300, 0b0101) is True
        assert pred.predict(300, 0b1010) is False

    def test_biased_branch_allocates_at_most_cold_start_exception(self):
        pred = YAGSPredictor()
        train(pred, pc=7, history=3, taken=True, times=20)
        # The cold not-taken bias may allocate one T-cache entry on the
        # first misprediction; a settled biased branch earns no more.
        assert all(e is None for e in pred.nt_cache)
        assert sum(e is not None for e in pred.t_cache) <= 1

    def test_settled_not_taken_branch_allocates_nothing(self):
        pred = YAGSPredictor()
        train(pred, pc=9, history=3, taken=False, times=20)
        assert all(e is None for e in pred.nt_cache)
        assert all(e is None for e in pred.t_cache)

    def test_mispredicting_bias_allocates_exception_entry(self):
        pred = YAGSPredictor()
        train(pred, pc=7, history=3, taken=True, times=8)
        predicted = pred.predict(7, 5)
        pred.update(7, 5, False, predicted)  # exception to the bias
        allocated = [e for e in pred.nt_cache if e is not None]
        assert len(allocated) == 1

    def test_accuracy_counters(self):
        pred = YAGSPredictor()
        train(pred, pc=1, history=0, taken=True, times=10)
        assert pred.predictions == 10
        assert pred.accuracy > 0.5

    def test_different_pcs_do_not_interfere_in_choice(self):
        pred = YAGSPredictor()
        train(pred, pc=10, history=0, taken=True)
        train(pred, pc=11, history=0, taken=False)
        assert pred.predict(10, 0) is True
        assert pred.predict(11, 0) is False
