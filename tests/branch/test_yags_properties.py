"""Property tests on the YAGS predictor's structural invariants."""

from hypothesis import given, settings, strategies as st

from repro.branch.yags import YAGSPredictor

_outcomes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),  # pc
        st.integers(min_value=0, max_value=4095),  # history
        st.booleans(),  # taken
    ),
    min_size=1,
    max_size=300,
)


class TestYAGSProperties:
    @settings(max_examples=30)
    @given(_outcomes)
    def test_counters_stay_saturating(self, stream):
        pred = YAGSPredictor()
        for pc, history, taken in stream:
            predicted = pred.predict(pc, history)
            pred.update(pc, history, taken, predicted)
        assert all(0 <= c <= 3 for c in pred.choice)
        for cache in (pred.t_cache, pred.nt_cache):
            for entry in cache:
                if entry is not None:
                    assert 0 <= entry.counter <= 3
                    assert 0 <= entry.tag <= pred.tag_mask

    @settings(max_examples=30)
    @given(_outcomes)
    def test_prediction_counters_consistent(self, stream):
        pred = YAGSPredictor()
        for pc, history, taken in stream:
            predicted = pred.predict(pc, history)
            pred.update(pc, history, taken, predicted)
        assert pred.mispredictions <= pred.predictions
        assert 0.0 <= pred.accuracy <= 1.0

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_fixed_outcome_converges(self, pc):
        """Any branch with a constant outcome is eventually predicted
        perfectly."""
        pred = YAGSPredictor()
        for _ in range(6):
            predicted = pred.predict(pc, 7)
            pred.update(pc, 7, True, predicted)
        assert pred.predict(pc, 7) is True
