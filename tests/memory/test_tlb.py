"""Unit and property tests for the TLB."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.tlb import PerfectTLB, TLB


class TestLookupAndFill:
    def test_miss_then_hit(self):
        tlb = TLB(4)
        assert tlb.lookup(5) is None
        tlb.fill(5, 5)
        entry = tlb.lookup(5)
        assert entry is not None and entry.pfn == 5

    def test_capacity_lru_eviction(self):
        tlb = TLB(2)
        tlb.fill(1, 1)
        tlb.fill(2, 2)
        tlb.lookup(1)  # make vpn 2 the LRU
        tlb.fill(3, 3)
        assert 1 in tlb and 3 in tlb and 2 not in tlb

    def test_probe_has_no_side_effects(self):
        tlb = TLB(2)
        tlb.fill(1, 1)
        lookups = tlb.stats.lookups
        tlb.probe(1)
        tlb.probe(9)
        assert tlb.stats.lookups == lookups

    def test_refill_same_vpn_does_not_grow(self):
        tlb = TLB(4)
        tlb.fill(1, 1)
        tlb.fill(1, 1)
        assert len(tlb) == 1

    def test_invalidate(self):
        tlb = TLB(4)
        tlb.fill(1, 1)
        assert tlb.invalidate(1)
        assert not tlb.invalidate(1)
        assert tlb.lookup(1) is None

    def test_flush(self):
        tlb = TLB(4)
        tlb.fill(1, 1)
        tlb.fill(2, 2)
        tlb.flush()
        assert len(tlb) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TLB(0)


class TestSpeculativeFills:
    def test_confirm_makes_entry_architectural(self):
        tlb = TLB(4)
        tlb.fill(1, 1, speculative=True, producer=7)
        assert tlb.confirm(7) == 1
        entry = tlb.probe(1)
        assert not entry.speculative and entry.producer is None

    def test_rollback_removes_producers_entries(self):
        tlb = TLB(4)
        tlb.fill(1, 1, speculative=True, producer=7)
        tlb.fill(2, 2, speculative=True, producer=8)
        assert tlb.rollback(7) == 1
        assert 1 not in tlb and 2 in tlb

    def test_rollback_ignores_confirmed(self):
        tlb = TLB(4)
        tlb.fill(1, 1, speculative=True, producer=7)
        tlb.confirm(7)
        assert tlb.rollback(7) == 0
        assert 1 in tlb

    def test_speculative_entry_usable_immediately(self):
        tlb = TLB(4)
        tlb.fill(3, 3, speculative=True, producer=1)
        assert tlb.lookup(3) is not None


class TestPerfectTLB:
    def test_always_hits_identity(self):
        tlb = PerfectTLB()
        entry = tlb.lookup(1234)
        assert entry.pfn == 1234
        assert tlb.stats.misses == 0

    def test_fill_confirm_rollback_are_noops(self):
        tlb = PerfectTLB()
        tlb.fill(1, 1)
        assert tlb.confirm(1) == 0
        assert tlb.rollback(1) == 0


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, vpns):
        tlb = TLB(8)
        for vpn in vpns:
            tlb.fill(vpn, vpn)
            assert len(tlb) <= 8

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100))
    def test_most_recent_fill_always_present(self, vpns):
        tlb = TLB(8)
        for vpn in vpns:
            tlb.fill(vpn, vpn)
            assert vpn in tlb

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.booleans()),
            min_size=1,
            max_size=100,
        )
    )
    def test_stats_are_consistent(self, ops):
        tlb = TLB(8)
        for vpn, do_fill in ops:
            if do_fill:
                tlb.fill(vpn, vpn)
            else:
                tlb.lookup(vpn)
        assert tlb.stats.hits + tlb.stats.misses == tlb.stats.lookups
