"""Property tests on the memory hierarchy's timing invariants."""

from hypothesis import given, settings, strategies as st

from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy

ADDR = st.integers(min_value=0, max_value=(1 << 24) - 1).map(lambda a: a & ~7)


class TestTimingInvariants:
    @settings(max_examples=40)
    @given(st.lists(ADDR, min_size=1, max_size=60))
    def test_completion_never_precedes_request(self, addrs):
        hierarchy = MemoryHierarchy(HierarchyConfig())
        cycle = 0
        for addr in addrs:
            done = hierarchy.load(addr, cycle)
            assert done >= cycle + hierarchy.config.l1_latency
            cycle += 1

    @settings(max_examples=40)
    @given(st.lists(ADDR, min_size=1, max_size=60))
    def test_latency_bounded_by_memory_path(self, addrs):
        """No single access can exceed the serial worst case by more than
        the queueing the earlier accesses could have caused."""
        hierarchy = MemoryHierarchy(HierarchyConfig())
        worst_single = 104
        for i, addr in enumerate(addrs):
            done = hierarchy.load(addr, 0)
            # Bus queueing grows at most linearly in prior misses.
            assert done <= worst_single + (i + 1) * 13

    @settings(max_examples=30)
    @given(ADDR)
    def test_second_access_is_a_hit(self, addr):
        hierarchy = MemoryHierarchy(HierarchyConfig())
        first = hierarchy.load(addr, 0)
        again = hierarchy.load(addr, first + 10)
        assert again == first + 10 + hierarchy.config.l1_latency

    @settings(max_examples=30)
    @given(st.lists(ADDR, min_size=2, max_size=40))
    def test_stats_accounting_consistent(self, addrs):
        hierarchy = MemoryHierarchy(HierarchyConfig())
        for i, addr in enumerate(addrs):
            hierarchy.load(addr, i * 200)
        l1 = hierarchy.l1d.stats
        assert l1.hits + l1.misses == l1.accesses
        assert l1.accesses == len(addrs)
        # Every L1 miss produced exactly one L2 access.
        assert hierarchy.l2.stats.accesses == l1.misses
