"""Unit tests for the inter-level bus model."""

from hypothesis import given, settings, strategies as st

from repro.memory.cache import Bus


class TestBus:
    def test_idle_bus_grants_immediately(self):
        bus = Bus(occupancy=2)
        assert bus.acquire(10) == 10
        assert bus.next_free == 12

    def test_back_to_back_transfers_queue(self):
        bus = Bus(occupancy=2)
        assert bus.acquire(0) == 0
        assert bus.acquire(0) == 2
        assert bus.acquire(1) == 4

    def test_gap_resets_queueing(self):
        bus = Bus(occupancy=2)
        bus.acquire(0)
        assert bus.acquire(100) == 100

    def test_transfer_counter(self):
        bus = Bus(occupancy=11)
        for _ in range(5):
            bus.acquire(0)
        assert bus.transfers == 5

    def test_reset(self):
        bus = Bus(occupancy=2)
        bus.acquire(50)
        bus.reset()
        assert bus.next_free == 0 and bus.transfers == 0

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=40))
    def test_grants_never_overlap(self, request_cycles):
        """Property: consecutive grants are separated by >= occupancy."""
        bus = Bus(occupancy=3)
        grants = [bus.acquire(cycle) for cycle in sorted(request_cycles)]
        for earlier, later in zip(grants, grants[1:]):
            assert later >= earlier + 3

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=40))
    def test_grant_never_before_request(self, request_cycles):
        bus = Bus(occupancy=2)
        for cycle in sorted(request_cycles):
            assert bus.acquire(cycle) >= cycle
