"""Unit tests for the cache timing model (Table 1 latencies)."""

import pytest

from repro.memory.cache import Bus, Cache, make_dram
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(HierarchyConfig())


class TestTable1Latencies:
    def test_l1_hit_load_use_is_3(self, hierarchy):
        hierarchy.load(0x1000, 0)  # install (fill lands at cycle 104)
        assert hierarchy.load(0x1000, 200) == 203

    def test_hit_under_outstanding_miss_waits_for_fill(self, hierarchy):
        fill = hierarchy.load(0x1000, 0)
        assert hierarchy.load(0x1000, 50) == fill

    def test_l2_hit_load_use_is_12(self, hierarchy):
        hierarchy.l2.prewarm(0x1000, 64)
        assert hierarchy.load(0x1000, 100) == 112

    def test_memory_load_use_is_104(self, hierarchy):
        assert hierarchy.load(0x1000, 100) == 204

    def test_ifetch_same_path(self, hierarchy):
        assert hierarchy.ifetch(0x0, 0) == 104
        assert hierarchy.ifetch(0x0, 200) == 203


class TestCacheBehaviour:
    def test_hit_after_fill(self, hierarchy):
        hierarchy.load(0x4000, 0)
        assert hierarchy.l1d.probe(0x4000)

    def test_line_granularity(self, hierarchy):
        hierarchy.load(0x4000, 0)
        assert hierarchy.l1d.probe(0x4000 + 16)  # same 32B line
        assert not hierarchy.l1d.probe(0x4000 + 32)

    def test_lru_eviction(self):
        dram = make_dram(80)
        bus = Bus(2)
        cache = Cache("t", size_bytes=128, ways=2, line_size=32, latency=1,
                      next_level=dram, bus_to_next=bus)
        # Two sets; fill set 0's two ways then a third conflicting line.
        cache.access(0, 0)
        cache.access(128, 10)
        cache.access(0, 20)  # touch line 0: line 128 becomes LRU
        cache.access(256, 30)
        assert cache.probe(0)
        assert not cache.probe(128)
        assert cache.stats.evictions == 1

    def test_dirty_eviction_counts_writeback(self):
        dram = make_dram(80)
        bus = Bus(2)
        cache = Cache("t", size_bytes=64, ways=1, line_size=32, latency=1,
                      next_level=dram, bus_to_next=bus)
        cache.access(0, 0, is_write=True)
        cache.access(64, 200, is_write=False)  # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_mshr_merge_same_line(self, hierarchy):
        first = hierarchy.load(0x8000, 0)
        merged = hierarchy.load(0x8000 + 8, 1)
        assert merged == first
        assert hierarchy.l1d.stats.mshr_merges == 1

    def test_bus_occupancy_serialises_misses(self, hierarchy):
        # Two misses to different lines in the same cycle: the second's
        # L1/L2 transfer queues behind the first's.
        a = hierarchy.load(0x10000, 0)
        b = hierarchy.load(0x20000, 0)
        assert b > a

    def test_mshr_capacity_stalls(self):
        dram = make_dram(80)
        bus = Bus(0)
        cache = Cache("t", size_bytes=1 << 16, ways=4, line_size=32, latency=1,
                      next_level=dram, bus_to_next=bus, mshr_count=2)
        cache.access(0 << 5, 0)
        cache.access(1 << 5, 0)
        third = cache.access(2 << 5, 0)
        assert cache.stats.mshr_stalls == 1
        assert third > 81  # waited for an earlier fill

    def test_prewarm_respects_capacity(self):
        dram = make_dram(80)
        cache = Cache("t", size_bytes=128, ways=2, line_size=32, latency=1,
                      next_level=dram, bus_to_next=Bus(2))
        cache.prewarm(0, 4 * 128)  # 4x capacity
        present = sum(
            1 for line in range(16) if cache.probe(line * 32)
        )
        assert present == 4  # exactly capacity survives

    def test_reset_clears_contents_and_stats(self, hierarchy):
        hierarchy.load(0x1000, 0)
        hierarchy.reset()
        assert not hierarchy.l1d.probe(0x1000)
        assert hierarchy.l1d.stats.accesses == 0

    def test_miss_rate_property(self, hierarchy):
        hierarchy.load(0x1000, 0)
        hierarchy.load(0x1000, 200)
        assert hierarchy.l1d.stats.miss_rate == 0.5


class TestValidation:
    def test_bad_geometry_rejected(self):
        dram = make_dram(80)
        with pytest.raises(ValueError):
            Cache("t", size_bytes=100, ways=3, line_size=32, latency=1,
                  next_level=dram, bus_to_next=Bus(2))

    def test_non_power_of_two_line_rejected(self):
        dram = make_dram(80)
        with pytest.raises(ValueError):
            Cache("t", size_bytes=960, ways=2, line_size=30, latency=1,
                  next_level=dram, bus_to_next=Bus(2))
