"""Unit tests for the in-memory page table."""

import pytest

from repro.memory.address import PAGE_SIZE
from repro.memory.main_memory import MainMemory
from repro.memory.page_table import (
    PageTable,
    make_pte,
    pte_pfn,
    pte_valid,
)


@pytest.fixture
def pt():
    return PageTable(MainMemory())


class TestPTEEncoding:
    def test_valid_roundtrip(self):
        pte = make_pte(123)
        assert pte_valid(pte)
        assert pte_pfn(pte) == 123

    def test_invalid_pte(self):
        pte = make_pte(123, valid=False)
        assert not pte_valid(pte)

    def test_zero_word_is_invalid(self):
        assert not pte_valid(0)


class TestPageTable:
    def test_map_writes_pte_into_memory(self, pt):
        pt.map(10)
        pte = pt.memory.read_word(pt.pte_address(10))
        assert pte_valid(pte) and pte_pfn(pte) == 10

    def test_unmapped_page_reads_invalid(self, pt):
        assert not pte_valid(pt.read_pte(99))

    def test_unmap(self, pt):
        pt.map(5)
        pt.unmap(5)
        assert not pt.is_mapped(5)
        assert not pte_valid(pt.read_pte(5))

    def test_map_range_covers_partial_pages(self, pt):
        count = pt.map_range(PAGE_SIZE - 8, 16)  # straddles a boundary
        assert count == 2
        assert pt.is_mapped(0) and pt.is_mapped(1)

    def test_map_range_zero_size_maps_one_page(self, pt):
        assert pt.map_range(0, 1) == 1

    def test_pte_addresses_are_dense(self, pt):
        assert pt.pte_address(1) - pt.pte_address(0) == 8

    def test_explicit_pfn(self, pt):
        pt.map(3, pfn=77)
        assert pte_pfn(pt.read_pte(3)) == 77

    def test_mapped_vpns(self, pt):
        pt.map(1)
        pt.map(2)
        assert pt.mapped_vpns() == {1, 2}
        assert pt.mapped_pages == 2

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            PageTable(MainMemory(), base=12345)
