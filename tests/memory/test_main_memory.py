"""Unit tests for functional memory and address helpers."""

from hypothesis import given, strategies as st

from repro.memory.address import (
    PAGE_SIZE,
    align_word,
    page_base,
    page_offset,
    vpn_of,
    word_index,
)
from repro.memory.main_memory import MainMemory


class TestMainMemory:
    def test_unwritten_reads_zero(self):
        assert MainMemory().read_word(0x1234_0000) == 0

    def test_write_then_read(self):
        mem = MainMemory()
        mem.write_word(0x1000, 42)
        assert mem.read_word(0x1000) == 42

    def test_word_granularity(self):
        mem = MainMemory()
        mem.write_word(0x1000, 42)
        assert mem.read_word(0x1004) == 42  # same aligned word

    def test_floats_stored_natively(self):
        mem = MainMemory()
        mem.write_word(0x2000, 3.25)
        assert mem.read_word(0x2000) == 3.25

    def test_load_image(self):
        mem = MainMemory()
        mem.load_image({0x1000 >> 3: 7})
        assert mem.read_word(0x1000) == 7

    def test_snapshot_is_copy(self):
        mem = MainMemory()
        mem.write_word(0x1000, 1)
        snap = mem.snapshot()
        mem.write_word(0x1000, 2)
        assert snap[0x1000 >> 3] == 1

    def test_len_counts_words(self):
        mem = MainMemory()
        mem.write_word(0, 1)
        mem.write_word(8, 2)
        assert len(mem) == 2


class TestAddressHelpers:
    def test_vpn_and_offset(self):
        va = 3 * PAGE_SIZE + 100
        assert vpn_of(va) == 3
        assert page_offset(va) == 100
        assert page_base(va) == 3 * PAGE_SIZE

    def test_word_index(self):
        assert word_index(16) == 2
        assert word_index(17) == 2

    def test_align_word(self):
        assert align_word(17) == 16
        assert align_word(16) == 16

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_decomposition_roundtrip(self, va):
        assert page_base(va) + page_offset(va) == va

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_align_is_idempotent(self, va):
        assert align_word(align_word(va)) == align_word(va)
