"""Tests for the figure-rendering helpers."""

from repro.experiments.common import ExperimentResult, Row
from repro.experiments.report import bar_chart, comparison_table, sparkline


def _result():
    result = ExperimentResult(name="demo")
    result.rows = [
        Row("compress", "traditional", 1500, 1000, 50, 50, 2.0),
        Row("compress", "multithreaded", 1250, 1000, 50, 50, 2.0),
        Row("vortex", "traditional", 1400, 1000, 40, 40, 3.0),
        Row("vortex", "multithreaded", 1200, 1000, 40, 40, 3.0),
    ]
    return result


class TestBarChart:
    def test_contains_groups_and_bars(self):
        chart = bar_chart(_result(), title="demo chart")
        assert "demo chart" in chart
        assert "compress" in chart and "vortex" in chart
        assert "█" in chart and "▓" in chart
        assert "average" in chart

    def test_largest_value_gets_longest_bar(self):
        chart = bar_chart(_result(), width=20)
        lines = [l for l in chart.splitlines() if "traditional" in l]
        mt_lines = [l for l in chart.splitlines() if "multithreaded" in l]
        assert lines[0].count("█") >= mt_lines[0].count("▓")

    def test_empty_result_safe(self):
        chart = bar_chart(ExperimentResult(name="empty"))
        assert "average" in chart

    def test_values_rendered(self):
        chart = bar_chart(_result())
        assert "10.0" in chart  # compress traditional penalty (500/50)


class TestComparisonTable:
    def test_rows_and_missing_references(self):
        text = comparison_table(
            {"traditional": 26.1, "extension": 5.0},
            {"traditional": 22.7},
            "Figure 5",
        )
        assert "Figure 5" in text
        assert "22.7" in text and "26.1" in text
        assert "--" in text  # the paper has no 'extension' row


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([2.0, 2.0]) == "▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestFormatAttribution:
    def _tables(self):
        from repro.obs.attribution import AttributionTable

        trad = AttributionTable(
            total_cycles=100,
            cycles={
                "user": 50, "handler_fetch": 0, "handler_exec": 20,
                "squash_refetch": 25, "splice_stall": 0, "idle": 5,
            },
        )
        multi = AttributionTable(
            total_cycles=100,
            cycles={
                "user": 60, "handler_fetch": 25, "handler_exec": 10,
                "squash_refetch": 2, "splice_stall": 1, "idle": 2,
            },
        )
        return {"traditional": trad, "multithreaded": multi}

    def test_side_by_side_columns(self):
        from repro.experiments.report import format_attribution

        text = format_attribution(self._tables())
        lines = text.splitlines()
        assert "traditional" in lines[0] and "multithreaded" in lines[0]
        squash = next(l for l in lines if l.startswith("squash_refetch"))
        assert "25.0%" in squash and "2.0%" in squash

    def test_per_miss_row_with_fills(self):
        from repro.experiments.report import format_attribution

        text = format_attribution(
            self._tables(), fills={"traditional": 5, "multithreaded": 4}
        )
        per_miss = next(
            l for l in text.splitlines() if l.startswith("per-miss")
        )
        assert "9.0" in per_miss   # (20 + 25) / 5 overhead cycles per fill
        assert "9.5" in per_miss   # (25 + 10 + 2 + 1) / 4
