"""Smoke + shape tests for the experiment harnesses.

Each harness runs with a tiny Settings (two benchmarks, short runs) to
verify plumbing; the fig5 shape test asserts the paper's headline
ordering on the two most miss-heavy benchmarks.
"""

import pytest

from repro.experiments import (
    fig2_pipeline,
    fig3_width,
    fig5_mechanisms,
    fig6_quickstart,
    table2_suite,
    table3_limits,
    table4_speedups,
)
from repro.experiments.common import ExperimentResult, Row, Settings

TINY = Settings(
    user_insts=2_500,
    warmup_insts=800,
    max_cycles=4_000_000,
    benchmarks=("compress", "vortex"),
)


class TestFig2:
    def test_penalty_grows_with_pipe_depth(self):
        result = fig2_pipeline.run(TINY)
        for bench in TINY.benchmarks:
            shallow = result.cell(bench, "3 stages").penalty_per_miss
            deep = result.cell(bench, "11 stages").penalty_per_miss
            assert deep > shallow, bench

    def test_rows_complete(self):
        result = fig2_pipeline.run(TINY)
        assert len(result.rows) == len(TINY.benchmarks) * 3


class TestFig3:
    def test_overhead_grows_with_width(self):
        result = fig3_width.run(TINY)
        for bench in TINY.benchmarks:
            norm = fig3_width.normalized_overheads(result, bench)
            assert norm["2-wide"] == pytest.approx(1.0)
            assert norm["8-wide"] > 1.0, bench


class TestFig5:
    def test_paper_headline_ordering(self):
        result = fig5_mechanisms.run(TINY)
        for bench in TINY.benchmarks:
            trad = result.cell(bench, "traditional").penalty_per_miss
            mt1 = result.cell(bench, "multithreaded(1)").penalty_per_miss
            mt3 = result.cell(bench, "multithreaded(3)").penalty_per_miss
            hw = result.cell(bench, "hardware").penalty_per_miss
            assert trad > mt1 > hw, bench
            assert mt3 <= mt1 * 1.1, bench

    def test_multithreading_roughly_halves_the_penalty(self):
        result = fig5_mechanisms.run(TINY)
        trad = result.average_penalty("traditional")
        mt1 = result.average_penalty("multithreaded(1)")
        assert 1.3 < trad / mt1 < 3.5


class TestTable3:
    def test_instant_fetch_is_the_big_knob(self):
        result = table3_limits.run(TINY)
        multi = result.average_penalty("Multithreaded")
        instant = result.average_penalty("Multi w/ instant handler fetch/decode")
        hardware = result.average_penalty("Hardware TLB miss handler")
        assert instant < multi
        assert hardware <= instant


class TestFig6:
    def test_quickstart_lands_between_multithreaded_and_hardware(self):
        result = fig6_quickstart.run(TINY)
        mt = result.average_penalty("multithreaded(1)")
        qs = result.average_penalty("quick start(1)")
        hw = result.average_penalty("hardware")
        assert hw < qs < mt


class TestTables:
    def test_table2_reports_all_benchmarks(self):
        rows = table2_suite.run(TINY)
        assert [r.name for r in rows] == list(TINY.benchmarks)
        assert all(r.tlb_misses > 0 for r in rows)

    def test_table4_speedups_positive_for_miss_heavy_benchmarks(self):
        rows = table4_speedups.run(TINY)
        for row in rows:
            assert row.speedups["Perfect"] > 0
            assert row.speedups["Multi(1)"] > 0


class TestResultHelpers:
    def _tiny_result(self):
        result = ExperimentResult(name="x")
        result.rows = [
            Row("a", "m1", 120, 100, 10, 10, 1.0),
            Row("a", "m2", 140, 100, 10, 10, 1.0),
            Row("b", "m1", 130, 100, 10, 10, 1.0),
        ]
        return result

    def test_labels_ordered(self):
        assert self._tiny_result().labels() == ["m1", "m2"]

    def test_average_penalty(self):
        result = self._tiny_result()
        assert result.average_penalty("m1") == pytest.approx(2.5)

    def test_format_table_contains_cells(self):
        text = self._tiny_result().format_table()
        assert "benchmark" in text and "average" in text
        assert "2.00" in text and "4.00" in text

    def test_cell_lookup(self):
        result = self._tiny_result()
        assert result.cell("a", "m2").cycles == 140
        assert result.cell("zz", "m1") is None
