"""Tests for the experiments CLI and settings plumbing."""

import os

import pytest

from repro.experiments.cli import ALL_ORDER, EXPERIMENTS, main
from repro.experiments.common import Settings


class TestSettings:
    def test_defaults(self):
        settings = Settings()
        assert settings.user_insts == 12_000
        assert len(settings.benchmarks) == 8

    def test_from_env_scaling(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        settings = Settings.from_env()
        assert settings.user_insts == 24_000

    def test_from_env_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        settings = Settings.from_env()
        assert settings.user_insts == 12_000

    def test_from_env_clamped_below(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        with pytest.warns(RuntimeWarning, match="0.0001"):
            settings = Settings.from_env()
        assert settings.user_insts >= 1_000

    @pytest.mark.parametrize("raw", ["0", "-2"])
    def test_non_positive_scale_warns_with_value(self, monkeypatch, raw):
        """A zero/negative REPRO_SCALE clamps to 0.1 and says which
        value it rejected."""
        monkeypatch.setenv("REPRO_SCALE", raw)
        with pytest.warns(RuntimeWarning, match=raw):
            settings = Settings.from_env()
        assert settings.user_insts == 1_200

    def test_valid_scale_does_not_warn(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        Settings.from_env()
        assert not [w for w in recwarn if w.category is RuntimeWarning]


class TestCLI:
    def test_every_experiment_registered(self):
        assert set(ALL_ORDER) == set(EXPERIMENTS)
        assert len(ALL_ORDER) == 8

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_single_experiment_runs(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        monkeypatch.setitem(
            os.environ, "REPRO_SCALE", "0.1"
        )
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "compress" in out
