"""End-to-end scenario runs: mixed-cause traps under the sanitizer
across every mechanism, digest-checked against the perfect machine and
bit-identical between the two engine kernels."""

import pytest

from repro.faults.fuzz import MECHANISMS
from repro.scenarios.runner import ENGINES, run_matrix, run_scenario
from repro.scenarios.spec import (
    SCENARIO_CAUSES,
    ScenarioSpec,
    generate_matrix,
    overrides_for,
)

TRAPPING = tuple(m for m in MECHANISMS if m != "perfect")


def _small_spec(mix, seed=11):
    causes = SCENARIO_CAUSES
    return ScenarioSpec(
        name=f"test-{mix}",
        seed=seed,
        causes=causes,
        mix=mix,
        length=20,
        iters=8,
        config_overrides=overrides_for(causes),
    )


@pytest.mark.parametrize("mix", ("back_to_back", "nested"))
def test_mixed_cause_traps_agree_everywhere(mix, monkeypatch):
    """Satellite coverage: nested and back-to-back mixed-cause traps,
    REPRO_SANITIZE=1, all five mechanisms, both engine kernels."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    result = run_scenario(_small_spec(mix), max_cycles=600_000)
    assert result.ok, result.failures

    by_mech = {}
    for run in result.runs:
        by_mech.setdefault(run.mechanism, []).append(run)
    assert set(by_mech) == set(MECHANISMS)

    for mechanism in TRAPPING:
        runs = [r for r in by_mech[mechanism] if r.engine in ENGINES]
        assert len(runs) == len(ENGINES)
        for run in runs:
            # Every requested cause actually fired and was attributed.
            for cause in SCENARIO_CAUSES:
                taken, _, handler_cycles = run.attribution[cause]
                assert taken > 0, (mechanism, run.engine, cause)
                assert handler_cycles > 0, (mechanism, run.engine, cause)
        # The engine-identity check already ran inside run_scenario;
        # spot-check the invariant it enforces anyway.
        ref, bat = runs[0], runs[1]
        assert (ref.cycles, ref.digest) == (bat.cycles, bat.digest)


def test_perfect_machine_never_traps():
    result = run_scenario(
        _small_spec("uniform", seed=4),
        mechanisms=("perfect",),
        max_cycles=600_000,
    )
    assert result.ok, result.failures
    for run in result.runs:
        assert run.attribution == {}


def test_hang_is_reported_not_raised():
    result = run_scenario(
        _small_spec("uniform"), mechanisms=("traditional",), max_cycles=50
    )
    assert not result.ok
    assert result.failures
    assert any("perfect" in f for f in result.failures)


def test_run_matrix_collects_every_spec():
    specs = generate_matrix(seed=0, quick=True)
    small = [
        ScenarioSpec(
            name=s.name, seed=s.seed, causes=s.causes, mix=s.mix,
            length=14, iters=4, config_overrides=s.config_overrides,
        )
        for s in specs[:2]
    ]
    seen = []
    results = run_matrix(
        small,
        mechanisms=("traditional",),
        engines=("batched",),
        max_cycles=600_000,
        log=seen.append,
    )
    assert [r.spec.name for r in results] == [s.name for s in small]
    assert all(r.ok for r in results), [r.failures for r in results]
    assert seen  # progress callback was exercised
    for result in results:
        payload = result.to_json()
        assert payload["name"] == result.spec.name
        assert payload["causes"] == list(result.spec.causes)
        assert payload["failures"] == []
