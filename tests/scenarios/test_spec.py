"""Scenario-spec contract: deterministic matrices, lint-clean programs,
and cause-aware knobs that leave the default machine untouched."""

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.guest import analyze_source
from repro.faults.progen import CAUSES, ITLB_STRIDE
from repro.scenarios.spec import (
    MIX_STYLES,
    SCENARIO_CAUSES,
    ScenarioSpec,
    build_scenario_program,
    generate_matrix,
    overrides_for,
)
from repro.workloads.builder import make_program


def _errors(source):
    diags = analyze_source(source, unit="scenario-test")
    return [d for d in diags if d.severity is Severity.ERROR]


class TestMatrix:
    def test_matrix_is_deterministic(self):
        a = generate_matrix(seed=3)
        b = generate_matrix(seed=3)
        assert a == b
        assert generate_matrix(seed=4) != a

    def test_matrix_shape(self):
        specs = generate_matrix(seed=0)
        singles = [s for s in specs if len(s.causes) == 1]
        pairs = [s for s in specs if len(s.causes) == 2]
        sweeps = [s for s in specs if len(s.causes) > 2]
        # Every scenario cause appears alone, every pair back-to-back,
        # and the all-cause sweeps cover every mix style once.
        assert sorted(s.causes[0] for s in singles) == sorted(SCENARIO_CAUSES)
        assert len(pairs) == 6
        assert all(s.mix == "back_to_back" for s in pairs)
        assert sorted(s.mix for s in sweeps) == sorted(MIX_STYLES)

    def test_quick_matrix_keeps_one_spec_per_shape(self):
        quick = generate_matrix(seed=0, quick=True)
        assert len(quick) < len(generate_matrix(seed=0))
        assert any(len(s.causes) == 1 for s in quick)
        assert any(len(s.causes) == 2 for s in quick)
        assert any(len(s.causes) > 2 for s in quick)

    def test_specs_carry_the_knobs_their_causes_need(self):
        for spec in generate_matrix(seed=1):
            if "itlb_miss" in spec.causes:
                assert spec.config_overrides.get("itlb_entries") in (1, 2, 4)
            if "unaligned" in spec.causes:
                assert spec.config_overrides.get("align_check") is True

    def test_all_causes_are_known(self):
        for spec in generate_matrix(seed=2):
            assert set(spec.causes) <= set(CAUSES)


class TestPrograms:
    @pytest.mark.parametrize("mix", MIX_STYLES)
    def test_generated_programs_are_lint_clean(self, mix):
        spec = ScenarioSpec(
            name=f"t-{mix}", seed=9, causes=SCENARIO_CAUSES, mix=mix
        )
        program = build_scenario_program(spec)
        assert _errors(program.source) == []

    def test_build_is_deterministic(self):
        spec = ScenarioSpec(name="t", seed=5, causes=("brev", "swint"))
        assert (
            build_scenario_program(spec).source
            == build_scenario_program(spec).source
        )

    def test_itlb_specs_stride_across_text_pages(self):
        spec = ScenarioSpec(name="t", seed=5, causes=("itlb_miss",))
        program = build_scenario_program(spec)
        assert program.itlb_stride == ITLB_STRIDE
        plain = ScenarioSpec(name="t", seed=5, causes=("brev",))
        assert build_scenario_program(plain).itlb_stride == 0

    def test_unaligned_specs_add_the_load_region(self):
        spec = ScenarioSpec(name="t", seed=5, causes=("unaligned",))
        assert len(build_scenario_program(spec).regions) == 2

    def test_overrides_without_rng_are_stable(self):
        assert overrides_for(("itlb_miss", "unaligned")) == {
            "itlb_entries": 1,
            "align_check": True,
        }
        assert overrides_for(("brev",)) == {}


class TestSeedCompatibility:
    def test_default_program_has_no_scenario_handlers(self):
        # The seed machine's image must stay byte-identical unless a
        # scenario explicitly opts in to the new causes.
        program = make_program("main:\n  halt\n")
        assert sorted(program.pal_entries) == ["dtlb_miss", "emul"]

    def test_scenario_program_installs_every_cause_handler(self):
        program = make_program("main:\n  halt\n", scenario_causes=True)
        assert sorted(program.pal_entries) == sorted(CAUSES)
