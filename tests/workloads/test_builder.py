"""Tests for the workload-construction helpers."""

import pytest

from repro.isa.program import DataSegment
from repro.workloads.builder import (
    DEFAULT_BASE,
    SLICE_STRIDE,
    jump_table,
    lcg_next,
    lcg_stream,
    make_program,
    pointer_ring,
)


class TestMakeProgram:
    def test_pal_handlers_installed_first(self):
        program = make_program("main:\n  halt")
        assert program.pal_entries["dtlb_miss"] == 0
        assert "emul" in program.pal_entries
        assert program.entry == program.labels["main"]

    def test_segments_marked_warm(self):
        segment = DataSegment(base=0x2000_0000, words=[1, 2])
        program = make_program("main:\n  halt", segments=[segment])
        assert (segment.base, segment.size_bytes) in program.warm_ranges

    def test_regions_marked_warm(self):
        program = make_program("main:\n  halt", regions=[(0x2000_0000, 8192)])
        assert (0x2000_0000, 8192) in program.warm_ranges
        assert (0x2000_0000, 8192) in program.regions

    def test_cold_regions_mapped_but_not_warm(self):
        program = make_program(
            "main:\n  halt", cold_regions=[(0x3000_0000, 8192)]
        )
        assert (0x3000_0000, 8192) in program.regions
        assert (0x3000_0000, 8192) not in program.warm_ranges

    def test_custom_entry_label(self):
        program = make_program(
            "helper:\n  nop\nstart:\n  halt", entry_label="start"
        )
        assert program.entry == program.labels["start"]


class TestLCG:
    def test_stream_matches_single_steps(self):
        state = 5
        expected = []
        for _ in range(4):
            state = lcg_next(state)
            expected.append(state)
        assert lcg_stream(5, 4) == expected

    def test_values_stay_64_bit(self):
        for value in lcg_stream(123, 50):
            assert 0 <= value < (1 << 64)


class TestPointerRing:
    def test_payload_words_present(self):
        segment = pointer_ring(0x4000_0000, node_count=16, node_words=4)
        # Word 1 of each node is a payload.
        payloads = segment.words[1::4]
        assert any(p != 0 for p in payloads)

    def test_single_word_nodes_have_no_payload(self):
        segment = pointer_ring(0x4000_0000, node_count=8, node_words=1)
        assert len(segment.words) == 8

    def test_deterministic(self):
        a = pointer_ring(0x4000_0000, 32, 2)
        b = pointer_ring(0x4000_0000, 32, 2)
        assert a.words == b.words

    def test_different_seeds_differ(self):
        a = pointer_ring(0x4000_0000, 32, 2, seed=1)
        b = pointer_ring(0x4000_0000, 32, 2, seed=2)
        assert a.words != b.words


class TestJumpTable:
    def test_holds_targets(self):
        segment = jump_table(0x5000_0000, [10, 20, 30])
        assert segment.words == [10, 20, 30]
        assert segment.base == 0x5000_0000


class TestSlices:
    def test_slice_stride_dwarfs_footprints(self):
        # Largest workload footprint is a few MB; slices must never touch.
        assert SLICE_STRIDE > 1 << 30
        assert DEFAULT_BASE % 8192 == 0
