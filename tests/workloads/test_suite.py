"""Tests for the benchmark suite: construction and character."""

import pytest

from repro.memory.address import vpn_of
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import (
    DEFAULT_BASE,
    SLICE_STRIDE,
    lcg_stream,
    pointer_ring,
)
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    FIG7_MIXES,
    build_benchmark,
    build_mix,
)


class TestRegistry:
    def test_eight_benchmarks(self):
        assert len(BENCHMARKS) == 8
        assert set(BENCHMARK_NAMES) == {
            "alphadoom", "applu", "compress", "deltablue",
            "gcc", "hydro2d", "murphi", "vortex",
        }

    def test_lookup_by_abbreviation(self):
        assert build_benchmark("cmp").entry == build_benchmark("compress").entry

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("doom3")

    def test_fig7_mixes_use_known_benchmarks(self):
        abbrevs = {spec.abbrev for spec in BENCHMARKS.values()}
        for mix in FIG7_MIXES:
            assert len(mix) == 3
            assert set(mix) <= abbrevs

    def test_mix_slices_are_spaced(self):
        programs = build_mix(("adm", "apl", "cmp"))
        bases = [min(s.base for s in (p.data_segments or [])) if p.data_segments
                 else min(b for b, _ in p.regions) for p in programs]
        assert bases[1] - bases[0] >= SLICE_STRIDE - (1 << 30)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestEachBenchmark:
    def test_builds_with_pal_at_zero(self, name):
        program = build_benchmark(name)
        assert program.pal_entries["dtlb_miss"] == 0
        assert program.entry > 0

    def test_runs_and_misses_the_tlb(self, name):
        sim = Simulator(build_benchmark(name), MachineConfig(mechanism="hardware"))
        result = sim.run(user_insts=2500, warmup_insts=800, max_cycles=2_000_000)
        assert result.committed_fills > 0, f"{name} produced no TLB misses"
        assert 0.3 < result.miss_rate_per_kilo_inst < 60

    def test_relocatable_to_another_slice(self, name):
        program = build_benchmark(name, base=DEFAULT_BASE + SLICE_STRIDE)
        sim = Simulator(program, MachineConfig(mechanism="perfect"))
        result = sim.run(user_insts=400, warmup_insts=0, max_cycles=400_000)
        assert result.retired_user >= 400

    def test_footprint_exceeds_tlb_reach(self, name):
        program = build_benchmark(name)
        pages = set()
        for segment in program.data_segments:
            pages.update(
                range(vpn_of(segment.base), vpn_of(segment.end - 1) + 1)
            )
        for base, size in program.regions:
            pages.update(range(vpn_of(base), vpn_of(base + size - 1) + 1))
        assert len(pages) > 64, f"{name} fits entirely in the TLB"


class TestSuiteCharacter:
    def test_compress_and_vortex_are_miss_heavy(self):
        rates = {}
        for name in ("compress", "vortex", "alphadoom"):
            sim = Simulator(build_benchmark(name), MachineConfig(mechanism="hardware"))
            result = sim.run(user_insts=4000, warmup_insts=1500, max_cycles=2_000_000)
            rates[name] = result.miss_rate_per_kilo_inst
        assert rates["compress"] > rates["alphadoom"]
        assert rates["vortex"] > rates["alphadoom"]


class TestBuilders:
    def test_lcg_stream_deterministic(self):
        assert lcg_stream(42, 5) == lcg_stream(42, 5)
        assert lcg_stream(42, 5) != lcg_stream(43, 5)

    def test_pointer_ring_is_single_cycle(self):
        base = 0x2000_0000
        segment = pointer_ring(base, node_count=64, node_words=4)
        words = {base + 8 * i: v for i, v in enumerate(segment.words)}
        seen = set()
        addr = base
        for _ in range(64):
            assert addr not in seen
            seen.add(addr)
            addr = words[addr]
        assert addr == base  # closes after exactly node_count hops
        assert len(seen) == 64
