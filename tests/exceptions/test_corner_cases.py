"""Exception-architecture corner cases across mechanisms."""

import pytest

from repro.isa.program import DataSegment
from tests.conftest import ALL_MECHANISMS, make_sim, run_to_halt


class TestSMTWithExceptions:
    def test_traditional_trap_does_not_disturb_other_app_thread(self):
        """A trap squashes only its own thread; a co-runner's results are
        unaffected (the paper: other threads 'continue to retire')."""
        from repro.sim.config import MachineConfig
        from repro.sim.simulator import Simulator
        from repro.workloads.builder import SLICE_STRIDE, make_program

        misser = make_program(
            f"""
            main:
                li   r1, {0x1000_0000}
                li   r5, 10
            loop:
                ld   r6, 0(r1)
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            regions=[(0x1000_0000, 10 * 8192)],
        )
        counter_base = 0x1000_0000 + SLICE_STRIDE
        counter = make_program(
            f"""
            main:
                li   r2, 500
                li   r3, 0
            loop:
                add  r3, r3, 7
                sub  r2, r2, 1
                bne  r2, r0, loop
                halt
            """,
            regions=[(counter_base, 8192)],
        )
        sim = Simulator(
            [misser, counter], MachineConfig(mechanism="traditional")
        )
        core = sim.core
        while core.cycle < 400_000:
            if core.threads[0].halted and core.threads[1].halted:
                break
            core.step()
        assert core.threads[1].arch.read_int(3) == 3500
        assert sim.mechanism.stats.traps >= 10


class TestBackToBackMisses:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_alternating_pages_thrash_free(self, data_base, mechanism):
        """Two pages hit alternately stay TLB-resident after their first
        fills: exactly two committed fills regardless of mechanism."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 20
                li   r7, 0
            loop:
                ld   r6, 0(r1)
                ld   r9, 8192(r1)
                add  r7, r7, r6
                add  r7, r7, r9
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism=mechanism,
            segments=[
                DataSegment(base=data_base, words=[1]),
                DataSegment(base=data_base + 8192, words=[2]),
            ],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.committed_fills == 2
        assert sim.core.threads[0].arch.read_int(7) == 60

    def test_tiny_tlb_rethrashes(self, data_base):
        """With a 1-entry DTLB the pages keep evicting each other.

        The OOO window merges many iterations' misses into shared fill
        events, so the fill count is bounded below by the thrash but far
        under the naive 2-per-iteration; correctness must hold
        regardless.
        """
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 5
                li   r7, 0
            loop:
                ld   r6, 0(r1)
                ld   r9, 8192(r1)
                add  r7, r7, r6
                add  r7, r7, r9
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism="multithreaded",
            dtlb_entries=1,
            segments=[
                DataSegment(base=data_base, words=[1]),
                DataSegment(base=data_base + 8192, words=[2]),
            ],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.committed_fills >= 3  # > the 2 pages
        assert sim.core.threads[0].arch.read_int(7) == 15


class TestStoreMisses:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_store_only_misses_commit_correctly(self, data_base, mechanism):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 6
            loop:
                st   r5, 0(r1)
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism=mechanism,
            regions=[(data_base, 6 * 8192)],
        )
        run_to_halt(sim)
        for i, expected in enumerate(range(6, 0, -1)):
            assert sim.memory.read_word(data_base + i * 8192) == expected
        assert sim.mechanism.stats.committed_fills == 6
