"""Tests for the PAL DTLB miss handler's structure.

The multithreaded mechanism relies on structural properties of the
handler (Section 4.2 of the paper); these tests pin them down.
"""

from repro.exceptions.handler_code import (
    build_dtlb_handler,
    handler_length,
    install_dtlb_handler,
)
from repro.isa.instructions import Opcode
from repro.isa.program import Program


class TestHandlerStructure:
    def test_assembles(self):
        insts, labels = build_dtlb_handler()
        assert len(insts) > 0
        assert "page_fault" in labels

    def test_all_instructions_privileged(self):
        insts, _ = build_dtlb_handler()
        assert all(inst.privileged for inst in insts)

    def test_common_case_length_matches_fault_label(self):
        insts, labels = build_dtlb_handler()
        assert handler_length() == labels["page_fault"]

    def test_common_path_ends_with_reti(self):
        insts, labels = build_dtlb_handler()
        common = insts[: labels["page_fault"]]
        assert common[-1].op is Opcode.RETI

    def test_common_path_performs_no_stores(self):
        """Section 4.2: 'The TLB miss handler performs no stores'."""
        insts, labels = build_dtlb_handler()
        common = insts[: labels["page_fault"]]
        assert not any(inst.is_store for inst in common)

    def test_common_path_single_load_from_page_table(self):
        insts, labels = build_dtlb_handler()
        common = insts[: labels["page_fault"]]
        assert sum(1 for inst in common if inst.is_load) == 1

    def test_hardexc_precedes_any_permanent_effect(self):
        """Section 4.3: hardexc must come before anything that affects
        visible machine state on the fault path."""
        insts, labels = build_dtlb_handler()
        fault_path = insts[labels["page_fault"]:]
        hardexc_idx = next(
            i for i, inst in enumerate(fault_path) if inst.op is Opcode.HARDEXC
        )
        for inst in fault_path[:hardexc_idx]:
            assert not inst.is_store
            assert inst.op is not Opcode.TLBWR

    def test_common_case_is_short(self):
        """Exception handlers are 'in the tens of instructions'."""
        assert handler_length() <= 20

    def test_install_records_entry(self):
        program = Program()
        entry = install_dtlb_handler(program)
        assert program.pal_entries["dtlb_miss"] == entry
        assert program.pal_base == entry
