"""Tests for the quick-start mechanism."""

import pytest

from repro.isa.program import DataSegment
from tests.conftest import make_sim, run_to_halt


class TestQuickStart:
    def test_first_exception_has_no_prefetched_image(self, data_base):
        """Prefetch needs history: the very first miss runs un-assisted."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                halt
            """,
            mechanism="quickstart",
            segments=[DataSegment(base=data_base, words=[1])],
        )
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert stats.spawns == 1
        assert sim.core.threads[0].arch.read_int(2) == 1

    def test_later_exceptions_hit_the_prefetched_image(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 6
                li   r7, 0
            loop:
                ld   r6, 0(r1)
                add  r7, r7, r6
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism="quickstart",
            segments=[
                DataSegment(base=data_base, words=[2]),
                DataSegment(base=data_base + 8192, words=[2]),
                DataSegment(base=data_base + 2 * 8192, words=[2]),
                DataSegment(base=data_base + 3 * 8192, words=[2]),
                DataSegment(base=data_base + 4 * 8192, words=[2]),
                DataSegment(base=data_base + 5 * 8192, words=[2]),
            ],
        )
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert stats.quickstart_hits + stats.quickstart_partial >= 1
        assert sim.core.threads[0].arch.read_int(7) == 12

    def test_quickstart_beats_plain_multithreaded(self, data_base):
        """The prefetched handler image removes fetch latency: the same
        page-missing loop must finish sooner than under plain
        multithreading."""
        src = f"""
        main:
            li   r1, {data_base}
            li   r5, 12
            li   r7, 0
        loop:
            ld   r6, 0(r1)
            add  r7, r7, r6
            li   r8, 8192
            add  r1, r1, r8
            sub  r5, r5, 1
            bne  r5, r0, loop
            halt
        """
        regions = [(data_base, 12 * 8192)]
        quick = make_sim(src, mechanism="quickstart", regions=regions)
        plain = make_sim(src, mechanism="multithreaded", regions=regions)
        assert run_to_halt(quick) < run_to_halt(plain)

    def test_type_predictor_trained(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                ld   r3, 8192(r1)
                halt
            """,
            mechanism="quickstart",
            idle_threads=2,
            regions=[(data_base, 2 * 8192)],
        )
        run_to_halt(sim)
        assert sim.mechanism.type_predictor.predict() == "dtlb_miss"

    def test_reversion_and_page_faults_still_work(self, data_base):
        far = data_base + (1 << 30)
        sim = make_sim(
            f"""
            main:
                li   r1, {far}
                li   r2, 8
                st   r2, 0(r1)
                ld   r3, 0(r1)
                halt
            """,
            mechanism="quickstart",
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(3) == 8
