"""Tests for the hardware FSM page walker."""

import pytest

from repro.isa.program import DataSegment
from repro.memory.address import vpn_of
from tests.conftest import make_sim, run_to_halt


def _single_load(data_base, **kw):
    return make_sim(
        f"""
        main:
            li   r1, {data_base}
            ld   r2, 0(r1)
            add  r3, r2, 1
            halt
        """,
        mechanism="hardware",
        segments=[DataSegment(base=data_base, words=[41])],
        **kw,
    )


class TestWalks:
    def test_walk_resolves_miss_without_instructions(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 41
        stats = sim.mechanism.stats
        assert stats.walks_started == 1
        assert stats.walks_completed == 1
        assert sim.core.stats.retired_handler == 0  # no software ran

    def test_fill_is_architectural_immediately(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        entry = sim.dtlb.probe(vpn_of(data_base))
        assert entry is not None and not entry.speculative

    def test_no_squash_on_walked_miss(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        assert sim.core.stats.squashed == 0

    def test_parallel_walks(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                ld   r3, 8192(r1)
                ld   r4, 16384(r1)
                halt
            """,
            mechanism="hardware",
            regions=[(data_base, 3 * 8192)],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.walks_started == 3
        assert sim.mechanism.stats.committed_fills == 3

    def test_same_page_misses_merge_into_one_walk(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                ld   r3, 8(r1)
                halt
            """,
            mechanism="hardware",
            segments=[DataSegment(base=data_base, words=[7, 8])],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.walks_started == 1
        assert sim.mechanism.stats.secondary_merges >= 1
        assert sim.core.threads[0].arch.read_int(3) == 8

    def test_walker_overflow_queues_misses(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                ld   r3, 8192(r1)
                ld   r4, 16384(r1)
                ld   r5, 24576(r1)
                halt
            """,
            mechanism="hardware",
            walker_entries=1,
            regions=[(data_base, 4 * 8192)],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.committed_fills == 4

    def test_walks_consume_cache_bandwidth(self, data_base):
        """The PTE load travels through the data cache like any load."""
        sim = _single_load(data_base)
        run_to_halt(sim)
        pte_line = sim.page_table.pte_address(vpn_of(data_base))
        assert sim.hierarchy.l1d.probe(pte_line)

    def test_walker_latency_config_respected(self, data_base):
        fast = _single_load(data_base, walker_latency=0)
        slow = _single_load(data_base, walker_latency=40)
        assert run_to_halt(fast) < run_to_halt(slow)


class TestPageFault:
    def test_invalid_pte_falls_back_to_trap(self, data_base):
        far = data_base + (1 << 30)  # unmapped
        sim = make_sim(
            f"""
            main:
                li   r1, {far}
                li   r2, 6
                st   r2, 0(r1)
                ld   r3, 0(r1)
                halt
            """,
            mechanism="hardware",
        )
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert stats.page_faults >= 1
        assert stats.traps >= 1
        assert sim.core.threads[0].arch.read_int(3) == 6


class TestWrongPath:
    def test_wrong_path_walk_drops_when_everyone_dies(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 30
                li   r7, 0
            loop:
                and  r3, r5, 1
                mul  r3, r3, 5
                mul  r3, r3, 7
                beq  r3, r0, skip
                ld   r6, 0(r1)
                add  r7, r7, r6
            skip:
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism="hardware",
            segments=[DataSegment(base=data_base, words=[4])],
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(7) == 4 * 15
