"""Integration tests for the Section 4.3 spawn predictor.

With ``use_spawn_predictor`` on, exceptions that keep reverting to the
traditional mechanism (clustered page faults) stop being handed to a
handler thread -- the hardware learns the OS did not implement them with
spawning in mind -- while well-behaved exceptions keep spawning.
"""

import pytest

from repro.isa.program import DataSegment
from tests.conftest import make_sim, run_to_halt


def _fault_storm(data_base, use_predictor):
    """Every load page-faults (unmapped pages): pure reversion traffic."""
    far = data_base + (1 << 31)
    return make_sim(
        f"""
        main:
            li   r1, {far}
            li   r5, 8
            li   r7, 0
        loop:
            st   r5, 0(r1)
            ld   r6, 0(r1)
            add  r7, r7, r6
            li   r8, 16384
            add  r1, r1, r8
            sub  r5, r5, 1
            bne  r5, r0, loop
            halt
        """,
        mechanism="multithreaded",
        use_spawn_predictor=use_predictor,
    )


class TestSpawnPredictorIntegration:
    def test_clustered_page_faults_suppress_spawning(self, data_base):
        sim = _fault_storm(data_base, use_predictor=True)
        run_to_halt(sim)
        stats = sim.mechanism.stats
        # After a few reversions the predictor stops spawning: far fewer
        # spawns than exceptions.
        assert stats.hard_exceptions >= 2
        assert stats.spawns < stats.hard_exceptions + stats.traps
        assert not sim.mechanism.spawn_predictor.should_spawn("dtlb_miss")
        assert sim.core.threads[0].arch.read_int(7) == sum(range(1, 9))

    def test_without_predictor_every_fault_spawns_first(self, data_base):
        sim = _fault_storm(data_base, use_predictor=False)
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert stats.hard_exceptions >= 8  # one reversion per fault

    def test_healthy_misses_keep_spawning(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 6
                li   r7, 0
            loop:
                ld   r6, 0(r1)
                add  r7, r7, r6
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism="multithreaded",
            use_spawn_predictor=True,
            regions=[(data_base, 6 * 8192)],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.spawns >= 3
        assert sim.mechanism.spawn_predictor.should_spawn("dtlb_miss")

    def test_predictor_recovers_after_fault_cluster(self, data_base):
        """Faults poison the predictor; subsequent clean misses restore it
        (the paper: 'adapt to dynamic behavior, like clustering of page
        faults')."""
        far = data_base + (1 << 31)
        sim = make_sim(
            f"""
            main:
                li   r1, {far}
                li   r5, 6
            fault_loop:
                st   r5, 0(r1)
                li   r8, 16384
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, fault_loop
                li   r1, {data_base}
                li   r5, 12
                li   r7, 0
            clean_loop:
                ld   r6, 0(r1)
                add  r7, r7, r6
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, clean_loop
                halt
            """,
            mechanism="multithreaded",
            use_spawn_predictor=True,
            regions=[(data_base, 12 * 8192)],
        )
        run_to_halt(sim)
        assert sim.mechanism.spawn_predictor.should_spawn("dtlb_miss")
