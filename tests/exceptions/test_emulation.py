"""Tests for the Section 6 generalized mechanism: instruction emulation.

``emul rd, ra`` (popcount) is "implemented in software": executing it
raises an emulation exception whose handler reads the faulting
instruction's source value from a privileged register and writes the
result straight into its destination -- under the multithreaded
mechanism via ``mtdst``, which completes the excepting instruction as a
nop and wakes its consumers.
"""

import pytest

from repro.isa.semantics import popcount
from tests.conftest import ALL_MECHANISMS, make_sim, run_to_halt

MECHS = ("perfect",) + ALL_MECHANISMS


class TestPopcountSemantics:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 0), (1, 1), (255, 8), ((1 << 64) - 1, 64), (0b1010101, 4)],
    )
    def test_popcount(self, value, expected):
        assert popcount(value) == expected


class TestEmulationAcrossMechanisms:
    @pytest.mark.parametrize("mechanism", MECHS)
    def test_single_emulation(self, mechanism):
        sim = make_sim(
            """
            main:
                li   r1, 4095
                emul r2, r1
                add  r3, r2, 100
                halt
            """,
            mechanism=mechanism,
        )
        run_to_halt(sim)
        arch = sim.core.threads[0].arch
        assert arch.read_int(2) == 12
        assert arch.read_int(3) == 112

    @pytest.mark.parametrize("mechanism", MECHS)
    def test_emulation_in_a_loop(self, mechanism):
        sim = make_sim(
            """
            main:
                li   r1, 1
                li   r5, 10
                li   r7, 0
            loop:
                emul r2, r1
                add  r7, r7, r2
                sll  r1, r1, 1
                or   r1, r1, 1
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism=mechanism,
        )
        run_to_halt(sim)
        # values 1, 11, 111, ... -> popcounts 1 + 2 + ... + 10
        assert sim.core.threads[0].arch.read_int(7) == 55


class TestMultithreadedEmulation:
    def test_handler_runs_in_exception_thread(self):
        sim = make_sim(
            "main:\n  li r1, 7\n  emul r2, r1\n  halt",
            mechanism="multithreaded",
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.spawns == 1
        assert sim.mechanism.stats.emulations == 1
        assert sim.core.threads[0].retired_handler == 0
        assert sim.core.stats.squashed == 0  # no trap, no refetch

    def test_excepting_instruction_completes_as_nop(self):
        """The consumer of the emul result wakes from mtdst's write."""
        sim = make_sim(
            """
            main:
                li   r1, 31
                emul r2, r1
                add  r3, r2, r2
                mul  r4, r3, r3
                halt
            """,
            mechanism="multithreaded",
        )
        run_to_halt(sim)
        arch = sim.core.threads[0].arch
        assert arch.read_int(3) == 10
        assert arch.read_int(4) == 100

    def test_reverts_when_no_idle_thread(self):
        """Two in-flight emulations with one context: the second traps."""
        sim = make_sim(
            """
            main:
                li   r1, 7
                li   r2, 56
                emul r3, r1
                emul r4, r2
                add  r5, r3, r4
                halt
            """,
            mechanism="multithreaded",
            idle_threads=1,
        )
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert stats.emulations == 2
        assert stats.reverted_no_thread >= 1
        assert sim.core.threads[0].arch.read_int(5) == 6

    def test_wrong_path_emulation_reclaimed(self):
        sim = make_sim(
            """
            main:
                li   r1, 20
                li   r7, 0
            loop:
                and  r3, r1, 1
                mul  r3, r3, 9
                beq  r3, r0, skip
                emul r4, r1
                add  r7, r7, r4
            skip:
                sub  r1, r1, 1
                bne  r1, r0, loop
                halt
            """,
            mechanism="multithreaded",
            idle_threads=2,
        )
        run_to_halt(sim)
        expected = sum(popcount(i) for i in range(1, 21) if i % 2 == 1)
        assert sim.core.threads[0].arch.read_int(7) == expected


class TestTraditionalEmulation:
    def test_reti_skips_the_emulated_instruction(self):
        """Traditional emulation returns *past* the faulting instruction
        (it must not re-execute and re-trap forever)."""
        sim = make_sim(
            "main:\n  li r1, 15\n  emul r2, r1\n  halt",
            mechanism="traditional",
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.traps == 1
        assert sim.core.threads[0].arch.read_int(2) == 4

    def test_dynamic_destination_feeds_consumers(self):
        sim = make_sim(
            """
            main:
                li   r1, 3
                emul r2, r1
                add  r3, r2, 1
                emul r4, r3
                add  r5, r4, r3
                halt
            """,
            mechanism="traditional",
        )
        run_to_halt(sim)
        arch = sim.core.threads[0].arch
        assert arch.read_int(3) == 3  # popcount(3)+1
        assert arch.read_int(5) == 2 + 3  # popcount(3)==2


class TestQuickStartEmulation:
    def test_type_predictor_prefetches_emul_handler(self):
        sim = make_sim(
            """
            main:
                li   r1, 1023
                li   r5, 6
                li   r7, 0
            loop:
                emul r2, r1
                add  r7, r7, r2
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism="quickstart",
        )
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert sim.mechanism.type_predictor.predict() == "emul"
        assert stats.quickstart_hits + stats.quickstart_partial >= 1
        assert sim.core.threads[0].arch.read_int(7) == 60

    def test_mixed_exception_types(self, data_base):
        """Both dtlb misses and emulations in one program; the predictor
        may guess wrong, but results stay exact."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 8
                li   r7, 0
            loop:
                ld   r6, 0(r1)
                emul r2, r5
                add  r7, r7, r2
                add  r7, r7, r6
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism="quickstart",
            regions=[(data_base, 8 * 8192)],
        )
        run_to_halt(sim)
        expected = sum(popcount(i) for i in range(1, 9))
        assert sim.core.threads[0].arch.read_int(7) == expected
