"""Tests for the multithreaded exception mechanism (the contribution)."""

import pytest

from repro.isa.program import DataSegment
from repro.memory.address import vpn_of
from repro.pipeline.thread import ThreadState
from tests.conftest import make_sim, run_to_halt


def _single_load(data_base, **kw):
    return make_sim(
        f"""
        main:
            li   r1, {data_base}
            ld   r2, 0(r1)
            add  r3, r2, 1
            halt
        """,
        mechanism="multithreaded",
        segments=[DataSegment(base=data_base, words=[41])],
        **kw,
    )


class TestSingleMiss:
    def test_value_correct_and_fill_confirmed(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 41
        entry = sim.dtlb.probe(vpn_of(data_base))
        assert entry is not None and not entry.speculative

    def test_handler_ran_in_separate_thread(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        assert sim.mechanism.stats.spawns == 1
        assert sim.core.threads[0].retired_handler == 0
        assert sim.core.threads[1].retired_handler >= 10

    def test_no_application_squash(self, data_base):
        """The whole point: the main thread's instructions survive."""
        sim = _single_load(data_base)
        run_to_halt(sim)
        assert sim.core.stats.squashed == 0

    def test_exception_thread_returns_to_idle(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        assert sim.core.threads[1].state is ThreadState.IDLE

    def test_faster_than_traditional(self, data_base):
        """Post-exception independent work must survive under the
        multithreaded mechanism, beating squash-and-refetch."""
        body = "\n".join(
            f"    add  r{8 + (i % 4)}, r{8 + (i % 4)}, {i}" for i in range(24)
        )
        src = f"""
        main:
            li   r1, {0x1000_0000}
            ld   r2, 0(r1)
{body}
            add  r3, r2, 1
            halt
        """
        seg = [DataSegment(base=0x1000_0000, words=[41])]
        mt = make_sim(src, mechanism="multithreaded", segments=seg)
        trad = make_sim(src, mechanism="traditional", segments=seg)
        assert run_to_halt(mt) < run_to_halt(trad)


class TestRetirementSplice:
    def test_handler_retires_between_pre_and_post_exception(self, data_base):
        """Figure 1(c): retirement order is (pre..., handler..., excepting,
        post...) even though fetch order interleaves differently."""
        sim = _single_load(data_base)
        order = []
        core = sim.core
        original = core._do_retire

        def spy(thread, uop, now):
            order.append((thread.tid, uop.is_handler, uop.pc))
            return original(thread, uop, now)

        core._do_retire = spy
        run_to_halt(sim)

        handler_span = [i for i, (_, h, _) in enumerate(order) if h]
        assert handler_span, "handler never retired"
        faulting_pc = sim.programs[0].entry + 1  # the ld after the li
        faulting = next(
            i for i, (tid, h, pc) in enumerate(order)
            if tid == 0 and pc == faulting_pc
        )
        # The handler retires contiguously and entirely before the
        # excepting instruction.
        assert max(handler_span) < faulting
        assert handler_span == list(
            range(min(handler_span), max(handler_span) + 1)
        )

    def test_excepting_instruction_waits_for_handler(self, data_base):
        sim = _single_load(data_base)
        core = sim.core
        saw_link = False
        while not all(
            t.halted for t in core.threads if t.program and not t.is_exception_thread
        ):
            core.step()
            if core.threads[0].rob and core.threads[0].rob[0].linked_handler:
                saw_link = True
            if core.cycle > 100_000:
                raise AssertionError("did not halt")
        assert saw_link


class TestSecondaryMisses:
    def test_same_page_misses_merge(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                ld   r3, 8(r1)
                ld   r4, 16(r1)
                halt
            """,
            mechanism="multithreaded",
            segments=[DataSegment(base=data_base, words=[1, 2, 3])],
        )
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert stats.spawns == 1
        assert stats.secondary_merges >= 1
        assert sim.core.threads[0].arch.read_int(4) == 3

    def test_relink_to_older_excepting_instruction(self, data_base):
        """An *older* instruction missing the same page out of order
        steals the handler (Section 4.5 re-linking)."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r4, 1
                itof f1, r4
                itof f2, r1
                fdiv f3, f2, f1       ; slow identity chain ...
                fdiv f3, f3, f1
                fmul f3, f3, f1
                ftoi r5, f3           ; ... r5 == r1, arriving late
                and  r5, r5, -8
                ld   r6, 0(r5)        ; OLDER miss, issues LATE
                ld   r7, 64(r1)       ; YOUNGER miss, same page, issues first
                halt
            """,
            mechanism="multithreaded",
            segments=[DataSegment(base=data_base, words=[5] * 16)],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.relinks >= 1
        assert sim.core.threads[0].arch.read_int(7) == 5

    def test_different_pages_use_multiple_threads(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                ld   r3, 8192(r1)
                ld   r4, 16384(r1)
                halt
            """,
            mechanism="multithreaded",
            idle_threads=3,
            regions=[(data_base, 3 * 8192)],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.spawns == 3
        assert sim.mechanism.stats.reverted_no_thread == 0


class TestReversion:
    def test_reverts_to_traditional_when_no_idle_thread(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                ld   r3, 8192(r1)
                halt
            """,
            mechanism="multithreaded",
            idle_threads=1,
            regions=[(data_base, 2 * 8192)],
        )
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert stats.spawns >= 1
        assert stats.reverted_no_thread >= 1
        assert stats.committed_fills == 2

    def test_hardexc_reversion_on_page_fault(self, data_base):
        far = data_base + (1 << 30)  # unmapped
        sim = make_sim(
            f"""
            main:
                li   r1, {far}
                li   r2, 9
                st   r2, 0(r1)
                ld   r3, 0(r1)
                halt
            """,
            mechanism="multithreaded",
        )
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert stats.hard_exceptions >= 1
        assert stats.traps >= 1  # the traditional re-execution
        assert sim.core.threads[0].arch.read_int(3) == 9


class TestSquashReclaim:
    def test_wrong_path_exception_thread_reclaimed(self, data_base):
        """A miss on a mispredicted path spawns a handler; the branch
        resolution must reclaim the context and roll the fill back."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 30
                li   r7, 0
            loop:
                and  r3, r5, 1
                mul  r3, r3, 5
                mul  r3, r3, 7       ; slow condition: wrong path runs far
                beq  r3, r0, skip
                ld   r6, 0(r1)
                add  r7, r7, r6
            skip:
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism="multithreaded",
            segments=[DataSegment(base=data_base, words=[4])],
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(7) == 4 * 15

    def test_window_tail_squash_keeps_machine_live(self, data_base):
        """With a tiny window full of post-exception instructions the
        handler must still make progress (deadlock avoidance).

        Handler fetch priority normally prevents this (the paper calls
        the squash 'extremely rare'), so the test removes it to force the
        deadlock condition.
        """
        filler = "\n".join(
            f"    add  r{8 + (i % 8)}, r{8 + (i % 8)}, 1" for i in range(60)
        )
        # The load's address arrives through a slow FP chain, so the miss
        # is detected only after the window is already full of younger,
        # independent instructions -- the paper's deadlock case.
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r4, 1
                itof f1, r4
                itof f2, r1
                fdiv f3, f2, f1
                fdiv f3, f3, f1
                fdiv f3, f3, f1
                fdiv f3, f3, f1
                ftoi r5, f3
                ld   r2, 0(r5)
{filler}
                halt
            """,
            mechanism="multithreaded",
            window_size=16,
            handler_fetch_priority=False,
            segments=[DataSegment(base=data_base, words=[3])],
        )
        # Warm the I-cache so fetch fills the window faster than the slow
        # address chain resolves (cold instruction misses would otherwise
        # keep the window from ever filling).
        sim.hierarchy.l1i.prewarm(0, 4 * len(sim.programs[0].insts))
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 3
        assert sim.core.window.tail_squashes >= 1


class TestPageTableWriteCheck:
    def test_pte_overwrite_respawns_handler(self, data_base):
        """Unit-level: a committed store to a PTE being handled squashes
        and re-raises the exception (Section 4.2 memory ordering)."""
        sim = _single_load(data_base)
        core = sim.core
        mech = sim.mechanism
        # Step until a handler is in flight.
        for _ in range(100_000):
            core.step()
            if mech._by_vpn:
                break
        assert mech._by_vpn, "no exception in flight"
        vpn = next(iter(mech._by_vpn))
        reclaimed_before = mech.stats.reclaimed_threads
        mech.on_store_retired(sim.page_table.pte_address(vpn), core.cycle)
        assert mech.stats.reclaimed_threads == reclaimed_before + 1
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 41
