"""Unit tests for the exception-architecture predictors."""

from repro.exceptions.predictors import (
    ExceptionTypePredictor,
    HandlerLengthPredictor,
    SpawnPredictor,
)


class TestExceptionTypePredictor:
    def test_empty_predicts_none(self):
        assert ExceptionTypePredictor().predict() is None

    def test_learns_dominant_type(self):
        pred = ExceptionTypePredictor()
        for _ in range(4):
            pred.record("dtlb_miss")
        pred.record("unaligned")
        assert pred.predict() == "dtlb_miss"

    def test_adapts_to_shift(self):
        pred = ExceptionTypePredictor()
        for _ in range(3):
            pred.record("dtlb_miss")
        for _ in range(6):
            pred.record("fp_trap")
        assert pred.predict() == "fp_trap"

    def test_verify_scores_accuracy(self):
        pred = ExceptionTypePredictor()
        pred.record("dtlb_miss")
        assert pred.verify("dtlb_miss") is True
        assert pred.verify("unaligned") is False
        assert pred.predictions == 2 and pred.correct == 1

    def test_counters_saturate(self):
        pred = ExceptionTypePredictor(counter_bits=2)
        for _ in range(100):
            pred.record("x")
        assert pred._counters["x"] == 3


class TestHandlerLengthPredictor:
    def test_default_before_history(self):
        pred = HandlerLengthPredictor()
        assert pred.predict("dtlb_miss", default=10) == 10

    def test_last_value(self):
        pred = HandlerLengthPredictor()
        pred.record("dtlb_miss", 12)
        pred.record("dtlb_miss", 14)
        assert pred.predict("dtlb_miss", default=10) == 14

    def test_types_independent(self):
        pred = HandlerLengthPredictor()
        pred.record("a", 5)
        assert pred.predict("b", default=9) == 9


class TestSpawnPredictor:
    def test_optimistic_by_default(self):
        assert SpawnPredictor().should_spawn("dtlb_miss")

    def test_reversions_decay_confidence(self):
        pred = SpawnPredictor()
        for _ in range(3):
            pred.record_reversion("page_fault_heavy")
        assert not pred.should_spawn("page_fault_heavy")

    def test_successes_restore_confidence(self):
        pred = SpawnPredictor()
        for _ in range(3):
            pred.record_reversion("x")
        for _ in range(3):
            pred.record_success("x")
        assert pred.should_spawn("x")

    def test_types_independent(self):
        pred = SpawnPredictor()
        for _ in range(3):
            pred.record_reversion("bad")
        assert pred.should_spawn("good")
