"""Tests for the mechanism registry and lazy package exports."""

import pytest

import repro.exceptions as exc
from repro.exceptions import make_mechanism


class TestMakeMechanism:
    def test_all_names_construct(self):
        for name, cls_name in (
            ("traditional", "TraditionalMechanism"),
            ("multithreaded", "MultithreadedMechanism"),
            ("hardware", "HardwareWalkerMechanism"),
            ("quickstart", "QuickStartMechanism"),
        ):
            mech = make_mechanism(name)
            assert type(mech).__name__ == cls_name
            assert mech.name == name

    def test_perfect_is_none(self):
        assert make_mechanism("perfect") is None

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_mechanism("psychic")


class TestLazyExports:
    def test_lazy_attributes_resolve(self):
        assert exc.TraditionalMechanism.__name__ == "TraditionalMechanism"
        assert exc.LimitKnobs().any_active is False
        assert callable(exc.handler_length)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            exc.NoSuchThing  # noqa: B018

    def test_quickstart_is_a_multithreaded(self):
        from repro.exceptions.multithreaded import MultithreadedMechanism

        assert issubclass(exc.QuickStartMechanism, MultithreadedMechanism)
