"""Quick-start behaviour with multiple exception types."""

import pytest

from repro.isa.program import DataSegment
from tests.conftest import make_sim, run_to_halt


class TestTypePrediction:
    def test_wrong_type_image_discarded_safely(self, data_base):
        """A run alternating dtlb misses and emulations makes the type
        predictor wrong sometimes: wrong-type images must be discarded
        (counted) and results stay exact."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 10
                li   r7, 0
            loop:
                ld   r6, 0(r1)        ; dtlb miss (new page each time)
                emul r2, r6           ; emulation exception
                add  r7, r7, r2
                add  r7, r7, r6
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism="quickstart",
            segments=[
                DataSegment(base=data_base + i * 8192, words=[3])
                for i in range(10)
            ],
        )
        run_to_halt(sim)
        stats = sim.mechanism.stats
        # popcount(3) == 2 per iteration, plus the loaded 3s.
        assert sim.core.threads[0].arch.read_int(7) == 10 * (2 + 3)
        # Both exception types were handled.
        assert stats.committed_fills == 10
        assert stats.emulations == 10

    def test_image_restarts_when_prediction_changes(self, data_base):
        """A burst of dtlb misses followed by a burst of emulations: the
        predictor flips and the prefetched image follows it."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 6
            tlb_loop:
                ld   r6, 0(r1)
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, tlb_loop
                li   r5, 8
                li   r7, 0
            emul_loop:
                emul r2, r5
                add  r7, r7, r2
                sub  r5, r5, 1
                bne  r5, r0, emul_loop
                halt
            """,
            mechanism="quickstart",
            regions=[(data_base, 6 * 8192)],
        )
        run_to_halt(sim)
        mech = sim.mechanism
        assert mech.type_predictor.predict() == "emul"
        # popcounts of 8..1: 1+3+2+2+1+2+1+1 = 13
        assert sim.core.threads[0].arch.read_int(7) == 13
        # At least one quick-start served each... the later emulation
        # bursts should have hit prefetched emul-handler images.
        assert mech.stats.quickstart_hits + mech.stats.quickstart_partial >= 1
