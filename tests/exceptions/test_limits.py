"""Tests for the Table 3 limit-study knobs."""

import pytest

from repro.exceptions.limits import LimitKnobs
from repro.isa.program import DataSegment
from tests.conftest import make_sim, run_to_halt

SRC = """
main:
    li   r1, {base}
    li   r5, 8
    li   r7, 0
loop:
    ld   r6, 0(r1)
    add  r7, r7, r6
    li   r8, 8192
    add  r1, r1, r8
    sub  r5, r5, 1
    bne  r5, r0, loop
    halt
"""


def _sim(base, knobs=LimitKnobs(), idle=3):
    return make_sim(
        SRC.format(base=base),
        mechanism="multithreaded",
        idle_threads=idle,
        limits=knobs,
        regions=[(base, 8 * 8192)],
    )


ALL_KNOBS = [
    LimitKnobs(no_execute_bandwidth=True),
    LimitKnobs(no_window_overhead=True),
    LimitKnobs(no_fetch_bandwidth=True),
    LimitKnobs(instant_fetch=True),
]


class TestLimitKnobs:
    @pytest.mark.parametrize("knobs", ALL_KNOBS, ids=lambda k: str(vars(k)))
    def test_correctness_preserved(self, data_base, knobs):
        sim = _sim(data_base, knobs)
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(7) == 0  # zero-filled region
        assert sim.mechanism.stats.committed_fills == 8

    def test_instant_fetch_is_fastest(self, data_base):
        base_cycles = run_to_halt(_sim(data_base))
        instant = run_to_halt(_sim(data_base, LimitKnobs(instant_fetch=True)))
        assert instant < base_cycles

    def test_no_knob_is_slower_than_instant(self, data_base):
        instant = run_to_halt(_sim(data_base, LimitKnobs(instant_fetch=True)))
        for knobs in ALL_KNOBS[:-1]:
            assert run_to_halt(_sim(data_base, knobs)) >= instant

    def test_any_active_property(self):
        assert not LimitKnobs().any_active
        assert LimitKnobs(no_window_overhead=True).any_active

    def test_knobs_are_immutable(self):
        knobs = LimitKnobs()
        with pytest.raises(Exception):
            knobs.instant_fetch = True


class TestHandlerLengthPredictionAblation:
    def test_overfetch_without_length_prediction(self, data_base):
        """Disabling handler-length prediction makes exception threads
        overfetch past reti, discarding instructions at decode."""
        sim = make_sim(
            SRC.format(base=data_base),
            mechanism="multithreaded",
            idle_threads=1,
            predict_handler_length=False,
            regions=[(data_base, 8 * 8192)],
        )
        run_to_halt(sim)
        assert sim.core.stats.overfetch_discarded > 0
        assert sim.mechanism.stats.committed_fills == 8

    def test_length_prediction_never_discards(self, data_base):
        sim = _sim(data_base, idle=1)
        run_to_halt(sim)
        assert sim.core.stats.overfetch_discarded == 0
