"""Tests for the traditional (squash + refetch) trap mechanism."""

import pytest

from repro.isa.program import DataSegment
from repro.memory.address import vpn_of
from tests.conftest import make_sim, run_to_halt


def _single_load(data_base, mechanism="traditional", **kw):
    return make_sim(
        f"""
        main:
            li   r1, {data_base}
            ld   r2, 0(r1)
            add  r3, r2, 1
            halt
        """,
        mechanism=mechanism,
        segments=[DataSegment(base=data_base, words=[41])],
        **kw,
    )


class TestSingleMiss:
    def test_load_value_correct_after_trap(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(2) == 41
        assert sim.core.threads[0].arch.read_int(3) == 42

    def test_one_trap_one_committed_fill(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        stats = sim.mechanism.stats
        assert stats.traps == 1
        assert stats.committed_fills == 1

    def test_fill_becomes_architectural(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        entry = sim.dtlb.probe(vpn_of(data_base))
        assert entry is not None and not entry.speculative

    def test_handler_instructions_retired_in_same_thread(self, data_base):
        sim = _single_load(data_base)
        run_to_halt(sim)
        assert sim.core.threads[0].retired_handler >= 10

    def test_user_registers_survive_the_handler(self, data_base):
        """PAL shadow registers: the handler names r1-r6 but must not
        clobber the application's r1-r6."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r2, 1002
                li   r3, 1003
                li   r4, 1004
                li   r5, 1005
                li   r6, 1006
                ld   r7, 0(r1)
                halt
            """,
            mechanism="traditional",
            segments=[DataSegment(base=data_base, words=[7])],
        )
        run_to_halt(sim)
        arch = sim.core.threads[0].arch
        assert arch.read_int(1) == 0x1000_0000
        assert [arch.read_int(r) for r in range(2, 7)] == [1002, 1003, 1004, 1005, 1006]
        assert arch.read_int(7) == 7

    def test_second_access_to_same_page_hits(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                ld   r2, 0(r1)
                ld   r3, 8(r1)
                ld   r4, 16(r1)
                halt
            """,
            mechanism="traditional",
            segments=[DataSegment(base=data_base, words=[1, 2, 3])],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.committed_fills == 1
        assert sim.core.threads[0].arch.read_int(4) == 3

    def test_trap_costs_cycles(self, data_base):
        trad = _single_load(data_base)
        cycles_trad = run_to_halt(trad)
        perfect = _single_load(data_base, mechanism="perfect")
        cycles_perfect = run_to_halt(perfect)
        assert cycles_trad > cycles_perfect + 10

    def test_store_miss_also_traps(self, data_base):
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r2, 31
                st   r2, 0(r1)
                halt
            """,
            mechanism="traditional",
            regions=[(data_base, 8192)],
        )
        run_to_halt(sim)
        assert sim.mechanism.stats.committed_fills == 1
        assert sim.memory.read_word(data_base) == 31


class TestPageFault:
    def test_unmapped_page_takes_fixup_path(self, data_base):
        far = data_base + (1 << 30)  # never mapped by the simulator
        sim = make_sim(
            f"""
            main:
                li   r1, {far}
                li   r2, 5
                st   r2, 0(r1)
                ld   r3, 0(r1)
                halt
            """,
            mechanism="traditional",
        )
        run_to_halt(sim)
        # The fixup path "paged in" the page and the program completed.
        assert sim.core.threads[0].arch.read_int(3) == 5
        assert sim.page_table.read_pte(vpn_of(far)) & 1

    def test_multiple_faults_all_recover(self, data_base):
        far = data_base + (1 << 30)
        sim = make_sim(
            f"""
            main:
                li   r1, {far}
                li   r4, 3
            loop:
                st   r4, 0(r1)
                ld   r5, 0(r1)
                li   r6, 16384
                add  r1, r1, r6
                sub  r4, r4, 1
                bne  r4, r0, loop
                halt
            """,
            mechanism="traditional",
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(5) == 1


class TestWrongPath:
    def test_wrong_path_trap_rolls_back(self, data_base):
        """A miss behind a mispredicted branch must not corrupt state."""
        sim = make_sim(
            f"""
            main:
                li   r1, {data_base}
                li   r5, 40
                li   r7, 0
            loop:
                and  r3, r5, 1
                mul  r3, r3, 3      ; slow the condition down
                beq  r3, r0, skip
                ld   r6, 0(r1)      ; executed half the time (and often
                add  r7, r7, r6     ;  speculatively on the wrong path)
            skip:
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            mechanism="traditional",
            segments=[DataSegment(base=data_base, words=[2])],
        )
        run_to_halt(sim)
        assert sim.core.threads[0].arch.read_int(7) == 2 * 20
