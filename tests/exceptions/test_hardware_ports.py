"""Port-competition tests for the hardware walker (mechanism-level)."""

import pytest

from repro.exceptions.hardware import HardwareWalkerMechanism
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import make_program

BASE = 0x1000_0000


def _sim(**kw):
    program = make_program(
        f"""
        main:
            li   r1, {BASE}
            ld   r2, 0(r1)
            ld   r3, 8192(r1)
            ld   r4, 16384(r1)
            halt
        """,
        regions=[(BASE, 3 * 8192)],
    )
    return Simulator(program, MachineConfig(mechanism="hardware", **kw))


class TestPortService:
    def test_service_respects_free_port_budget(self):
        sim = _sim()
        mech = sim.mechanism
        core = sim.core
        # Step until at least two walks are pending their port grant.
        for _ in range(100_000):
            core.step()
            pending = [w for w in mech._walks.values() if not w.port_granted]
            if len(pending) >= 2:
                break
        else:
            pytest.skip("walks resolved before two were concurrently pending")
        used = mech.service_mem_ports(core.cycle, free_ports=1)
        assert used == 1  # only the offered budget is consumed

    def test_zero_budget_grants_nothing(self):
        sim = _sim()
        mech = sim.mechanism
        core = sim.core
        for _ in range(100_000):
            core.step()
            if any(not w.port_granted for w in mech._walks.values()):
                break
        assert mech.service_mem_ports(core.cycle, free_ports=0) == 0

    def test_all_walks_eventually_complete(self):
        sim = _sim()
        core = sim.core
        while not core.threads[0].halted and core.cycle < 100_000:
            core.step()
        assert core.threads[0].halted
        stats = sim.mechanism.stats
        assert stats.walks_started == stats.walks_completed == 3

    def test_single_mem_port_machine_serialises_walks(self):
        """With 1 load/store port, walker PTE loads and demand loads fight
        for it; everything must still finish correctly."""
        sim = _sim(width=2, window_size=32)
        core = sim.core
        while not core.threads[0].halted and core.cycle < 200_000:
            core.step()
        assert core.threads[0].halted
        assert sim.mechanism.stats.committed_fills == 3
