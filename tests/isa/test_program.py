"""Unit tests for the Program image."""

import pytest

from repro.exceptions.handler_code import install_dtlb_handler
from repro.isa.assembler import assemble
from repro.isa.program import DataSegment, Program


def _program_with(src: str) -> Program:
    program = Program()
    insts, labels = assemble(src)
    program.append_text(insts, labels)
    return program


class TestText:
    def test_fetch_in_range(self):
        program = _program_with("nop\nhalt")
        assert program.fetch(0).op.value == "nop"
        assert program.fetch(1).op.value == "halt"

    def test_fetch_out_of_range_returns_none(self):
        program = _program_with("nop")
        assert program.fetch(5) is None
        assert program.fetch(-1) is None

    def test_append_text_rebases_targets_and_labels(self):
        program = _program_with("nop\nnop")
        insts, labels = assemble("loop:\n  jmp loop")
        base = program.append_text(insts, labels)
        assert base == 2
        assert program.labels["loop"] == 2
        assert program.insts[2].target == 2

    def test_duplicate_label_between_units_rejected(self):
        program = _program_with("nop")
        insts, labels = assemble("x:\n  nop")
        program.append_text(insts, labels)
        with pytest.raises(ValueError, match="duplicate"):
            program.append_text(*assemble("x:\n  nop"))

    def test_append_pal_records_entry_and_rebases(self):
        program = _program_with("nop")
        entry = install_dtlb_handler(program)
        assert entry == 1
        assert program.pal_base == 1
        assert program.pal_entries["dtlb_miss"] == 1
        # The handler's beq target must point inside the handler.
        branch = next(i for i in program.insts[entry:] if i.is_cond_branch)
        assert branch.target > entry

    def test_disassemble_mentions_labels(self):
        program = _program_with("main:\n  nop")
        assert "main:" in program.disassemble()


class TestData:
    def test_overlapping_segments_rejected(self):
        program = Program()
        program.add_data(DataSegment(base=0x1000, words=[1, 2, 3]))
        with pytest.raises(ValueError, match="overlaps"):
            program.add_data(DataSegment(base=0x1008, words=[4]))

    def test_adjacent_segments_allowed(self):
        program = Program()
        program.add_data(DataSegment(base=0x1000, words=[1]))
        program.add_data(DataSegment(base=0x1008, words=[2]))
        assert len(program.data_segments) == 2

    def test_unaligned_segment_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            DataSegment(base=0x1001, words=[1])

    def test_unaligned_region_rejected(self):
        program = Program()
        with pytest.raises(ValueError, match="aligned"):
            program.add_region(0x1004, 64)

    def test_memory_image_word_indexed(self):
        program = Program()
        program.add_data(DataSegment(base=0x2000, words=[10, 20]))
        image = program.build_memory_words()
        assert image[0x2000 >> 3] == 10
        assert image[(0x2000 >> 3) + 1] == 20
