"""Unit tests for static instruction metadata."""

from repro.isa.instructions import (
    BRANCH_OPS,
    COND_BRANCH_OPS,
    FUClass,
    INDIRECT_OPS,
    Instruction,
    LOAD_OPS,
    MEM_OPS,
    OPCODE_FU,
    Opcode,
    PRIV_OPS,
    STORE_OPS,
)


class TestOpcodeTables:
    def test_every_opcode_has_a_fu_class(self):
        for op in Opcode:
            assert op in OPCODE_FU, f"{op} missing from OPCODE_FU"

    def test_mem_ops_partition(self):
        assert LOAD_OPS | STORE_OPS == MEM_OPS
        assert not (LOAD_OPS & STORE_OPS)

    def test_cond_branches_are_branches(self):
        assert COND_BRANCH_OPS <= BRANCH_OPS
        assert INDIRECT_OPS <= BRANCH_OPS

    def test_reti_is_privileged_and_branch(self):
        assert Opcode.RETI in PRIV_OPS
        assert Opcode.RETI in BRANCH_OPS

    def test_loads_use_load_ports(self):
        for op in LOAD_OPS:
            assert OPCODE_FU[op] is FUClass.LOAD
        for op in STORE_OPS:
            assert OPCODE_FU[op] is FUClass.STORE


class TestInstructionProperties:
    def test_branch_flags(self):
        beq = Instruction(op=Opcode.BEQ, ra=1, rb=2, target=5)
        assert beq.is_branch and beq.is_cond_branch and not beq.is_indirect

    def test_indirect_flags(self):
        ret = Instruction(op=Opcode.RET, ra=30)
        assert ret.is_branch and ret.is_indirect and not ret.is_cond_branch

    def test_memory_flags(self):
        ld = Instruction(op=Opcode.LD, rd=1, ra=2, imm=8)
        st = Instruction(op=Opcode.ST, rb=1, ra=2, imm=0)
        assert ld.is_mem and ld.is_load and not ld.is_store
        assert st.is_mem and st.is_store and not st.is_load

    def test_priv_flag_follows_opcode(self):
        tlbwr = Instruction(op=Opcode.TLBWR, ra=1, rb=2)
        add = Instruction(op=Opcode.ADD, rd=1, ra=1, rb=2)
        assert tlbwr.is_priv and not add.is_priv

    def test_str_renders_operands(self):
        inst = Instruction(op=Opcode.ADD, rd=1, ra=2, rb=3)
        assert str(inst) == "add r1, r2, r3"

    def test_str_renders_fp_registers(self):
        inst = Instruction(op=Opcode.FADD, rd=1, ra=2, rb=3)
        assert str(inst) == "fadd f1, f2, f3"

    def test_str_renders_label(self):
        inst = Instruction(op=Opcode.JMP, target=7, label="loop")
        assert "loop" in str(inst)

    def test_instructions_hashable_and_comparable(self):
        a = Instruction(op=Opcode.NOP)
        b = Instruction(op=Opcode.NOP)
        assert a == b
        assert hash(a) == hash(b)
