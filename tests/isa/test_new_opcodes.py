"""Tests for the generalized-mechanism opcodes (emul, mtdst)."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import FUClass, Instruction, Opcode
from repro.isa.semantics import compute_int, popcount


class TestAssembly:
    def test_emul_is_user_mode(self):
        (inst,), _ = assemble("emul r2, r1")
        assert inst.op is Opcode.EMUL
        assert (inst.rd, inst.ra) == (2, 1)
        assert not inst.privileged

    def test_mtdst_requires_privilege(self):
        with pytest.raises(AssemblerError, match="privileged"):
            assemble("mtdst r1")

    def test_mtdst_assembles_in_pal(self):
        (inst,), _ = assemble("mtdst r3", privileged=True)
        assert inst.op is Opcode.MTDST
        assert inst.ra == 3
        assert inst.rd is None  # destination is dynamic


class TestSemantics:
    @pytest.mark.parametrize(
        "value,bits", [(0, 0), (7, 3), (1 << 63, 1), ((1 << 64) - 1, 64)]
    )
    def test_emul_computes_popcount(self, value, bits):
        inst = Instruction(op=Opcode.EMUL, rd=1, ra=2)
        assert compute_int(inst, value, 0) == bits
        assert popcount(value) == bits

    def test_fu_classes(self):
        assert Instruction(op=Opcode.EMUL, rd=1, ra=2).fu_class is FUClass.INT_ALU
        assert Instruction(op=Opcode.MTDST, ra=1).fu_class is FUClass.INT_ALU

    def test_mtdst_is_priv(self):
        assert Instruction(op=Opcode.MTDST, ra=1).is_priv
        assert not Instruction(op=Opcode.EMUL, rd=1, ra=2).is_priv


class TestHandlerPopcountAlgorithm:
    """The PAL handler's branch-free popcount must agree with Python."""

    @pytest.mark.parametrize(
        "value",
        [0, 1, 0xFF, 0xDEADBEEF, (1 << 64) - 1, 0x5555555555555555,
         0x0123456789ABCDEF],
    )
    def test_swar_popcount(self, value):
        mask = (1 << 64) - 1
        x = value & mask
        x = (x - ((x >> 1) & 0x5555555555555555)) & mask
        x = ((x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)) & mask
        x = ((x + (x >> 4)) & 0x0F0F0F0F0F0F0F0F) & mask
        x = (x * 0x0101010101010101) & mask
        assert (x >> 56) == popcount(value)
