"""Unit tests for the architectural register file and PAL shadow bank."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import (
    INT_REG_COUNT,
    PrivReg,
    RegisterFile,
    SHADOW_BASE,
    pal_reg,
    to_signed,
    to_unsigned,
)


class TestRegisterFile:
    def test_starts_zeroed(self):
        rf = RegisterFile()
        assert all(v == 0 for v in rf.ints)
        assert all(v == 0.0 for v in rf.fps)
        assert all(v == 0 for v in rf.privs)

    def test_int_write_read(self):
        rf = RegisterFile()
        rf.write_int(5, 1234)
        assert rf.read_int(5) == 1234

    def test_r0_hardwired_zero(self):
        rf = RegisterFile()
        rf.write_int(0, 999)
        assert rf.read_int(0) == 0

    def test_int_values_wrap_to_64_bits(self):
        rf = RegisterFile()
        rf.write_int(3, (1 << 64) + 7)
        assert rf.read_int(3) == 7

    def test_negative_values_stored_unsigned(self):
        rf = RegisterFile()
        rf.write_int(4, -1)
        assert rf.read_int(4) == (1 << 64) - 1

    def test_fp_write_read(self):
        rf = RegisterFile()
        rf.write_fp(2, 3.5)
        assert rf.read_fp(2) == 3.5

    def test_priv_write_read(self):
        rf = RegisterFile()
        rf.write_priv(PrivReg.VA, 0xDEAD000)
        assert rf.read_priv(PrivReg.VA) == 0xDEAD000

    def test_snapshot_is_independent(self):
        rf = RegisterFile()
        rf.write_int(7, 42)
        snap = rf.snapshot()
        rf.write_int(7, 43)
        assert snap.read_int(7) == 42
        assert rf.read_int(7) == 43

    def test_shadow_registers_within_file(self):
        rf = RegisterFile()
        rf.write_int(SHADOW_BASE + 1, 77)
        assert rf.read_int(SHADOW_BASE + 1) == 77
        assert rf.read_int(1) == 0  # user r1 untouched


class TestPalReg:
    def test_handler_registers_shadowed(self):
        for reg in range(1, 8):
            assert pal_reg(reg) == reg + SHADOW_BASE

    def test_r0_stays_zero_register(self):
        assert pal_reg(0) == 0

    def test_high_registers_pass_through(self):
        assert pal_reg(8) == 8
        assert pal_reg(30) == 30

    def test_shadow_indices_fit_the_file(self):
        assert max(pal_reg(r) for r in range(32)) < INT_REG_COUNT


class TestSignedness:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_signed_unsigned(self, value):
        assert to_unsigned(to_signed(value)) == value

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_unsigned_signed(self, value):
        assert to_signed(to_unsigned(value)) == value

    def test_sign_boundary(self):
        assert to_signed((1 << 63)) == -(1 << 63)
        assert to_signed((1 << 63) - 1) == (1 << 63) - 1
