"""Unit and property tests for the pure functional semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import semantics
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import to_signed

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def _inst(op, **kw):
    return Instruction(op=op, **kw)


class TestIntegerOps:
    def test_add_wraps(self):
        inst = _inst(Opcode.ADD)
        assert semantics.compute_int(inst, (1 << 64) - 1, 2) == 1

    def test_sub_wraps(self):
        assert semantics.compute_int(_inst(Opcode.SUB), 0, 1) == (1 << 64) - 1

    def test_logic_ops(self):
        assert semantics.compute_int(_inst(Opcode.AND), 0b1100, 0b1010) == 0b1000
        assert semantics.compute_int(_inst(Opcode.OR), 0b1100, 0b1010) == 0b1110
        assert semantics.compute_int(_inst(Opcode.XOR), 0b1100, 0b1010) == 0b0110

    def test_shifts_mask_amount(self):
        assert semantics.compute_int(_inst(Opcode.SLL), 1, 64) == 1  # 64 & 63 == 0
        assert semantics.compute_int(_inst(Opcode.SRL), 1 << 63, 63) == 1

    def test_sra_sign_extends(self):
        minus_two = (1 << 64) - 2
        assert to_signed(semantics.compute_int(_inst(Opcode.SRA), minus_two, 1)) == -1

    def test_compares(self):
        minus_one = (1 << 64) - 1
        assert semantics.compute_int(_inst(Opcode.CMPLT), minus_one, 1) == 1
        assert semantics.compute_int(_inst(Opcode.CMPULT), minus_one, 1) == 0
        assert semantics.compute_int(_inst(Opcode.CMPEQ), 5, 5) == 1

    def test_div_truncates_toward_zero(self):
        minus_seven = (1 << 64) - 7
        assert to_signed(semantics.compute_int(_inst(Opcode.DIV), minus_seven, 2)) == -3

    def test_div_by_zero_is_total(self):
        assert semantics.compute_int(_inst(Opcode.DIV), 5, 0) == 0

    def test_li_returns_immediate(self):
        assert semantics.compute_int(_inst(Opcode.LI), 0, 42) == 42

    @given(U64, U64)
    def test_results_stay_in_64_bits(self, a, b):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SLL, Opcode.SRA):
            result = semantics.compute_int(_inst(op), a, b)
            assert 0 <= result < (1 << 64)

    def test_non_integer_opcode_rejected(self):
        with pytest.raises(ValueError):
            semantics.compute_int(_inst(Opcode.FADD), 1, 2)


class TestFloatOps:
    def test_basic_arithmetic(self):
        assert semantics.compute_fp(_inst(Opcode.FADD), 1.5, 2.5) == 4.0
        assert semantics.compute_fp(_inst(Opcode.FMUL), 3.0, 2.0) == 6.0
        assert semantics.compute_fp(_inst(Opcode.FSUB), 3.0, 2.0) == 1.0

    def test_fdiv_by_zero_is_total(self):
        assert semantics.compute_fp(_inst(Opcode.FDIV), 1.0, 0.0) == 0.0

    def test_fsqrt_of_negative_is_total(self):
        assert semantics.compute_fp(_inst(Opcode.FSQRT), -4.0, 0.0) == 0.0

    def test_fsqrt(self):
        assert semantics.compute_fp(_inst(Opcode.FSQRT), 9.0, 0.0) == 3.0


class TestConversions:
    def test_itof_signed(self):
        assert semantics.convert(_inst(Opcode.ITOF), (1 << 64) - 1) == -1.0

    def test_ftoi_truncates(self):
        assert semantics.convert(_inst(Opcode.FTOI), 3.9) == 3

    def test_ftoi_handles_nan_and_inf(self):
        assert semantics.convert(_inst(Opcode.FTOI), float("nan")) == 0
        assert semantics.convert(_inst(Opcode.FTOI), float("inf")) == 0


class TestBranchesAndAddresses:
    def test_effective_address(self):
        inst = _inst(Opcode.LD, imm=16)
        assert semantics.effective_address(inst, 100) == 116

    def test_effective_address_wraps(self):
        inst = _inst(Opcode.LD, imm=8)
        assert semantics.effective_address(inst, (1 << 64) - 4) == 4

    def test_branch_directions(self):
        assert semantics.branch_taken(_inst(Opcode.BEQ), 5, 5)
        assert semantics.branch_taken(_inst(Opcode.BNE), 5, 6)
        assert semantics.branch_taken(_inst(Opcode.BLT), (1 << 64) - 1, 0)  # -1 < 0
        assert semantics.branch_taken(_inst(Opcode.BGE), 0, 0)

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            semantics.branch_taken(_inst(Opcode.ADD), 1, 2)
