"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Opcode
from repro.isa.registers import RA_REG, SP_REG


class TestBasicAssembly:
    def test_three_operand_alu(self):
        insts, _ = assemble("add r1, r2, r3")
        (inst,) = insts
        assert inst.op is Opcode.ADD
        assert (inst.rd, inst.ra, inst.rb) == (1, 2, 3)

    def test_immediate_second_operand(self):
        (inst,), _ = assemble("add r1, r2, 42")
        assert inst.rb is None and inst.imm == 42

    def test_negative_and_hex_immediates(self):
        (a,), _ = assemble("add r1, r2, -8")
        (b,), _ = assemble("li r1, 0xFF")
        assert a.imm == -8 and b.imm == 255

    def test_memory_operands(self):
        (ld,), _ = assemble("ld r1, 16(r2)")
        assert (ld.rd, ld.ra, ld.imm) == (1, 2, 16)
        (st,), _ = assemble("st r3, -8(r4)")
        assert (st.rb, st.ra, st.imm) == (3, 4, -8)

    def test_fp_memory_operands(self):
        (fld,), _ = assemble("fld f1, 0(r2)")
        assert fld.rd == 1 and fld.ra == 2
        (fst,), _ = assemble("fst f3, 8(r2)")
        assert fst.rb == 3

    def test_register_aliases(self):
        (inst,), _ = assemble("add sp, sp, 8")
        assert inst.rd == SP_REG
        (inst,), _ = assemble("add r1, lr, zero")
        assert inst.ra == RA_REG and inst.rb == 0

    def test_call_writes_link_register(self):
        insts, _ = assemble("target:\n  call target")
        assert insts[0].rd == RA_REG

    def test_comments_and_blank_lines_ignored(self):
        insts, _ = assemble(
            """
            ; comment line
            nop  # trailing comment
            """
        )
        assert len(insts) == 1


class TestLabels:
    def test_forward_and_backward_references(self):
        insts, labels = assemble(
            """
            start:
                jmp end
            mid:
                jmp start
            end:
                jmp mid
            """
        )
        assert labels == {"start": 0, "mid": 1, "end": 2}
        assert [i.target for i in insts] == [2, 0, 1]

    def test_conditional_branch_target(self):
        insts, _ = assemble("loop:\n  bne r1, r0, loop")
        assert insts[0].target == 0 and insts[0].label == "loop"

    def test_extern_labels_resolve(self):
        insts, _ = assemble("jmp helper", extern_labels={"helper": 99})
        assert insts[0].target == 99

    def test_local_labels_shadow_extern(self):
        insts, _ = assemble(
            "helper:\n  jmp helper", extern_labels={"helper": 99}
        )
        assert insts[0].target == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\na:\n  nop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble("jmp nowhere")


class TestPrivileged:
    def test_priv_ops_need_privileged_mode(self):
        with pytest.raises(AssemblerError, match="privileged"):
            assemble("reti")

    def test_priv_unit_assembles(self):
        insts, _ = assemble(
            """
            mfpr r1, VA
            mtpr SCRATCH, r1
            tlbwr r1, r2
            reti
            hardexc
            """,
            privileged=True,
        )
        assert all(i.privileged for i in insts)
        assert insts[0].imm == 0  # PrivReg.VA

    def test_unknown_priv_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("mfpr r1, BOGUS", privileged=True)


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r99, r2")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="memory operand"):
            assemble("ld r1, r2")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbadop r1")
