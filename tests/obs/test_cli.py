"""Smoke tests for ``repro-trace`` / ``python -m repro.obs``."""

import json

import pytest

from repro.obs.cli import main


class TestCli:
    def test_run_writes_valid_trace_and_manifest(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        manifest = tmp_path / "run.json"
        code = main(
            [
                "compress",
                "--mechanism",
                "traditional",
                "--insts",
                "800",
                "--warmup",
                "100",
                "--out",
                str(out),
                "--manifest",
                str(manifest),
                "--attribution",
                "--validate",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "squash_refetch" in text  # the attribution table printed
        assert "validated 2 file(s): ok" in text
        doc = json.loads(out.read_text())
        assert doc["otherData"]["mechanism"] == "traditional"
        assert json.loads(manifest.read_text())["workload"] == ["compress"]

    def test_mix_runs_as_smt(self, tmp_path):
        out = tmp_path / "mix.trace.json"
        code = main(
            [
                "compress",
                "deltablue",
                "--mechanism",
                "multithreaded",
                "--insts",
                "500",
                "--warmup",
                "100",
                "--out",
                str(out),
                "--validate",
            ]
        )
        assert code == 0
        assert json.loads(out.read_text())["otherData"]["workload"] == [
            "compress",
            "deltablue",
        ]

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["not-a-benchmark"])
