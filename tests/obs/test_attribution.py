"""Tests for Table-3 cycle attribution."""

import pytest

from repro.obs.attribution import ATTRIBUTION_CATEGORIES, CycleAttribution
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads import build_benchmark
from tests.conftest import ALL_MECHANISMS


def _attributed_run(mechanism, user_insts=2500, warmup_insts=400):
    sim = Simulator(
        build_benchmark("compress"), MachineConfig(mechanism=mechanism)
    )
    attribution = CycleAttribution.attach(sim.core)
    result = sim.run(user_insts=user_insts, warmup_insts=warmup_insts)
    table = attribution.finalize(sim.core.cycle)
    return sim, result, table


class TestSumsToTotal:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_categories_cover_run_exactly(self, mechanism):
        sim, _, table = _attributed_run(mechanism)
        table.check_sum()  # raises on any gap or double-count
        assert table.total_cycles == sim.core.cycle
        assert set(table.cycles) == set(ATTRIBUTION_CATEGORIES)
        assert all(v >= 0 for v in table.cycles.values())

    def test_perfect_machine_has_no_exception_categories(self):
        sim, _, table = _attributed_run("perfect")
        table.check_sum()
        assert table.cycles["handler_fetch"] == 0
        assert table.cycles["handler_exec"] == 0
        assert table.cycles["splice_stall"] == 0


class TestTable3Story:
    """The paper's qualitative decomposition, measured."""

    @pytest.fixture(scope="class")
    def tables(self):
        return {m: _attributed_run(m) for m in ALL_MECHANISMS}

    def test_traditional_pays_squash_refetch(self, tables):
        _, _, trad = tables["traditional"]
        _, _, multi = tables["multithreaded"]
        # The trap squashes and refetches on every miss; the handler
        # thread does not.  (Both keep a branch-misprediction floor.)
        assert trad.cycles["squash_refetch"] > multi.cycles["squash_refetch"]
        assert trad.cycles["handler_fetch"] == 0  # no handler threads

    def test_multithreaded_pays_handler_fetch(self, tables):
        _, _, multi = tables["multithreaded"]
        assert multi.cycles["handler_fetch"] > 0

    def test_quickstart_removes_most_fetch_component(self, tables):
        _, _, multi = tables["multithreaded"]
        _, _, quick = tables["quickstart"]
        assert quick.cycles["handler_fetch"] < multi.cycles["handler_fetch"]

    def test_hardware_has_neither_software_cost(self, tables):
        _, _, hw = tables["hardware"]
        assert hw.cycles["handler_fetch"] == 0
        assert hw.cycles["splice_stall"] == 0
        assert hw.cycles["handler_exec"] > 0  # walks still take cycles


class TestEpisodes:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_episode_log_is_consistent(self, mechanism):
        _, result, table = _attributed_run(mechanism)
        assert table.episodes
        expected_path = {
            "traditional": "trap",
            "multithreaded": "thread",
            "quickstart": "thread",
            "hardware": "walk",
        }[mechanism]
        assert any(e.path == expected_path for e in table.episodes)
        for episode in table.episodes:
            assert episode.end_cycle >= episode.spawn_cycle >= episode.detect_cycle
            assert episode.latency >= 0
            assert (
                episode.fetch_cycles >= 0
                and episode.exec_cycles >= 0
                and episode.drain_cycles >= 0
            )

    def test_clean_thread_episode_phases_ordered(self):
        _, _, table = _attributed_run("multithreaded")
        clean = [e for e in table.episodes if e.end_path == "thread"]
        assert clean
        for episode in clean:
            assert episode.first_issue_cycle >= episode.spawn_cycle
            assert episode.reti_cycle >= episode.first_issue_cycle
            assert episode.end_cycle >= episode.reti_cycle


class TestTableHelpers:
    def test_per_miss_and_format(self):
        _, result, table = _attributed_run("traditional")
        per = table.per_miss(result.committed_fills)
        assert set(per) == set(ATTRIBUTION_CATEGORIES)
        text = table.format(fills=result.committed_fills)
        assert "squash_refetch" in text and "per-miss" in text

    def test_check_sum_raises_on_mismatch(self):
        from repro.obs.attribution import AttributionTable

        table = AttributionTable(total_cycles=10, cycles={"user": 4, "idle": 5})
        with pytest.raises(AssertionError):
            table.check_sum()
