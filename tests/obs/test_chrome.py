"""Tests for the Chrome trace_event exporter and its validator."""

import json

import pytest

from repro.isa.program import DataSegment
from repro.obs.chrome import ChromeTraceExporter, validate_chrome_trace
from tests.conftest import make_sim, run_to_halt


def _miss_sim(data_base, mechanism="multithreaded"):
    return make_sim(
        f"""
        main:
            li   r1, {data_base}
            ld   r2, 0(r1)
            add  r3, r2, 1
            halt
        """,
        mechanism=mechanism,
        segments=[DataSegment(base=data_base, words=[41])],
    )


def _traced_run(data_base, mechanism="multithreaded"):
    sim = _miss_sim(data_base, mechanism)
    exporter = ChromeTraceExporter.attach(sim.core)
    run_to_halt(sim)
    return sim, exporter


class TestExport:
    def test_document_passes_schema(self, data_base):
        _, exporter = _traced_run(data_base)
        doc = exporter.export()
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_document_is_json_serializable(self, data_base, tmp_path):
        _, exporter = _traced_run(data_base)
        path = tmp_path / "run.trace.json"
        exporter.write(str(path), manifest={"kind": "x"})
        reloaded = json.loads(path.read_text())
        assert reloaded["otherData"] == {"kind": "x"}
        assert validate_chrome_trace(reloaded) == []

    def test_every_track_is_named(self, data_base):
        _, exporter = _traced_run(data_base)
        events = exporter.trace_events()
        named = {
            e["tid"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used = {e["tid"] for e in events if e["ph"] != "M"}
        assert used <= named

    @pytest.mark.parametrize("mechanism", ("traditional", "multithreaded"))
    def test_episode_span_emitted(self, data_base, mechanism):
        _, exporter = _traced_run(data_base, mechanism)
        spans = [
            e for e in exporter.trace_events() if e.get("cat") == "episode"
        ]
        assert len(spans) == 1
        (span,) = spans
        assert span["ph"] == "X" and span["dur"] >= 1
        expected = "thread" if mechanism == "multithreaded" else "trap"
        assert f"[{expected}]" in span["name"]
        assert span["args"]["end"] == expected

    def test_retires_can_be_omitted(self, data_base):
        sim = _miss_sim(data_base)
        exporter = ChromeTraceExporter.attach(sim.core, retires=False)
        run_to_halt(sim)
        events = exporter.trace_events()
        assert not [e for e in events if e.get("cat") == "retire"]
        assert [e for e in events if e.get("cat") == "episode"]


class TestSpliceInvariant:
    def test_handler_retires_between_pre_and_post_exception_user_work(
        self, data_base
    ):
        # The retirement splice: every handler instruction retires after
        # all pre-exception user instructions and before the excepting
        # one.  The trace must show handler slices strictly between the
        # pre-exception user slices and the excepting ld's slice.
        _, exporter = _traced_run(data_base, "multithreaded")
        retires = [
            e for e in exporter.trace_events() if e.get("cat") == "retire"
        ]
        handler = [e for e in retires if e.get("cname") == "yellow"]
        user = [e for e in retires if e.get("cname") != "yellow"]
        assert handler and user
        ld = next(e for e in user if e["name"] == "ld")
        pre = [e for e in user if e["args"]["seq"] < ld["args"]["seq"]]
        assert pre  # the li retires before the exception
        for h in handler:
            assert max(e["ts"] for e in pre) <= h["ts"] <= ld["ts"]


class TestValidator:
    def test_flags_missing_keys(self):
        doc = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1}]}
        problems = validate_chrome_trace(doc)
        assert any("missing 'tid'" in p for p in problems)

    def test_flags_bad_timestamps_and_durations(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": -1, "dur": 0},
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("bad ts" in p for p in problems)
        assert any("bad dur" in p for p in problems)

    def test_flags_unnamed_tracks(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "i", "s": "t", "pid": 1, "tid": 7, "ts": 0},
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("thread 7" in p for p in problems)

    def test_rejects_non_document(self):
        assert validate_chrome_trace([]) == ["trace document is not an object"]
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
