"""Tests for run manifests and their cache integration."""

import json

from repro.obs.attribution import CycleAttribution
from repro.obs.manifest import (
    build_manifest,
    config_hash,
    validate_manifest,
    write_manifest,
)
from repro.sim.config import MachineConfig
from repro.sim.parallel import CellSpec, ResultCache, run_cells
from repro.sim.simulator import Simulator
from repro.workloads import build_benchmark


def _run(mechanism="traditional", attribute=False):
    sim = Simulator(
        build_benchmark("compress"), MachineConfig(mechanism=mechanism)
    )
    attribution = CycleAttribution.attach(sim.core) if attribute else None
    result = sim.run(user_insts=1200, warmup_insts=200)
    table = attribution.finalize(sim.core.cycle) if attribution else None
    return sim, result, table


class TestBuildAndValidate:
    def test_round_trip(self, tmp_path):
        sim, result, table = _run(attribute=True)
        manifest = build_manifest(
            result, sim.config, attribution=table, workload="compress"
        )
        assert validate_manifest(manifest) == []
        path = tmp_path / "run.json"
        write_manifest(str(path), manifest)
        assert validate_manifest(json.loads(path.read_text())) == []

    def test_manifest_records_engine_backend(self, monkeypatch):
        sim, result, _ = _run()
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert build_manifest(result, sim.config)["engine_backend"] == (
            "reference"
        )
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        assert build_manifest(result, sim.config)["engine_backend"] == (
            "batched"
        )

    def test_validator_requires_engine_backend(self):
        sim, result, _ = _run()
        manifest = build_manifest(result, sim.config)
        del manifest["engine_backend"]
        assert any(
            "engine_backend" in p for p in validate_manifest(manifest)
        )

    def test_counters_carry_every_sim_stat(self):
        sim, result, _ = _run()
        manifest = build_manifest(result, sim.config)
        sim_counters = manifest["counters"]["sim"]
        assert sim_counters == result.stats.as_dict()
        assert "emulation_events" in sim_counters

    def test_counters_carry_per_cause_attribution(self):
        # The scenario causes flow into manifests through the same
        # introspective as_dict() path as every scalar counter.
        from repro.scenarios.spec import ScenarioSpec, build_scenario_program
        from repro.workloads.builder import make_program

        spec = ScenarioSpec(
            name="manifest-causes", seed=6, causes=("brev", "swint"),
            length=16, iters=4,
        )
        generated = build_scenario_program(spec)
        program = make_program(
            generated.source, regions=generated.regions, scenario_causes=True
        )
        sim = Simulator(program, MachineConfig(mechanism="traditional"))
        result = sim.run(user_insts=2000, warmup_insts=0)
        manifest = build_manifest(result, sim.config)
        counters = manifest["counters"]["sim"]
        for key in ("cause_taken", "cause_squashes", "cause_handler_cycles"):
            assert key in counters
        assert counters["cause_taken"].get("brev", 0) > 0
        assert counters["cause_taken"].get("swint", 0) > 0
        assert validate_manifest(manifest) == []

    def test_config_hash_stable_and_sensitive(self):
        a = MachineConfig(mechanism="traditional")
        b = MachineConfig(mechanism="multithreaded")
        assert config_hash(a) == config_hash(MachineConfig(mechanism="traditional"))
        assert config_hash(a) != config_hash(b)
        assert len(config_hash(a)) == 16

    def test_validator_flags_problems(self):
        assert validate_manifest([]) == ["manifest is not an object"]
        problems = validate_manifest({"kind": "nope", "schema": 99})
        assert any("bad kind" in p for p in problems)
        assert any("unknown schema" in p for p in problems)
        sim, result, table = _run(attribute=True)
        manifest = build_manifest(result, sim.config, attribution=table)
        manifest["attribution"]["cycles"]["user"] += 1
        assert any(
            "do not sum" in p for p in validate_manifest(manifest)
        )


class TestCacheManifests:
    def _spec(self):
        return CellSpec(
            workload="compress",
            config=MachineConfig(mechanism="traditional"),
            user_insts=800,
            warmup_insts=100,
            max_cycles=400_000,
        )

    def test_put_writes_manifest_beside_pickle(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = self._spec()
        results = run_cells([spec], jobs=1, cache=cache)
        manifest_path = cache.manifest_path(spec)
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert validate_manifest(manifest) == []
        assert manifest["workload"] == "compress"
        assert manifest["cycles"] == results[0].cycles
