"""Tests for the event bus: fan-out semantics and core emission sites."""

import dataclasses

import pytest

from repro.isa.program import DataSegment
from repro.obs.events import EVENT_KINDS, EventBus, ObsEvent, attach_bus
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads import build_benchmark
from tests.conftest import ALL_MECHANISMS, make_sim, run_to_halt


class _Recorder:
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


def _miss_sim(data_base, mechanism):
    return make_sim(
        f"""
        main:
            li   r1, {data_base}
            ld   r2, 0(r1)
            add  r3, r2, 1
            halt
        """,
        mechanism=mechanism,
        segments=[DataSegment(base=data_base, words=[41])],
    )


class TestEventBus:
    def test_subscribe_is_idempotent(self):
        bus = EventBus()
        sub = _Recorder()
        bus.subscribe(sub)
        bus.subscribe(sub)
        bus.emit(ObsEvent("fetch", 0, 0))
        assert len(sub.events) == 1

    def test_unsubscribe_any_order(self):
        bus = EventBus()
        a, b = _Recorder(), _Recorder()
        bus.subscribe(a)
        bus.subscribe(b)
        bus.unsubscribe(a)  # not LIFO
        bus.emit(ObsEvent("retire", 1, 0))
        assert not a.events and len(b.events) == 1
        bus.unsubscribe(a)  # double-unsubscribe is a no-op
        assert len(bus) == 1

    def test_emit_fans_out_in_subscription_order(self):
        bus = EventBus()
        order = []
        for tag in ("first", "second"):
            sub = _Recorder()
            sub.on_event = lambda e, tag=tag: order.append(tag)
            bus.subscribe(sub)
        bus.emit(ObsEvent("issue", 0, 0))
        assert order == ["first", "second"]

    def test_attach_bus_reuses_existing(self, data_base):
        sim = _miss_sim(data_base, "perfect")
        bus = attach_bus(sim.core)
        assert attach_bus(sim.core) is bus
        assert sim.core.listeners is bus


class TestCoreEmission:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_kind_coverage_per_mechanism(self, data_base, mechanism):
        sim = _miss_sim(data_base, mechanism)
        recorder = attach_bus(sim.core).subscribe(_Recorder())
        run_to_halt(sim)
        kinds = {e.kind for e in recorder.events}
        assert {"fetch", "issue", "retire", "exception", "spawn", "splice"} <= kinds
        assert kinds <= set(EVENT_KINDS)

    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_spawn_splice_paired_with_matching_path(self, data_base, mechanism):
        sim = _miss_sim(data_base, mechanism)
        recorder = attach_bus(sim.core).subscribe(_Recorder())
        run_to_halt(sim)
        spawns = {e.exc_id: e for e in recorder.events if e.kind == "spawn"}
        splices = [e for e in recorder.events if e.kind == "splice"]
        assert spawns and splices
        for splice in splices:
            assert splice.exc_id in spawns
            spawn = spawns[splice.exc_id]
            assert splice.cycle >= spawn.cycle
            # A clean completion echoes the spawn path.
            if splice.path in ("thread", "trap", "walk"):
                assert splice.path == spawn.path

    def test_exception_event_precedes_spawn(self, data_base):
        sim = _miss_sim(data_base, "multithreaded")
        recorder = attach_bus(sim.core).subscribe(_Recorder())
        run_to_halt(sim)
        first_exc = next(
            i for i, e in enumerate(recorder.events) if e.kind == "exception"
        )
        first_spawn = next(
            i for i, e in enumerate(recorder.events) if e.kind == "spawn"
        )
        assert first_exc < first_spawn
        assert recorder.events[first_exc].exc_type == "dtlb_miss"

    def test_cycles_monotonic(self, data_base):
        sim = _miss_sim(data_base, "traditional")
        recorder = attach_bus(sim.core).subscribe(_Recorder())
        run_to_halt(sim)
        cycles = [e.cycle for e in recorder.events]
        assert cycles == sorted(cycles)


class TestZeroOverhead:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_results_bit_identical_with_bus_on(self, mechanism):
        plain = Simulator(
            build_benchmark("compress"), MachineConfig(mechanism=mechanism)
        )
        r_plain = plain.run(user_insts=1500, warmup_insts=200)
        observed = Simulator(
            build_benchmark("compress"), MachineConfig(mechanism=mechanism)
        )
        attach_bus(observed.core).subscribe(_Recorder())
        r_observed = observed.run(user_insts=1500, warmup_insts=200)
        assert dataclasses.asdict(r_plain) == dataclasses.asdict(r_observed)
