"""Property tests on the retirement splice (the paper's Figure 1c).

For randomly placed TLB misses inside randomly sized instruction blocks,
the global retirement order must satisfy:

* each thread retires its own instructions in fetch order,
* every handler retires contiguously,
* a handler retires entirely *before* its excepting instruction and
  after everything older in the master thread.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import make_program

BASE = 0x1000_0000


def _program(block_sizes, n_pages):
    """Straight-line blocks of ALU work separated by page-missing loads."""
    lines = [f"    li   r1, {BASE}", "    li   r7, 0"]
    page = 0
    for i, block in enumerate(block_sizes):
        for j in range(block):
            reg = 8 + ((i + j) % 6)
            lines.append(f"    add  r{reg}, r{reg}, {j + 1}")
        lines.append(f"    ld   r6, {page * 8192}(r1)")
        lines.append("    add  r7, r7, r6")
        page = (page + 1) % n_pages
    lines.append("    halt")
    source = "main:\n" + "\n".join(lines)
    return make_program(source, regions=[(BASE, n_pages * 8192)])


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    block_sizes=st.lists(st.integers(min_value=0, max_value=12),
                         min_size=2, max_size=8),
    idle_threads=st.integers(min_value=1, max_value=3),
)
def test_retirement_splice_invariants(block_sizes, idle_threads):
    program = _program(block_sizes, n_pages=len(block_sizes))
    sim = Simulator(
        program,
        MachineConfig(mechanism="multithreaded", idle_threads=idle_threads),
    )
    core = sim.core
    log = []  # (tid, seq, is_handler, linked_handler_tid_or_None)
    original = core._do_retire

    def spy(thread, uop, now):
        log.append((thread.tid, uop.seq, uop.is_handler))
        return original(thread, uop, now)

    core._do_retire = spy
    while not core.threads[0].halted and core.cycle < 300_000:
        core.step()
    assert core.threads[0].halted, "program did not finish"

    # 1. Per-thread retirement follows fetch order.
    last_seq: dict[int, int] = {}
    for tid, seq, _ in log:
        assert seq > last_seq.get(tid, -1), "out-of-order retirement in a thread"
        last_seq[tid] = seq

    # 2. Each handler-thread episode retires contiguously in the global
    #    stream (the splice): once a handler thread starts retiring, no
    #    other thread retires until it finishes with its reti.
    i = 0
    while i < len(log):
        tid, _, is_handler = log[i]
        if is_handler and tid != 0:
            j = i
            while j < len(log) and log[j][0] == tid:
                j += 1
            episode = log[i:j]
            # The episode ends because the handler completed; its length
            # is the whole handler (10 instructions, common case).
            assert len(episode) == 10, "handler interleaved with other work"
            i = j
        else:
            i += 1

    # 3. Architectural result is the perfect-TLB result.
    reference = Simulator(
        _program(block_sizes, n_pages=len(block_sizes)),
        MachineConfig(mechanism="perfect"),
    )
    while not reference.core.threads[0].halted and reference.core.cycle < 300_000:
        reference.core.step()
    assert (
        sim.core.threads[0].arch.ints[:32]
        == reference.core.threads[0].arch.ints[:32]
    )
