"""Cross-mechanism architectural equivalence.

The exception architecture changes *when* things happen, never *what*
happens: for any program, every mechanism (and the perfect TLB) must
produce identical final architectural state.  These tests run finite
programs that halt -- including TLB-miss-heavy ones -- under all five
configurations and compare registers and memory.
"""

import pytest

from repro.isa.program import DataSegment
from repro.isa.registers import SHADOW_BASE
from tests.conftest import ALL_MECHANISMS, make_sim, run_to_halt

MECHS = ("perfect",) + ALL_MECHANISMS


def _final_state(source, mechanism, segments=None, regions=None, **kw):
    sim = make_sim(source, mechanism=mechanism, segments=segments,
                   regions=regions, **kw)
    cycles = run_to_halt(sim)
    arch = sim.core.threads[0].arch
    regs = tuple(arch.ints[:SHADOW_BASE]) + tuple(arch.fps)
    return regs, sim.memory.snapshot(), cycles


def assert_all_equivalent(source, segments=None, regions=None, **kw):
    reference = None
    for mech in MECHS:
        regs, mem, _ = _final_state(source, mech, segments, regions, **kw)
        # Page-table words differ legitimately (fault fix-up); compare
        # only non-page-table memory.
        mem = {k: v for k, v in mem.items() if (k << 3) < (1 << 40)}
        if reference is None:
            reference = (regs, mem)
        else:
            assert regs == reference[0], f"{mech}: register state diverged"
            assert mem == reference[1], f"{mech}: memory state diverged"


BASE = 0x1000_0000


class TestEquivalence:
    def test_page_walking_loop(self):
        assert_all_equivalent(
            f"""
            main:
                li   r1, {BASE}
                li   r5, 40
                li   r7, 0
            loop:
                ld   r6, 0(r1)
                add  r7, r7, r6
                st   r7, 8(r1)
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            regions=[(BASE, 40 * 8192)],
        )

    def test_random_probing_with_branches(self):
        assert_all_equivalent(
            f"""
            main:
                li   r1, {BASE}
                li   r10, 12345
                li   r20, 6364136223846793005
                li   r21, 1442695040888963407
                li   r5, 120
                li   r7, 0
            loop:
                mul  r10, r10, r20
                add  r10, r10, r21
                srl  r11, r10, 40
                and  r11, r11, 1048568
                add  r12, r1, r11
                ld   r13, 0(r12)
                and  r14, r13, 1
                beq  r14, r0, even
                add  r7, r7, 1
                jmp  next
            even:
                add  r13, r13, 1
                st   r13, 0(r12)
            next:
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            regions=[(BASE, 128 * 8192)],
        )

    def test_pointer_chase_across_pages(self):
        words = []
        stride_words = 3000  # ~23 KB apart: every hop a new page
        count = 30
        for i in range(count):
            target = ((i + 7) % count) * stride_words
            words.extend([BASE + target * 8, i * 31])
            words.extend([0] * (stride_words - 2))
        segments = [DataSegment(base=BASE, words=words)]
        assert_all_equivalent(
            f"""
            main:
                li   r1, {BASE}
                li   r5, 25
                li   r7, 0
            loop:
                ld   r2, 0(r1)
                ld   r3, 8(r1)
                add  r7, r7, r3
                or   r1, r2, r0
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
            segments=segments,
        )

    def test_fp_kernel_with_misses(self):
        assert_all_equivalent(
            f"""
            main:
                li   r1, {BASE}
                li   r5, 30
            loop:
                fld  f1, 0(r1)
                fadd f2, f2, f1
                fdiv f3, f2, f4
                fst  f2, 8(r1)
                li   r8, 8192
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                ftoi r9, f2
                halt
            """,
            regions=[(BASE, 30 * 8192)],
        )

    def test_page_faults_resolve_identically(self):
        far = BASE + (1 << 31)
        assert_all_equivalent(
            f"""
            main:
                li   r1, {far}
                li   r5, 4
                li   r7, 0
            loop:
                st   r5, 0(r1)
                ld   r6, 0(r1)
                add  r7, r7, r6
                li   r8, 16384
                add  r1, r1, r8
                sub  r5, r5, 1
                bne  r5, r0, loop
                halt
            """,
        )

    @pytest.mark.parametrize("idle", [1, 3])
    def test_idle_thread_count_does_not_change_results(self, idle):
        source = f"""
        main:
            li   r1, {BASE}
            li   r5, 20
            li   r7, 0
        loop:
            ld   r6, 0(r1)
            ld   r9, 8192(r1)
            add  r7, r7, r6
            add  r7, r7, r9
            li   r8, 16384
            add  r1, r1, r8
            sub  r5, r5, 1
            bne  r5, r0, loop
            halt
        """
        regions = [(BASE, 41 * 8192)]
        a, _, _ = _final_state(source, "multithreaded", regions=regions,
                               idle_threads=idle)
        b, _, _ = _final_state(source, "perfect", regions=regions)
        assert a == b
