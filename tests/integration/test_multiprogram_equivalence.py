"""SMT mixes must also be architecturally mechanism-independent."""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import SLICE_STRIDE, make_program

BASE = 0x1000_0000


def _worker(base, pages, iterations):
    """A finite page-walking worker that halts with a checksum in r7."""
    return make_program(
        f"""
        main:
            li   r1, {base}
            li   r5, {iterations}
            li   r7, 0
        loop:
            ld   r6, 0(r1)
            add  r7, r7, r6
            st   r7, 8(r1)
            li   r8, 8192
            add  r1, r1, r8
            sub  r5, r5, 1
            bne  r5, r0, loop
            halt
        """,
        regions=[(base, pages * 8192)],
    )


def _run_mix(mechanism, idle_threads=1):
    programs = [
        _worker(BASE, 30, 30),
        _worker(BASE + SLICE_STRIDE, 25, 25),
        _worker(BASE + 2 * SLICE_STRIDE, 20, 20),
    ]
    sim = Simulator(
        programs, MachineConfig(mechanism=mechanism, idle_threads=idle_threads)
    )
    core = sim.core
    while core.cycle < 400_000:
        apps = [t for t in core.threads if t.program and not t.is_exception_thread]
        if apps and all(t.halted for t in apps):
            break
        core.step()
    else:
        raise AssertionError("mix did not finish")
    return [core.threads[i].arch.read_int(7) for i in range(3)]


class TestMultiprogramEquivalence:
    def test_all_mechanisms_agree(self):
        reference = _run_mix("perfect")
        for mechanism in ("traditional", "multithreaded", "hardware", "quickstart"):
            assert _run_mix(mechanism) == reference, mechanism

    def test_idle_thread_count_irrelevant_to_results(self):
        assert _run_mix("multithreaded", 1) == _run_mix("multithreaded", 3)

    def test_exception_threads_service_any_app_thread(self):
        programs = [
            _worker(BASE, 30, 30),
            _worker(BASE + SLICE_STRIDE, 25, 25),
        ]
        sim = Simulator(
            programs, MachineConfig(mechanism="multithreaded", idle_threads=1)
        )
        core = sim.core
        served: set[int] = set()
        while core.cycle < 400_000:
            apps = [t for t in core.threads if t.program and not t.is_exception_thread]
            if apps and all(t.halted for t in apps):
                break
            core.step()
            handler = core.threads[2]
            if handler.master_tid is not None:
                served.add(handler.master_tid)
        assert served == {0, 1}  # the single idle context served both apps
