"""Property-based equivalence: random programs, identical results.

Hypothesis generates random loop bodies (ALU ops, loads, stores, and
data-dependent branches over a multi-page region) and we assert that the
traditional and multithreaded exception mechanisms produce exactly the
perfect-TLB architectural state.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.isa.registers import SHADOW_BASE
from tests.conftest import make_sim, run_to_halt

BASE = 0x1000_0000
REGION_PAGES = 80

_reg = st.integers(min_value=4, max_value=12)
_alu = st.sampled_from(["add", "sub", "xor", "and", "or", "mul"])


@st.composite
def loop_body(draw):
    """A random loop body touching a multi-page region."""
    lines = []
    n = draw(st.integers(min_value=2, max_value=8))
    for i in range(n):
        kind = draw(st.sampled_from(["alu", "load", "store", "addr"]))
        if kind == "alu":
            op = draw(_alu)
            rd, ra, rb = draw(_reg), draw(_reg), draw(_reg)
            lines.append(f"    {op} r{rd}, r{ra}, r{rb}")
        elif kind == "addr":
            # Advance the roving pointer by a page-scale stride.
            stride = draw(st.integers(min_value=1, max_value=3)) * 8200
            lines.append(f"    add r2, r2, {stride}")
            lines.append(f"    and r2, r2, {REGION_PAGES * 8192 - 8}")
        elif kind == "load":
            rd = draw(_reg)
            lines.append("    add r3, r1, r2")
            lines.append(f"    ld r{rd}, 0(r3)")
        else:
            rb = draw(_reg)
            lines.append("    add r3, r1, r2")
            lines.append(f"    st r{rb}, 0(r3)")
    return "\n".join(lines)


def _source(body: str, iterations: int) -> str:
    return f"""
main:
    li   r1, {BASE}
    li   r2, 0
    li   r15, {iterations}
loop:
{body}
    sub  r15, r15, 1
    bne  r15, r0, loop
    halt
"""


def _state(source: str, mechanism: str):
    sim = make_sim(
        source, mechanism=mechanism, regions=[(BASE, REGION_PAGES * 8192)]
    )
    run_to_halt(sim, max_cycles=400_000)
    arch = sim.core.threads[0].arch
    mem = {
        k: v for k, v in sim.memory.snapshot().items() if (k << 3) < (1 << 40)
    }
    return tuple(arch.ints[:SHADOW_BASE]), mem


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(body=loop_body(), iterations=st.integers(min_value=3, max_value=12))
def test_mechanisms_agree_on_random_programs(body, iterations):
    source = _source(body, iterations)
    reference = _state(source, "perfect")
    for mechanism in ("traditional", "multithreaded"):
        assert _state(source, mechanism) == reference, mechanism
