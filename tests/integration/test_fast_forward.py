"""Idle-cycle fast-forward is a pure wall-clock optimization.

``MachineConfig.fast_forward`` lets :meth:`SMTCore.run` jump the clock
over provably quiet cycles.  These tests pin the bit-identity claim from
``docs/PERFORMANCE.md``: with the jump on or off, a Figure-5-style run
retires the same instructions in the same order at the same cycles, and
every simulation statistic matches exactly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.suite import build_benchmark

BENCHMARKS = ("compress", "vortex")
MECHANISMS = ("perfect", "traditional", "multithreaded", "hardware")


def run_one(bench: str, mechanism: str, fast_forward: bool):
    config = MachineConfig(
        mechanism=mechanism, idle_threads=1, fast_forward=fast_forward
    )
    sim = Simulator([build_benchmark(bench)], config)

    # Record the retirement stream (cycle, thread, pc, seq) without
    # disturbing it.
    core = sim.core
    stream: list[tuple[int, int, int, int]] = []
    inner = core._do_retire

    def spy(thread, uop, now):
        stream.append((now, uop.thread_id, uop.pc, uop.seq))
        return inner(thread, uop, now)

    core._do_retire = spy
    result = sim.run(user_insts=1_500, warmup_insts=400, max_cycles=4_000_000)
    return result, stream


class TestFastForwardEquivalence:
    @pytest.mark.parametrize("bench", BENCHMARKS)
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_identical_cycles_and_retirement_stream(self, bench, mechanism):
        on_result, on_stream = run_one(bench, mechanism, fast_forward=True)
        off_result, off_stream = run_one(bench, mechanism, fast_forward=False)

        assert on_result.cycles == off_result.cycles
        assert on_stream == off_stream, (
            f"{bench}/{mechanism}: retirement streams diverged"
        )
        # Bit-identical everything else too (TLB, caches, branches, ...).
        assert dataclasses.asdict(on_result) == dataclasses.asdict(off_result)

    def test_fast_forward_actually_skips_cycles(self):
        """Sanity: the knob is live (perfect run has idle stretches)."""
        config = MachineConfig(mechanism="perfect", fast_forward=True)
        sim = Simulator([build_benchmark("compress")], config)
        sim.run(user_insts=1_000, warmup_insts=200, max_cycles=4_000_000)
        assert sim.core.cycle > 0  # ran; equivalence above carries the claim
