"""A deterministic kitchen-sink stress test.

One program combining every stressor at once -- TLB misses across many
pages, emulated instructions, unpredictable branches (wrong paths with
speculative misses), calls/returns, FP work, stores with forwarding --
run under every mechanism, multiple idle-thread counts, and a narrow
machine.  The checksum must match the perfect-TLB machine exactly.
"""

import pytest

from repro.isa.semantics import popcount
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import make_program

BASE = 0x1000_0000
PAGES = 48

SOURCE = f"""
main:
    li   r1, {BASE}
    li   r5, 60
    li   r7, 0
    li   r10, 12345
loop:
    ; pseudo-random page probe
    mul  r10, r10, 2862933555777941757
    add  r10, r10, 3037000493
    srl  r11, r10, 40
    and  r11, r11, {(PAGES * 8192 - 8) & ~8191}
    add  r12, r1, r11
    ld   r13, 0(r12)          ; TLB pressure
    add  r13, r13, 1
    st   r13, 0(r12)          ; read-modify-write
    ld   r14, 0(r12)          ; forwarded from the store
    add  r7, r7, r14
    ; emulated instruction in the hot path
    emul r2, r10
    add  r7, r7, r2
    ; unpredictable branch with work on both sides
    and  r3, r10, 1
    mul  r3, r3, 31
    beq  r3, r0, even
    call twiddle
    jmp  next
even:
    sub  r7, r7, 1
next:
    ; FP accumulation
    itof f1, r2
    fadd f2, f2, f1
    sub  r5, r5, 1
    bne  r5, r0, loop
    ftoi r9, f2
    halt
twiddle:
    xor  r7, r7, 3
    ret
"""


def _checksums(mechanism: str, idle_threads: int = 1, **config_kw):
    sim = Simulator(
        make_program(SOURCE, regions=[(BASE, PAGES * 8192)]),
        MachineConfig(mechanism=mechanism, idle_threads=idle_threads, **config_kw),
    )
    core = sim.core
    while not core.threads[0].halted:
        core.step()
        if core.cycle > 2_000_000:
            raise AssertionError("stress program hung")
    arch = core.threads[0].arch
    return arch.read_int(7), arch.read_int(9), arch.read_fp(2)


class TestStress:
    @pytest.fixture(scope="class")
    def reference(self):
        return _checksums("perfect")

    @pytest.mark.parametrize("mechanism", ["traditional", "multithreaded",
                                            "hardware", "quickstart"])
    def test_every_mechanism_matches(self, reference, mechanism):
        assert _checksums(mechanism) == reference

    @pytest.mark.parametrize("idle", [2, 3])
    def test_more_idle_threads_match(self, reference, idle):
        assert _checksums("multithreaded", idle_threads=idle) == reference

    def test_narrow_machine_matches(self, reference):
        assert _checksums("multithreaded", width=2, window_size=32) == reference

    def test_short_pipe_matches(self, reference):
        config = MachineConfig(mechanism="multithreaded").with_pipe_depth(3)
        sim = Simulator(
            make_program(SOURCE, regions=[(BASE, PAGES * 8192)]), config
        )
        core = sim.core
        while not core.threads[0].halted:
            core.step()
            assert core.cycle <= 2_000_000
        arch = core.threads[0].arch
        assert (arch.read_int(7), arch.read_int(9), arch.read_fp(2)) == reference

    def test_spawn_predictor_matches(self, reference):
        assert _checksums(
            "multithreaded", use_spawn_predictor=True
        ) == reference
