"""Nested-exception coverage under fault injection.

The kernel below interleaves page-striding loads (DTLB misses) with
back-to-back ``emul`` traps, so ``handler_fault`` re-traps land while
another trap is already in flight and ``pte_corrupt`` forces the
page-fault (``hardexc``) path inside the miss handler -- the nested
shapes that hid the injector's back-to-back-trap bugs.  Every mechanism
must come out bit-identical to its own fault-free run, with the
pipeline sanitizer attached throughout.
"""

import pytest

from repro.faults.fuzz import arch_digest
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import make_program

DATA_BASE = 0x1000_0000
REGION = (DATA_BASE, 128 * 8192)

NESTED_KERNEL = f"""
main:
  li r10, {hex(DATA_BASE)}
  li r9, 0
  li r12, 0
  li r13, 40
loop:
  add r9, r9, 8200
  and r11, r9, 0xffff8
  add r11, r11, r10
  ld r2, 0(r11)
  emul r3, r2
  emul r4, r3
  add r3, r3, r4
  st r3, 0(r11)
  add r12, r12, 1
  blt r12, r13, loop
  halt
"""

NESTED_SPEC = (
    "seed:13,handler_fault:11,pte_corrupt:17,force_miss:23"
)

ALL_MECHANISMS = ("perfect", "traditional", "multithreaded", "hardware",
                  "quickstart")


def _run(mechanism, faults):
    program = make_program(NESTED_KERNEL, regions=[REGION])
    config = MachineConfig(mechanism=mechanism, faults=faults, sanitize=True)
    sim = Simulator(program, config)
    core = sim.core
    for _ in range(400_000):
        if all(
            t.halted
            for t in core.threads
            if t.program is not None and not t.is_exception_thread
        ):
            break
        core.step()
    else:
        raise AssertionError(f"{mechanism} did not halt under {faults!r}")
    return sim


@pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
def test_nested_faults_preserve_architectural_state(mechanism):
    clean = _run(mechanism, "")
    faulted = _run(mechanism, NESTED_SPEC)
    assert arch_digest(faulted) == arch_digest(clean)
    if mechanism != "perfect":
        counts = faulted.core.faults.counts
        assert counts["handler_fault"] > 0
        assert counts["pte_corrupt"] > 0


def test_handler_faults_never_fire_on_perfect():
    # The perfect mechanism has no handlers to fault; arming the kind
    # must stay a no-op rather than perturbing state.
    faulted = _run("perfect", NESTED_SPEC)
    assert faulted.core.faults.counts["handler_fault"] == 0


@pytest.mark.parametrize("mechanism", ALL_MECHANISMS[1:])
def test_nested_faults_match_across_mechanisms(mechanism):
    # Differential form of the same property: the faulted run of each
    # mechanism agrees with the *perfect* machine's clean digest.
    reference = arch_digest(_run("perfect", ""))
    faulted = _run(mechanism, NESTED_SPEC)
    assert arch_digest(faulted) == reference
