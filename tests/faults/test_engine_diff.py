"""Engine-diff fuzzing: the batched kernel fuzzed against the reference
kernel, plus the oracle self-test proving a skewed kernel is caught."""

import pytest

import repro.faults.fuzz as fuzz_mod
from repro.engine.core import BatchedSMTCore
from repro.faults.cli import main as fuzz_main
from repro.faults.fuzz import fuzz, make_case, run_engine_diff_case


def test_clean_engines_agree():
    result = run_engine_diff_case(
        make_case(1, length=20, iters=8), max_cycles=600_000
    )
    assert result.ok, result.divergences


def test_fuzz_engine_diff_mode_reports_itself():
    report = fuzz(
        seed=3, max_programs=1, engine_diff=True, log=lambda msg: None
    )
    assert report.ok, report.failures
    assert report.engine_diff
    assert report.to_json()["engine_diff"] is True


def test_cli_engine_diff_smoke(capsys):
    assert fuzz_main(["--engine-diff", "--programs", "1", "--quiet"]) == 0
    assert "0 failure(s)" in capsys.readouterr().out


class _SkewedCore(BatchedSMTCore):
    """A deliberately broken kernel: one phantom squash per run_to."""

    def run_to(self, watch, stop_cycle):
        done = super().run_to(watch, stop_cycle)
        self.stats.squashed += 1
        return done


def test_oracle_catches_a_skewed_kernel(monkeypatch):
    monkeypatch.setattr(
        "repro.engine.core_class", lambda name=None: _SkewedCore
    )
    result = run_engine_diff_case(
        make_case(1, length=20, iters=8), max_cycles=600_000
    )
    assert not result.ok
    divergence = result.divergences[0]
    assert divergence.reason == "engine"
    assert "sim counters differ" in divergence.detail


def test_engine_diff_counts_faults_once_per_reference_run():
    # The diff mode runs every mechanism twice, but injected-fault
    # totals must count each schedule once or reports would double.
    case = make_case(2, length=20, iters=8)
    diff = run_engine_diff_case(case, max_cycles=600_000)
    normal = fuzz_mod.run_case(case, max_cycles=600_000)
    assert diff.ok and normal.ok
    assert diff.fault_counts == normal.fault_counts
