"""Behavioural tests for the deterministic fault injector.

The contract under test: fault schedules are bit-reproducible, faults
perturb *timing* (and transient microarchitectural state) while leaving
user-visible architectural state bit-identical to a fault-free run, and
every effective injection is announced on the observability bus.
"""

import pytest

from repro.faults.config import FAULT_KINDS
from repro.faults.fuzz import arch_digest, make_case, run_program
from repro.obs.events import attach_bus
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import make_program

#: One armed clause per kind, periods small enough to fire many times
#: on the small generated programs below.
FULL_SPEC = (
    "seed:9,force_miss:30,tlb_evict:60,pte_corrupt:80,"
    "handler_fault:50,mem_delay:20:48,bp_poison:70"
)

CASE = make_case(3, length=24, iters=12)


def _run(mechanism, faults, seed_case=CASE):
    outcome = run_program(seed_case, mechanism, faults, None, 600_000)
    assert outcome.ok, (outcome.reason, outcome.detail)
    return outcome


@pytest.mark.parametrize("mechanism", ["traditional", "multithreaded",
                                       "hardware", "quickstart"])
def test_faults_preserve_architectural_state(mechanism):
    clean = _run(mechanism, "")
    faulted = _run(mechanism, FULL_SPEC)
    assert faulted.digest == clean.digest
    assert sum(faulted.fault_counts.values()) > 0


def test_fault_schedule_is_reproducible():
    first = _run("traditional", FULL_SPEC)
    second = _run("traditional", FULL_SPEC)
    assert first.fault_counts == second.fault_counts
    assert first.cycles == second.cycles
    assert first.digest == second.digest


def test_faults_actually_perturb_timing():
    clean = _run("traditional", "")
    delayed = _run("traditional", "seed:1,mem_delay:5:200")
    assert delayed.fault_counts["mem_delay"] > 0
    assert delayed.cycles > clean.cycles


def test_empty_spec_disables_the_injector():
    program = make_program(CASE.program.source, regions=CASE.program.regions)
    sim = Simulator(program, MachineConfig(mechanism="traditional", faults=""))
    assert sim.core.faults is None


def test_bad_spec_rejected_at_configuration_time():
    with pytest.raises(ValueError):
        MachineConfig(mechanism="traditional", faults="not_a_kind:5")


def test_every_effective_injection_hits_the_event_bus():
    program = make_program(CASE.program.source, regions=CASE.program.regions)
    sim = Simulator(
        program, MachineConfig(mechanism="traditional", faults=FULL_SPEC)
    )
    bus = attach_bus(sim.core)

    seen = []

    class Spy:
        def on_event(self, event):
            if event.kind == "fault":
                seen.append(event)

    bus.subscribe(Spy())
    core = sim.core
    for _ in range(600_000):
        if all(
            t.halted
            for t in core.threads
            if t.program is not None and not t.is_exception_thread
        ):
            break
        core.step()
    counts = sim.core.faults.counts
    assert sum(counts.values()) > 0
    by_kind = {kind: 0 for kind in FAULT_KINDS}
    for event in seen:
        by_kind[event.exc_type] += 1
    assert by_kind == counts
