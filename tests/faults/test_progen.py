"""The generated-program contract: deterministic, lint-clean, halting."""

import pytest

from repro.analysis.guest import analyze_source
from repro.analysis.diagnostics import Severity
from repro.faults.fuzz import make_case, run_program
from repro.faults.progen import (
    DATA_BASE,
    OFF_MASK,
    REGION_BYTES,
    generate_ops,
    generate_program,
    render_program,
)


def _errors(source):
    diags = analyze_source(source, unit="progen-test")
    return [d for d in diags if d.severity is Severity.ERROR]


@pytest.mark.parametrize("seed", range(12))
def test_generated_programs_are_lint_clean(seed):
    program = generate_program(seed)
    assert _errors(program.source) == []


def test_generation_is_deterministic():
    a = generate_program(77)
    b = generate_program(77)
    assert a.source == b.source
    assert a.ops == b.ops
    assert generate_program(78).source != a.source


def test_rendering_survives_op_deletion():
    """Shrinking deletes arbitrary ops; any subset must still render to
    a lint-clean program (skip labels are re-placed at render time)."""
    ops = generate_ops(5, 30)
    for keep in (ops[::2], ops[:5], ops[10:], []):
        source = render_program(list(keep), 5, 4)
        assert _errors(source) == []


@pytest.mark.parametrize("seed", [0, 6])
def test_generated_programs_halt(seed):
    case = make_case(seed, length=20, iters=6)
    outcome = run_program(case, "perfect", "", None, 400_000)
    assert outcome.ok, (outcome.reason, outcome.detail)


def test_region_overflows_the_dtlb():
    # The region must hold more pages than the 64-entry DTLB, or the
    # fuzzer would stop exercising capacity misses.
    assert REGION_BYTES // 8192 > 64
    assert OFF_MASK & 0x7 == 0
    assert DATA_BASE % 8192 == 0


def test_memory_ops_stay_in_region():
    """Every rendered memory operand is masked into the data region."""
    program = generate_program(11, length=48, iters=2)
    for line in program.source.splitlines():
        text = line.strip()
        if text.startswith(("ld ", "st ")):
            # Operand form is always `0(rN)`: offsets never escape the
            # masked address register.
            assert "0(r" in text
