"""Parsing tests for the ``REPRO_FAULTS`` mini-language."""

import pytest

from repro.faults.config import (
    DEFAULT_MEM_DELAY,
    FAULT_KINDS,
    FaultRule,
    parse_faults,
    splitmix64,
)


def test_empty_spec_is_falsy():
    plan = parse_faults("")
    assert not plan
    assert plan.seed == 0
    assert plan.rules == ()


def test_full_spec_parses_every_kind():
    spec = (
        "seed:42,force_miss:50,tlb_evict:70,pte_corrupt:90,"
        "handler_fault:60,mem_delay:20:64,bp_poison:100"
    )
    plan = parse_faults(spec)
    assert plan.seed == 42
    assert {rule.kind for rule in plan.rules} == set(FAULT_KINDS)
    assert plan.rule("mem_delay").arg == 64
    assert plan.rule("force_miss").period == 50
    assert plan.spec == spec


def test_mem_delay_defaults_its_arg():
    plan = parse_faults("mem_delay:25")
    assert plan.rule("mem_delay").arg == DEFAULT_MEM_DELAY


def test_whitespace_and_empty_clauses_tolerated():
    plan = parse_faults(" seed:3 , force_miss:10 ,, ")
    assert plan.seed == 3
    assert plan.rule("force_miss").period == 10


@pytest.mark.parametrize(
    "spec",
    [
        "bogus_kind:10",
        "force_miss:0",
        "force_miss:-5",
        "force_miss:ten",
        "force_miss:10,force_miss:20",  # duplicate clause
        "seed:1:2",
        "force_miss:10:3",  # argless kind given an arg
        "mem_delay:10:0",  # non-positive delay
        "force_miss",  # missing period
    ],
)
def test_malformed_specs_raise(spec):
    with pytest.raises(ValueError):
        parse_faults(spec)


def test_phase_is_deterministic_and_kind_distinct():
    rule_a = FaultRule("force_miss", 97)
    rule_b = FaultRule("tlb_evict", 97)
    assert rule_a.phase(5) == rule_a.phase(5)
    assert 0 <= rule_a.phase(5) < 97
    # Same seed and period, different kind: the salt must separate them
    # for at least one seed (collision on every seed would mean the
    # salt does nothing).
    assert any(rule_a.phase(s) != rule_b.phase(s) for s in range(16))


def test_splitmix64_reference_values():
    # Known-answer values pin the hash so schedules never drift silently.
    assert splitmix64(0) == 0xE220A8397B1DCDAF
    assert splitmix64(1) == 0x910A2DEC89025CC1
