"""Cause-aware fuzzing: the seed rotation reaches every restartable
cause, explicit ``--causes`` filters work end to end, and cause-bearing
cases stay digest-clean across the whole mechanism matrix."""

import json

import pytest

from repro.faults.cli import main as fuzz_main
from repro.faults.fuzz import (
    CAUSE_ROTATION,
    CAUSES,
    fuzz,
    make_case,
    overrides_for_causes,
    run_case,
)


class TestRotation:
    def test_rotation_reaches_every_cause(self):
        covered = set()
        for entry in CAUSE_ROTATION:
            covered.update(entry)
        # dtlb_miss and emul are always present in the base generator;
        # the rotation only needs to add the scenario causes.
        assert covered == set(CAUSES) - {"dtlb_miss", "emul"}

    def test_rotation_keeps_a_legacy_slot(self):
        # Slot 0 is the pre-scenario generator, so old seeds keep their
        # exact historical programs.
        assert CAUSE_ROTATION[0] == ()

    def test_case_causes_follow_the_seed(self):
        for seed in range(len(CAUSE_ROTATION)):
            case = make_case(seed, length=16, iters=4)
            assert case.causes == CAUSE_ROTATION[seed % len(CAUSE_ROTATION)]

    def test_explicit_causes_override_rotation(self):
        case = make_case(0, length=16, iters=4, causes=("brev",))
        assert case.causes == ("brev",)


class TestOverrides:
    def test_itlb_pressure_knob(self):
        assert overrides_for_causes(("itlb_miss",))["itlb_entries"] >= 1

    def test_alignment_knob(self):
        assert overrides_for_causes(("unaligned",)) == {"align_check": True}

    def test_no_knobs_without_causes(self):
        assert overrides_for_causes(()) == {}

    def test_case_carries_its_overrides(self):
        case = make_case(3, length=16, iters=4, causes=("itlb_miss",))
        assert case.config_overrides.get("itlb_entries") == 1


@pytest.mark.parametrize("causes", [("brev", "swint"), ("unaligned",),
                                    ("itlb_miss",)])
def test_cause_cases_are_digest_clean(causes):
    case = make_case(5, length=20, iters=6, causes=causes)
    result = run_case(case, max_cycles=600_000)
    assert result.ok, result.divergences


def test_fuzz_rejects_unknown_cause():
    with pytest.raises(ValueError):
        fuzz(seed=0, max_programs=1, causes=["bogus"], log=lambda m: None)


class TestCli:
    def test_causes_filter_round_trip(self, tmp_path, capsys):
        stats = tmp_path / "stats.json"
        status = fuzz_main(
            ["--programs", "1", "--seed", "2", "--causes", "brev,swint",
             "--stats-out", str(stats), "--quiet"]
        )
        assert status == 0
        report = json.loads(stats.read_text())
        assert report["failures"] == []
        assert report["causes"] == ["brev", "swint"]
        capsys.readouterr()

    def test_unknown_cause_is_bad_usage(self, capsys):
        assert fuzz_main(["--causes", "nope", "--programs", "1"]) == 2
        assert "nope" in capsys.readouterr().err
