"""End-to-end differential-fuzzer tests: clean machines agree, a broken
machine is caught and shrunk, artifacts land on disk."""

import json

from repro.faults.cli import main as fuzz_main
from repro.faults.fuzz import fuzz, make_case, run_case, shrink_case


def test_clean_machine_has_no_divergence():
    result = run_case(make_case(1, length=20, iters=8), max_cycles=600_000)
    assert result.ok, result.divergences


def test_lost_store_defect_is_caught_and_shrunk(tmp_path):
    artifacts = tmp_path / "artifacts"
    report = fuzz(
        seed=7,
        max_programs=4,
        artifacts=artifacts,
        defect="lost-store",
        log=lambda msg: None,
    )
    assert report.failures, "the oracle self-test defect went undetected"
    failure = report.failures[0]
    assert failure["divergences"]
    # Shrinking must actually shrink: fewer ops or fewer iterations.
    assert (
        failure["shrunken_ops"] < failure["original_ops"]
        or failure["shrunken_iters"] < failure["original_iters"]
    )
    case_dir = artifacts / f"case_{failure['seed']}"
    manifest = json.loads((case_dir / "manifest.json").read_text())
    assert manifest["defect"] == "lost-store"
    assert (case_dir / "program.s").exists()
    assert (case_dir / "shrunken.s").exists()


def test_shrunken_case_still_fails():
    case = make_case(7, length=20, iters=8)
    result = run_case(case, defect="lost-store", max_cycles=600_000)
    if result.ok:
        return  # this small slice didn't trip the defect; nothing to shrink
    shrunk, attempts = shrink_case(case, defect="lost-store",
                                   max_cycles=600_000)
    assert attempts > 0
    assert not run_case(shrunk, defect="lost-store", max_cycles=600_000).ok


def test_cli_round_trip(tmp_path, capsys):
    stats = tmp_path / "stats.json"
    status = fuzz_main(
        ["--programs", "2", "--seed", "1", "--stats-out", str(stats),
         "--quiet"]
    )
    assert status == 0
    report = json.loads(stats.read_text())
    assert report["programs"] == 2
    assert report["failures"] == []
    assert sum(report["fault_counts"].values()) > 0
    out = capsys.readouterr().out
    assert "0 failure(s)" in out


def test_cli_rejects_bad_usage(capsys):
    assert fuzz_main(["--budget", "0"]) == 2
    assert fuzz_main(["--programs", "-1"]) == 2
    capsys.readouterr()
