"""Warm cells in the parallel runner: shared warmup, hash-keyed cache,
manifest lineage."""

from __future__ import annotations

import json

import pytest

from repro.obs.manifest import validate_manifest
from repro.sim.config import MachineConfig
from repro.sim.parallel import CellSpec, ResultCache, derive_warm_cells, run_cells

MECHS = ("traditional", "multithreaded", "hardware", "quickstart")


def make_specs() -> list[CellSpec]:
    return [
        CellSpec(
            workload="compress",
            config=MachineConfig(mechanism=mech),
            user_insts=800,
            warmup_insts=400,
            max_cycles=2_000_000,
        )
        for mech in MECHS
    ]


@pytest.fixture
def env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_JOBS", "1")
    return tmp_path


def test_derive_warm_cells_shares_one_checkpoint(env):
    warm = derive_warm_cells(make_specs())
    paths = {spec.warm_from for spec in warm}
    hashes = {spec.warm_hash for spec in warm}
    assert len(paths) == 1 and None not in paths
    assert len(hashes) == 1 and None not in hashes
    assert len(list((env / "ckpt").glob("warm-*.ckpt"))) == 1


def test_warm_hash_is_part_of_the_cache_key(env):
    cold = make_specs()[0]
    warm = derive_warm_cells([cold])[0]
    assert cold.cache_token() != warm.cache_token()
    # ...but the *location* of the checkpoint is not: moving the store
    # must not invalidate cached results.
    import dataclasses

    moved = dataclasses.replace(warm, warm_from="/elsewhere/warm.ckpt")
    assert moved.cache_token() == warm.cache_token()


def test_sweep_results_carry_lineage_into_manifests(env, monkeypatch):
    monkeypatch.setenv("REPRO_WARM_CKPT", "1")
    specs = make_specs()
    results = run_cells(specs)
    hashes = {r.checkpoint["hash"] for r in results}
    assert len(hashes) == 1, "cells did not share one warm state"

    shared_hash = hashes.pop()
    cache = ResultCache()
    for spec in derive_warm_cells(specs):
        manifest = json.loads(cache.manifest_path(spec).read_text())
        assert validate_manifest(manifest) == []
        assert manifest["checkpoint"]["hash"] == shared_hash
        assert manifest["checkpoint"]["warmup_insts"] == 400


def test_warm_sweep_hits_cache_on_second_run(env, monkeypatch):
    monkeypatch.setenv("REPRO_WARM_CKPT", "1")
    first = run_cells(make_specs())
    second = run_cells(make_specs())
    assert [r.cycles for r in first] == [r.cycles for r in second]


def test_cold_runs_record_null_lineage(env):
    results = run_cells(make_specs()[:1])
    assert results[0].checkpoint is None
    cache = ResultCache()
    manifest = json.loads(cache.manifest_path(make_specs()[0]).read_text())
    assert validate_manifest(manifest) == []
    assert manifest["checkpoint"] is None
