"""The archlint snapshot rules: missing protocol and missing coverage."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.archlint import SNAPSHOT_REQUIRED, check_file, check_tree


def lint(tmp_path, source: str, rel: str = "memory/tlb.py"):
    path = tmp_path / Path(rel).name
    path.write_text(source)
    return check_file(path, Path(rel))


SNAPSHOT_CODES = ("missing-snapshot", "snapshot-coverage")


def codes(diags) -> list[str]:
    """Only the snapshot-family codes (the fixtures may also trip
    unrelated rules like missing-slots, which is not under test here)."""
    return sorted(d.code for d in diags if d.code in SNAPSHOT_CODES)


def test_class_without_protocol_is_flagged(tmp_path):
    diags = lint(
        tmp_path,
        """
class TLB:
    def __init__(self):
        self._entries = {}
""",
    )
    assert "missing-snapshot" in codes(diags)


def test_unserialized_attribute_is_flagged(tmp_path):
    diags = lint(
        tmp_path,
        """
class TLB:
    def __init__(self):
        self._entries = {}
        self._sneaky = 0

    def snapshot_state(self, ctx):
        return {"entries": list(self._entries.items())}

    def restore_state(self, state, ctx):
        self._entries = dict(state["entries"])
""",
    )
    assert codes(diags) == ["snapshot-coverage"]
    flagged = [d for d in diags if d.code == "snapshot-coverage"]
    assert "_sneaky" in flagged[0].message


def test_transient_tuple_excuses_attribute(tmp_path):
    diags = lint(
        tmp_path,
        """
class TLB:
    _SNAPSHOT_TRANSIENT = ("_sneaky",)

    def __init__(self):
        self._entries = {}
        self._sneaky = 0

    def snapshot_state(self, ctx):
        return {"entries": list(self._entries.items())}

    def restore_state(self, state, ctx):
        self._entries = dict(state["entries"])
""",
    )
    assert codes(diags) == []


def test_slots_attributes_are_checked(tmp_path):
    diags = lint(
        tmp_path,
        """
class TLB:
    __slots__ = ("_entries", "_hidden")

    def snapshot_state(self, ctx):
        return {"entries": list(self._entries.items())}

    def restore_state(self, state, ctx):
        self._entries = dict(state["entries"])
""",
    )
    assert "snapshot-coverage" in codes(diags)


def test_dataclass_introspection_counts_as_full_coverage(tmp_path):
    diags = lint(
        tmp_path,
        """
class TLB:
    def __init__(self):
        self._entries = {}
        self.other = 1

    def snapshot_state(self, ctx):
        return dataclasses.asdict(self)

    def restore_state(self, state, ctx):
        for f in dataclasses.fields(self):
            setattr(self, f.name, state[f.name])
""",
    )
    assert codes(diags) == []


def test_two_phase_protocol_is_accepted(tmp_path):
    diags = lint(
        tmp_path,
        """
class Uop:
    def __init__(self):
        self.seq = 0

    def snapshot_state(self, ctx):
        return {"seq": self.seq}

    @classmethod
    def from_state(cls, state, ctx):
        return cls()

    def link_state(self, state, ctx):
        pass
""",
        rel="pipeline/uop.py",
    )
    assert codes(diags) == []


def test_classes_outside_the_table_are_not_checked(tmp_path):
    diags = lint(
        tmp_path,
        """
class Helper:
    def __init__(self):
        self.anything = 1
""",
        rel="analysis/helper.py",
    )
    assert codes(diags) == []


def test_shipped_tree_is_clean():
    root = Path(__file__).resolve().parents[2] / "src" / "repro"
    snapshot_diags = [
        d
        for d in check_tree(root)
        if d.code in ("missing-snapshot", "snapshot-coverage")
    ]
    assert snapshot_diags == []


def test_table_names_real_modules():
    root = Path(__file__).resolve().parents[2] / "src" / "repro"
    for rel in SNAPSHOT_REQUIRED:
        assert (root / rel).exists(), f"SNAPSHOT_REQUIRED names missing {rel}"
