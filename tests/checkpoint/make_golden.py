"""Regenerate the golden snapshot fixture (tests/checkpoint/golden.ckpt).

Run after any intentional container-format change (with the matching
``FORMAT_VERSION`` bump)::

    PYTHONPATH=src python -m tests.checkpoint.make_golden
"""

from __future__ import annotations

from pathlib import Path

from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.suite import build_benchmark


def main() -> None:
    out = Path(__file__).with_name("golden.ckpt")
    sim = Simulator(
        build_benchmark("compress"), MachineConfig(mechanism="multithreaded")
    )
    sim.core.run(400, 10_000_000)
    digest = sim.save_checkpoint(out, kind="exact")
    print(f"{digest}  {out} ({out.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
