"""The committed golden snapshot: format stability across engine work.

``golden.ckpt`` is a real (small) machine snapshot committed to the
repo.  ``verify`` checks only the container -- magic, version, length,
hash, decode -- deliberately *not* the engine fingerprint, so this
fixture keeps passing as the simulator evolves; it fails only if the
container format itself changes, which is exactly when
``FORMAT_VERSION`` must be bumped and the fixture regenerated
(``python -m tests.checkpoint.make_golden``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.checkpoint import (
    CheckpointIntegrityError,
    read_checkpoint,
    verify_checkpoint,
)

GOLDEN = Path(__file__).with_name("golden.ckpt")


def test_golden_exists():
    assert GOLDEN.exists(), "regenerate with python -m tests.checkpoint.make_golden"


def test_golden_verifies():
    header = verify_checkpoint(GOLDEN)
    assert header["meta"]["kind"] == "exact"
    assert header["sha256"]


def test_golden_body_has_every_state_layer():
    _, body = read_checkpoint(GOLDEN)
    for layer in (
        "memory",
        "page_table",
        "dtlb",
        "hierarchy",
        "bpu",
        "core",
        "mechanism",
        "uops",
        "instances",
        "config",
        "engine",
    ):
        assert layer in body, f"golden checkpoint lost the {layer} layer"


def test_corrupted_golden_copy_fails_verification(tmp_path):
    raw = bytearray(GOLDEN.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    bad = tmp_path / "bad.ckpt"
    bad.write_bytes(bytes(raw))
    with pytest.raises(CheckpointIntegrityError):
        verify_checkpoint(bad)
