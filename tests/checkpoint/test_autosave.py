"""Autosave + resume: an interrupted run finishes with identical stats."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.checkpoint import run_with_autosave
from repro.checkpoint.format import CheckpointFormatError, write_checkpoint
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.suite import build_benchmark

USER, WARMUP, EVERY = 1500, 600, 400


def make(mechanism: str = "multithreaded") -> Simulator:
    return Simulator(build_benchmark("compress"), MachineConfig(mechanism=mechanism))


def fingerprint(result) -> str:
    data = dataclasses.asdict(result)
    data.pop("checkpoint", None)
    return json.dumps(data, sort_keys=True, default=str)


class _Die(Exception):
    pass


def test_uninterrupted_autosave_matches_straight_run(tmp_path):
    straight = make().run(user_insts=USER, warmup_insts=WARMUP)
    saved = run_with_autosave(
        make(),
        tmp_path / "a.ckpt",
        user_insts=USER,
        warmup_insts=WARMUP,
        autosave_every=EVERY,
    )
    assert fingerprint(straight) == fingerprint(saved)


@pytest.mark.parametrize("die_after", [1, 2, 3])
def test_killed_run_resumes_to_identical_stats(tmp_path, die_after):
    """Kill after the Nth autosave (any N: mid-warmup or mid-measure);
    the resumed run's final result is bit-identical to never dying."""
    straight = make().run(user_insts=USER, warmup_insts=WARMUP)

    path = tmp_path / "a.ckpt"
    count = 0

    def killer(_cycle: int) -> None:
        nonlocal count
        count += 1
        if count >= die_after:
            raise _Die

    with pytest.raises(_Die):
        run_with_autosave(
            make(),
            path,
            user_insts=USER,
            warmup_insts=WARMUP,
            autosave_every=EVERY,
            on_autosave=killer,
        )
    # Resume in a brand-new machine; saved run parameters are
    # authoritative, so deliberately pass garbage ones here.
    resumed = run_with_autosave(
        make(), path, user_insts=1, warmup_insts=99999, autosave_every=EVERY
    )
    assert fingerprint(straight) == fingerprint(resumed)


def test_no_warmup_baseline_matches_simulator_run(tmp_path):
    straight = make().run(user_insts=USER, warmup_insts=0)
    saved = run_with_autosave(
        make(),
        tmp_path / "a.ckpt",
        user_insts=USER,
        warmup_insts=0,
        autosave_every=EVERY,
    )
    assert fingerprint(straight) == fingerprint(saved)


def test_autosave_callback_sees_progress(tmp_path):
    cycles: list[int] = []
    run_with_autosave(
        make(),
        tmp_path / "a.ckpt",
        user_insts=USER,
        warmup_insts=WARMUP,
        autosave_every=EVERY,
        on_autosave=cycles.append,
    )
    assert cycles, "run too short to autosave even once"
    assert cycles == sorted(cycles)


def test_resume_rejects_non_autosave_checkpoint(tmp_path):
    path = tmp_path / "a.ckpt"
    sim = make()
    sim.core.run(300, 10_000_000)
    sim.save_checkpoint(path)  # an exact checkpoint, but not an autosave
    with pytest.raises(CheckpointFormatError, match="not an autosave"):
        run_with_autosave(make(), path, user_insts=USER, warmup_insts=WARMUP)


def test_fresh_run_ignores_existing_file_when_resume_off(tmp_path):
    path = tmp_path / "a.ckpt"
    write_checkpoint(path, {"not": "machine state"}, meta={"kind": "junk"})
    straight = make().run(user_insts=USER, warmup_insts=WARMUP)
    fresh = run_with_autosave(
        make(),
        path,
        user_insts=USER,
        warmup_insts=WARMUP,
        autosave_every=EVERY,
        resume=False,
    )
    assert fingerprint(straight) == fingerprint(fresh)
