"""The on-disk container: round-trips, integrity, version policy."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.checkpoint.format import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointFormatError,
    CheckpointIntegrityError,
    CheckpointVersionError,
    read_checkpoint,
    read_meta,
    verify_checkpoint,
    write_checkpoint,
)


BODY = {"cycle": 42, "memory": {"pages": [[0, "abcd"]]}, "z": None}


def test_round_trip(tmp_path):
    path = tmp_path / "a.ckpt"
    digest = write_checkpoint(path, BODY, meta={"kind": "test"})
    header, body = read_checkpoint(path)
    assert header["magic"] == MAGIC
    assert header["version"] == FORMAT_VERSION
    assert header["sha256"] == digest
    assert header["meta"] == {"kind": "test"}
    assert body == BODY


def test_hash_is_stable_identity(tmp_path):
    """The same body always produces the same checkpoint hash."""
    d1 = write_checkpoint(tmp_path / "a.ckpt", BODY)
    d2 = write_checkpoint(tmp_path / "b.ckpt", dict(reversed(BODY.items())))
    d3 = write_checkpoint(tmp_path / "c.ckpt", {**BODY, "cycle": 43})
    assert d1 == d2  # canonical JSON: key order cannot matter
    assert d1 != d3


def test_read_meta_does_not_decompress(tmp_path):
    path = tmp_path / "a.ckpt"
    write_checkpoint(path, BODY, meta={"cycle": 7})
    # Corrupt the body; the header must still read fine.
    raw = path.read_bytes()
    newline = raw.find(b"\n")
    path.write_bytes(raw[: newline + 1] + b"\x00" * (len(raw) - newline - 1))
    assert read_meta(path)["meta"] == {"cycle": 7}


def test_truncated_body_rejected(tmp_path):
    path = tmp_path / "a.ckpt"
    write_checkpoint(path, BODY)
    raw = path.read_bytes()
    path.write_bytes(raw[:-5])
    with pytest.raises(CheckpointIntegrityError, match="truncated"):
        read_checkpoint(path)
    with pytest.raises(CheckpointIntegrityError):
        verify_checkpoint(path)


def test_corrupted_body_rejected(tmp_path):
    path = tmp_path / "a.ckpt"
    write_checkpoint(path, BODY)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF  # flip bits without changing the length
    path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointIntegrityError, match="does not match"):
        read_checkpoint(path)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "a.ckpt"
    path.write_bytes(b'{"magic": "not-a-ckpt", "version": 1}\n')
    with pytest.raises(CheckpointFormatError, match="not a repro-ckpt"):
        read_meta(path)


def test_not_json_header_rejected(tmp_path):
    path = tmp_path / "a.ckpt"
    path.write_bytes(b"\x89PNG\r\n\x1a\n")
    with pytest.raises(CheckpointFormatError):
        read_meta(path)


def test_missing_header_line_rejected(tmp_path):
    path = tmp_path / "a.ckpt"
    path.write_bytes(b"no newline anywhere")
    with pytest.raises(CheckpointFormatError, match="header"):
        read_meta(path)


def test_future_version_rejected_not_migrated(tmp_path):
    path = tmp_path / "a.ckpt"
    write_checkpoint(path, BODY)
    raw = path.read_bytes()
    newline = raw.find(b"\n")
    header = json.loads(raw[:newline])
    header["version"] = FORMAT_VERSION + 1
    path.write_bytes(json.dumps(header).encode() + raw[newline:])
    with pytest.raises(CheckpointVersionError, match="regenerate"):
        read_meta(path)


def test_non_dict_body_rejected(tmp_path):
    import hashlib

    payload = zlib.compress(b"[1,2,3]")
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "body_bytes": len(payload),
        "meta": {},
    }
    path = tmp_path / "a.ckpt"
    path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
    with pytest.raises(CheckpointFormatError, match="not an object"):
        read_checkpoint(path)


def test_write_is_atomic(tmp_path):
    """No temp droppings, and a same-name overwrite is complete."""
    path = tmp_path / "a.ckpt"
    write_checkpoint(path, BODY)
    write_checkpoint(path, {**BODY, "cycle": 99})
    assert [p.name for p in tmp_path.iterdir()] == ["a.ckpt"]
    _, body = read_checkpoint(path)
    assert body["cycle"] == 99


def test_nan_rejected_at_write_time(tmp_path):
    with pytest.raises(ValueError):
        write_checkpoint(tmp_path / "a.ckpt", {"x": float("nan")})
