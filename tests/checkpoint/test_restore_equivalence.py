"""The headline invariant: restore-then-run is bit-identical to
straight-through for every mechanism.

Three simulators per mechanism:

* ``s0`` runs straight through (no checkpoint code touched);
* ``s1`` saves a checkpoint mid-run and keeps going -- proving capture
  is a pure read that perturbs nothing;
* ``s2`` is a fresh machine restored from ``s1``'s checkpoint, then run
  the same distance -- proving restore reproduces the machine exactly.

``s0 == s1`` and ``s1 == s2``, compared over the *complete* result
fingerprint (every counter of every component), is the invariant.  A
subprocess variant repeats the check with the restore in a genuinely
fresh interpreter, so no in-process leftovers can mask a hole in the
snapshot.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys

import pytest

from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.suite import build_benchmark

MECHANISMS = ("traditional", "multithreaded", "hardware", "quickstart", "perfect")

PHASE_A = 800  # user insts before the snapshot
PHASE_B = 800  # user insts after it


def fingerprint(sim: Simulator) -> str:
    """Every counter the machine produced, as one canonical string."""
    result = dataclasses.asdict(sim.result())
    result.pop("checkpoint", None)  # lineage differs by construction
    return json.dumps(result, sort_keys=True, default=str)


def make(mechanism: str) -> Simulator:
    return Simulator(build_benchmark("compress"), MachineConfig(mechanism=mechanism))


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_restore_then_run_bit_identical(mechanism, tmp_path):
    path = tmp_path / "mid.ckpt"

    s0 = make(mechanism)
    s0.core.run(PHASE_A, 10_000_000)
    s0.core.run(PHASE_B, 10_000_000)

    s1 = make(mechanism)
    s1.core.run(PHASE_A, 10_000_000)
    s1.save_checkpoint(path)
    s1.core.run(PHASE_B, 10_000_000)

    s2 = make(mechanism)
    s2.restore_checkpoint(path)
    s2.core.run(PHASE_B, 10_000_000)

    assert fingerprint(s0) == fingerprint(s1), "capture perturbed the run"
    assert fingerprint(s1) == fingerprint(s2), "restore diverged from straight-through"


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_restore_into_fresh_process(mechanism, tmp_path):
    """Same invariant with the restore side in a brand-new interpreter."""
    path = tmp_path / "mid.ckpt"

    s1 = make(mechanism)
    s1.core.run(PHASE_A, 10_000_000)
    s1.save_checkpoint(path)
    s1.core.run(PHASE_B, 10_000_000)
    expected = fingerprint(s1)

    script = f"""
from tests.checkpoint.test_restore_equivalence import make, fingerprint
s2 = make({mechanism!r})
s2.restore_checkpoint({json.dumps(str(path))})
s2.core.run({PHASE_B}, 10_000_000)
print(fingerprint(s2))
"""
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=str(_repo_root()),
        env=_env_with_src(),
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip().splitlines()[-1] == expected


def _repo_root():
    from pathlib import Path

    return Path(__file__).resolve().parents[2]


def _env_with_src() -> dict:
    import os

    env = dict(os.environ)
    root = _repo_root()
    env["PYTHONPATH"] = os.pathsep.join(
        [str(root / "src"), str(root), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return env


def test_snapshot_refused_mid_step():
    """Snapshots are only legal at step boundaries; mid-step state
    (the transient execution heap) must never leak into a file."""
    sim = make("traditional")
    sim.core.run(200, 10_000_000)
    sim.core._exec_heap = []  # simulate being inside step()
    with pytest.raises(RuntimeError, match="between step"):
        sim.core.snapshot_state(None)
    sim.core._exec_heap = None


def test_restore_rejects_wrong_thread_count(tmp_path):
    path = tmp_path / "a.ckpt"
    sim = make("traditional")
    sim.core.run(200, 10_000_000)
    sim.save_checkpoint(path)

    other = Simulator(
        build_benchmark("compress"),
        MachineConfig(mechanism="traditional", idle_threads=5),
    )
    from repro.checkpoint.format import CheckpointError

    with pytest.raises((CheckpointError, ValueError)):
        other.restore_checkpoint(path)
