"""The repro-ckpt CLI: save/inspect/verify/restore/run/resume."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checkpoint.cli import main

REPO = Path(__file__).resolve().parents[2]


def run_cli(*argv: str, capsys) -> tuple[int, str]:
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


@pytest.fixture
def ckpt_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "store"))
    return tmp_path


def test_save_then_verify_then_inspect(ckpt_env, capsys):
    out_path = ckpt_env / "warm.ckpt"
    code, out = run_cli(
        "save", "--workload", "compress", "--warmup", "400",
        "--out", str(out_path), capsys=capsys,
    )
    assert code == 0
    digest = out.split()[0]
    assert out_path.exists()

    code, out = run_cli("verify", str(out_path), capsys=capsys)
    assert code == 0
    assert "OK" in out and "kind=warm" in out

    code, out = run_cli("inspect", str(out_path), capsys=capsys)
    assert code == 0
    header = json.loads(out)
    assert header["sha256"] == digest
    assert header["meta"]["workload"] == "compress"
    assert header["meta"]["warmup_insts"] == 400


def test_verify_fails_on_corruption(ckpt_env, capsys):
    out_path = ckpt_env / "warm.ckpt"
    run_cli("save", "--workload", "compress", "--warmup", "300",
            "--out", str(out_path), capsys=capsys)
    raw = bytearray(out_path.read_bytes())
    raw[-1] ^= 0xFF
    out_path.write_bytes(bytes(raw))
    assert main(["verify", str(out_path)]) == 2


def test_restore_attaches_mechanism_to_warm_state(ckpt_env, capsys):
    out_path = ckpt_env / "warm.ckpt"
    run_cli("save", "--workload", "compress", "--warmup", "400",
            "--out", str(out_path), capsys=capsys)
    code, out = run_cli(
        "restore", str(out_path), "--mechanism", "hardware",
        "--user-insts", "500", "--json", capsys=capsys,
    )
    assert code == 0
    summary = json.loads(out)
    assert summary["mechanism"] == "hardware"
    assert summary["retired_user"] >= 500
    assert summary["checkpoint"]["kind"] == "warm"


def test_run_die_after_then_resume_matches_straight(tmp_path):
    """The CI crash-resume scenario, end to end through real processes:
    a run killed mid-flight (hard exit, no cleanup) resumes from its
    autosave and finishes with stats identical to an uninterrupted run."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    common = [
        sys.executable, "-m", "repro.checkpoint", "run",
        "--workload", "compress", "--mechanism", "multithreaded",
        "--user-insts", "1500", "--warmup", "600",
        "--autosave-every", "400", "--json",
    ]

    straight = subprocess.run(
        [*common, "--out", str(tmp_path / "straight.ckpt"), "--fresh"],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert straight.returncode == 0, straight.stderr

    crashed = subprocess.run(
        [*common, "--out", str(tmp_path / "crash.ckpt"), "--fresh",
         "--die-after", "2"],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert crashed.returncode == 3, crashed.stderr  # died as instructed

    resumed = subprocess.run(
        [sys.executable, "-m", "repro.checkpoint", "resume",
         str(tmp_path / "crash.ckpt"), "--json"],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert resumed.returncode == 0, resumed.stderr

    expect = json.loads(straight.stdout.strip().splitlines()[-1])
    got = json.loads(resumed.stdout.strip().splitlines()[-1])
    expect.pop("checkpoint"), got.pop("checkpoint")
    assert got == expect


def test_resume_rejects_non_autosave(ckpt_env, capsys):
    out_path = ckpt_env / "warm.ckpt"
    run_cli("save", "--workload", "compress", "--warmup", "300",
            "--out", str(out_path), capsys=capsys)
    assert main(["resume", str(out_path)]) == 2
