"""Warm checkpoints: one warmup shared by every mechanism."""

from __future__ import annotations

import os
import stat

import pytest

from repro.checkpoint import (
    attach_warm,
    checkpoint_dir,
    ensure_warm_checkpoint,
    read_meta,
)
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.suite import build_benchmark

MECHANISMS = ("traditional", "multithreaded", "hardware", "quickstart", "perfect")


@pytest.fixture
def ckpt_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
    return tmp_path / "ckpt"


def test_ensure_builds_once_then_reuses(ckpt_dir):
    config = MachineConfig(mechanism="multithreaded")
    path1, hash1 = ensure_warm_checkpoint("compress", 500, config)
    mtime = path1.stat().st_mtime_ns
    path2, hash2 = ensure_warm_checkpoint("compress", 500, config)
    assert (path1, hash1) == (path2, hash2)
    assert path1.stat().st_mtime_ns == mtime  # not rebuilt


def test_warm_token_is_mechanism_independent(ckpt_dir):
    """Every mechanism in a sweep family maps to the same warm file."""
    paths = {
        ensure_warm_checkpoint("compress", 500, MachineConfig(mechanism=m))[0]
        for m in MECHANISMS
    }
    assert len(paths) == 1


def test_stale_engine_is_rebuilt(ckpt_dir):
    config = MachineConfig(mechanism="traditional")
    path, digest = ensure_warm_checkpoint("compress", 500, config)
    # Forge a file claiming a different engine at the same path.
    from repro.checkpoint.format import read_checkpoint, write_checkpoint

    header, body = read_checkpoint(path)
    meta = dict(header["meta"], engine="0000000000000000")
    write_checkpoint(path, body, meta=meta)
    path2, digest2 = ensure_warm_checkpoint("compress", 500, config)
    assert path2 == path
    assert read_meta(path)["meta"]["engine"] != "0000000000000000"
    # The rebuilt file is a valid warm checkpoint under the real engine.
    # (Its content hash may differ from the first build: exception
    # instance IDs come from a process-wide allocator, so only a fresh
    # process reproduces a byte-identical warm file.)
    from repro.checkpoint.format import verify_checkpoint

    assert verify_checkpoint(path)["sha256"] == digest2


def test_quiesce_leaves_only_architectural_state(ckpt_dir):
    sim = Simulator(build_benchmark("compress"), MachineConfig(mechanism="multithreaded"))
    sim.core.run(500, 10_000_000)
    sim.quiesce()
    assert len(sim.core.window) == 0
    for thread in sim.core.threads:
        assert not thread.rob
    # Quiesce costs zero simulated time.
    cycle = sim.core.cycle
    sim.quiesce()
    assert sim.core.cycle == cycle


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_every_mechanism_attaches_to_shared_warm_state(mechanism, ckpt_dir):
    config = MachineConfig(mechanism=mechanism)
    path, digest = ensure_warm_checkpoint("compress", 500, config)
    sim = Simulator(build_benchmark("compress"), config)
    attach_warm(sim, path)
    assert sim.checkpoint_lineage == {
        "hash": digest,
        "kind": "warm",
        "warmup_insts": 500,
    }
    since = (
        sim.core.cycle,
        sim.mechanism.stats.committed_fills if sim.mechanism else 0,
        sim.core.stats.retired_user,
    )
    sim.core.run(600, 10_000_000)
    result = sim.result(since=since)
    assert result.retired_user >= 600
    assert result.checkpoint["hash"] == digest


def test_warm_restores_identical_tlb_state_across_mechanisms(ckpt_dir):
    """The point of warm sharing: mechanisms start from the *same*
    warmed TLB/cache contents, so fill counts can only differ by their
    own behaviour, not by warmup luck."""
    config = MachineConfig(mechanism="traditional")
    path, _ = ensure_warm_checkpoint("compress", 500, config)
    contents = []
    for mechanism in ("traditional", "multithreaded", "hardware"):
        sim = Simulator(
            build_benchmark("compress"), MachineConfig(mechanism=mechanism)
        )
        attach_warm(sim, path)
        contents.append(sorted(sim.dtlb._entries))
    assert contents[0] == contents[1] == contents[2]


# -- REPRO_CKPT_DIR validation (mirrors the REPRO_JOBS contract) -------


class TestCheckpointDirEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
        assert checkpoint_dir().name == "repro-ckpt"

    def test_blank_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_DIR", "   ")
        assert checkpoint_dir().name == "repro-ckpt"

    def test_explicit_dir_is_created(self, tmp_path, monkeypatch):
        target = tmp_path / "deep" / "nest"
        monkeypatch.setenv("REPRO_CKPT_DIR", str(target))
        assert checkpoint_dir() == target
        assert target.is_dir()

    def test_non_directory_rejected(self, tmp_path, monkeypatch):
        target = tmp_path / "afile"
        target.write_text("not a dir")
        monkeypatch.setenv("REPRO_CKPT_DIR", str(target))
        with pytest.raises(ValueError, match="REPRO_CKPT_DIR.*non-directory"):
            checkpoint_dir()

    def test_uncreatable_path_rejected(self, tmp_path, monkeypatch):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        monkeypatch.setenv("REPRO_CKPT_DIR", str(blocker / "child"))
        with pytest.raises(ValueError, match="REPRO_CKPT_DIR.*not a usable"):
            checkpoint_dir()

    @pytest.mark.skipif(os.geteuid() == 0, reason="root ignores modes")
    def test_unwritable_dir_rejected(self, tmp_path, monkeypatch):
        target = tmp_path / "ro"
        target.mkdir()
        target.chmod(stat.S_IRUSR | stat.S_IXUSR)
        monkeypatch.setenv("REPRO_CKPT_DIR", str(target))
        try:
            with pytest.raises(ValueError, match="REPRO_CKPT_DIR.*not writable"):
                checkpoint_dir()
        finally:
            target.chmod(stat.S_IRWXU)
