"""The persistent job queue: claims, journal replay, kill -9 resume."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.serve.queue import JobError, JobQueue
from repro.serve.service import spec_to_dict
from tests.serve.helpers import make_grid


def wire_cells() -> list[dict]:
    return [spec_to_dict(spec) for spec in make_grid()]


def dead_pid() -> int:
    """A pid guaranteed dead: a child that already exited."""
    proc = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    return int(proc.stdout.strip())


class TestSubmitLoad:
    def test_round_trip(self, tmp_path):
        queue = JobQueue(tmp_path)
        cells = wire_cells()
        job_id = queue.submit(cells, {"include_results": False})
        state = queue.load(job_id)
        assert state.cells == cells
        assert state.options == {"include_results": False}
        assert state.pending == list(range(len(cells)))
        assert not state.complete
        assert state.duplicate_done == 0

    def test_status_dict_shape(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        status = queue.load(job_id).status_dict()
        assert status["kind"] == "repro-serve-job"
        assert status["cells"] == 4
        assert status["done"] == 0
        assert status["pending"] == 4
        assert status["complete"] is False

    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(JobError):
            JobQueue(tmp_path).load("no-such-job")

    def test_half_submitted_job_is_invisible(self, tmp_path):
        """A crash before the job.json rename leaves nothing listed."""
        queue = JobQueue(tmp_path)
        job_dir = tmp_path / "deadbeef00000000"
        job_dir.mkdir()
        (job_dir / "job.json.tmp.99999").write_text("{}")
        assert queue.jobs() == []

    def test_jobs_lists_submitted(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = {queue.submit(wire_cells()) for _ in range(3)}
        assert set(queue.jobs()) == ids


class TestClaims:
    def test_duplicate_claim_rejected(self, tmp_path):
        """The second claimant loses while the first holder is alive --
        this is what stops two drainers running the same cell."""
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        assert queue.claim(job_id, 0) is True
        assert queue.claim(job_id, 0) is False

    def test_release_reopens_the_claim(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        assert queue.claim(job_id, 0)
        queue.release(job_id, 0)
        assert queue.claim(job_id, 0)

    def test_dead_holders_claim_is_broken(self, tmp_path):
        """kill -9 mid-execution: the claim names a dead pid, so a
        resuming drainer takes it over."""
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        claim = tmp_path / job_id / "claims" / "0.claim"
        claim.write_text(json.dumps({"pid": dead_pid(), "claimed": 0}))
        assert queue.claim(job_id, 0) is True

    def test_garbage_claim_is_broken(self, tmp_path):
        """kill -9 can only leave garbage in a claim if the writer died
        before its fsync -- which also means the writer is gone."""
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        claim = tmp_path / job_id / "claims" / "0.claim"
        claim.write_bytes(b"\x00partial")
        assert queue.claim(job_id, 0) is True

    def test_kill_mid_claim_leaves_only_a_prunable_tmp(self, tmp_path):
        """A writer killed between tmp-write and link leaves a
        pid-suffixed tmp; the next claimant prunes it and wins."""
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        claims = tmp_path / job_id / "claims"
        orphan = claims / f"0.tmp.{dead_pid()}"
        orphan.write_text(json.dumps({"pid": 12345}))
        assert queue.claim(job_id, 0) is True
        assert not orphan.exists()

    def test_steal_goes_through_a_tombstone_rename(self, tmp_path):
        """Breaking a dead holder's claim renames it away (atomic, one
        winner) rather than unlinking it -- unlink+link would let two
        racing stealers both believe they hold the cell."""
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        claim = tmp_path / job_id / "claims" / "0.claim"
        claim.write_text(json.dumps({"pid": dead_pid(), "claimed": 0}))
        assert queue.claim(job_id, 0) is True
        # The fresh claim names the live stealer, and no tombstone or
        # temp litter survives the steal.
        holder = json.loads(claim.read_text())
        assert holder["pid"] == os.getpid()
        leftovers = list(claim.parent.glob("*.stale.*"))
        leftovers += list(claim.parent.glob("*.tmp.*"))
        assert leftovers == []

    def test_orphan_steal_tombstone_is_pruned(self, tmp_path):
        """A stealer killed between its rename and unlink leaves a
        pid-suffixed tombstone; the next claimant prunes it and the
        slot claims clean."""
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        claims = tmp_path / job_id / "claims"
        tombstone = claims / f"0.claim.stale.{dead_pid()}"
        tombstone.write_text(json.dumps({"pid": 12345}))
        assert queue.claim(job_id, 0) is True
        assert not tombstone.exists()


class TestJournal:
    def test_mark_done_releases_and_records(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        assert queue.claim(job_id, 1)
        queue.mark_done(job_id, 1, "a" * 40)
        state = queue.load(job_id)
        assert state.done == {1: "a" * 40}
        assert 1 not in state.pending
        # The claim is gone: the slot could be claimed again (replay
        # makes that harmless, but it must not deadlock).
        assert queue.claim(job_id, 1)

    def test_torn_tail_is_ignored(self, tmp_path):
        """A crash mid-append tears the last journal line; replay
        treats the cell as not done instead of failing the job."""
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        queue.mark_done(job_id, 0, "a" * 40)
        journal = tmp_path / job_id / "journal.ndjson"
        with journal.open("a") as fh:
            fh.write('{"done": 1, "ke')  # torn mid-write
        state = queue.load(job_id)
        assert state.done == {0: "a" * 40}
        assert 1 in state.pending
        assert state.duplicate_done == 0

    def test_duplicate_journal_lines_are_counted_first_wins(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit(wire_cells())
        queue.mark_done(job_id, 0, "a" * 40)
        queue.mark_done(job_id, 0, "b" * 40)
        state = queue.load(job_id)
        assert state.done[0] == "a" * 40
        assert state.duplicate_done == 1


class TestRestartResume:
    def test_restart_resume_golden(self, tmp_path):
        """The resume contract end to end, queue edition: submit, do
        half the work, 'crash' (a fresh JobQueue over the same
        directory, one cell still claimed by a dead pid), and verify
        the survivor sees exactly the remaining work -- nothing lost,
        nothing duplicated."""
        cells = wire_cells()
        first = JobQueue(tmp_path)
        job_id = first.submit(cells)
        assert first.claim(job_id, 0)
        first.mark_done(job_id, 0, "0" * 40)
        assert first.claim(job_id, 1)
        first.mark_done(job_id, 1, "1" * 40)
        # Cell 2 was claimed but never finished; fake its holder dying.
        claim = tmp_path / job_id / "claims" / "2.claim"
        claim.write_text(json.dumps({"pid": dead_pid(), "claimed": 0}))

        survivor = JobQueue(tmp_path)
        state = survivor.load(job_id)
        assert state.done == {0: "0" * 40, 1: "1" * 40}
        assert state.pending == [2, 3]
        assert state.duplicate_done == 0
        # The dead holder's claim breaks; the fresh cell claims clean.
        assert survivor.claim(job_id, 2)
        assert survivor.claim(job_id, 3)
        survivor.mark_done(job_id, 2, "2" * 40)
        survivor.mark_done(job_id, 3, "3" * 40)
        final = survivor.load(job_id)
        assert final.complete
        assert final.duplicate_done == 0
