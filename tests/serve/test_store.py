"""The content-addressed store: keys, counters, LRU eviction."""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time

from repro.obs.manifest import validate_manifest
from repro.serve.store import ContentStore, StoreStats
from repro.sim.parallel import ResultCache, run_cell

from tests.serve.helpers import make_spec


def put_cells(store: ContentStore, specs) -> list:
    """Simulate each spec once and publish it (tiny cells, one result
    reused is not enough here -- eviction tests need distinct keys)."""
    results = [run_cell(spec) for spec in specs]
    for spec, result in zip(specs, results):
        store.put(spec, result)
    return results


class TestKeys:
    def test_key_is_the_cache_address(self, tmp_path):
        """The store's content address is exactly the ResultCache file
        stem -- the two layers share one on-disk cache."""
        store = ContentStore(tmp_path)
        plain = ResultCache(tmp_path)
        spec = make_spec()
        assert store.key(spec) == plain._path(spec).stem
        assert store.key(spec) == store.key(make_spec())  # stable

    def test_distinct_cells_get_distinct_keys(self, tmp_path):
        store = ContentStore(tmp_path)
        keys = {
            store.key(make_spec()),
            store.key(make_spec(mechanism="multithreaded")),
            store.key(make_spec(workload="murphi")),
            store.key(make_spec(user_insts=301)),
        }
        assert len(keys) == 4

    def test_interoperates_with_plain_result_cache(self, tmp_path):
        """A cell published through ResultCache is a store hit, and
        vice versa: they are the same cache."""
        spec = make_spec()
        result = run_cell(spec)
        ResultCache(tmp_path).put(spec, result)
        store = ContentStore(tmp_path)
        hit = store.get(spec)
        assert hit is not None
        assert dataclasses.asdict(hit) == dataclasses.asdict(result)
        assert store.stats.hits == 1


class TestCounters:
    def test_miss_then_put_then_hit(self, tmp_path):
        store = ContentStore(tmp_path)
        spec = make_spec()
        assert store.get(spec) is None
        result = run_cell(spec)
        store.put(spec, result)
        assert store.get(spec) is not None
        assert store.stats == StoreStats(hits=1, misses=1, puts=1)

    def test_stats_dict_is_manifest_safe(self, tmp_path):
        store = ContentStore(tmp_path, max_entries=8, max_bytes=1 << 20)
        stats = store.stats_dict()
        assert all(isinstance(v, int) and v >= 0 for v in stats.values())
        assert stats["max_entries"] == 8
        assert stats["max_bytes"] == 1 << 20

    def test_manifest_embeds_valid_cache_block(self, tmp_path):
        """Every manifest the store writes carries its counters and
        still validates against the manifest schema."""
        store = ContentStore(tmp_path)
        spec = make_spec()
        put_cells(store, [spec])
        manifest = json.loads(store.manifest_path(spec).read_text())
        assert validate_manifest(manifest) == []
        assert manifest["cache"]["puts"] == 1

    def test_disabled_cache_stores_nothing(self, tmp_path, monkeypatch):
        """REPRO_CACHE=0 gates the store itself (inherited behaviour):
        puts are dropped and gets miss, even on an explicit instance."""
        monkeypatch.setenv("REPRO_CACHE", "0")
        store = ContentStore(tmp_path)
        spec = make_spec()
        store.put(spec, run_cell(spec))
        assert list(tmp_path.glob("*.pkl")) == []
        assert store.get(spec) is None


class TestEviction:
    def test_entry_bound_evicts_least_recently_used(self, tmp_path):
        store = ContentStore(tmp_path, max_entries=2, max_bytes=0)
        a = make_spec(user_insts=201)
        b = make_spec(user_insts=202)
        c = make_spec(user_insts=203)
        put_cells(store, [a, b])
        store.get(a)  # a is now more recently used than b
        put_cells(store, [c])
        names = {p.stem for p in store.entries()}
        assert names == {store.key(a), store.key(c)}, "b was the LRU victim"
        assert store.stats.evictions == 1
        # The victim's manifest went with it.
        assert not store.manifest_path(b).exists()
        assert store.manifest_path(a).exists()

    def test_byte_bound_evicts(self, tmp_path):
        store = ContentStore(tmp_path, max_entries=0, max_bytes=1)
        put_cells(store, [make_spec(user_insts=201)])
        # One pickle is already over a 1-byte budget: evicted at once.
        assert store.entries() == []
        assert store.stats.evictions == 1

    def test_foreign_entries_are_evicted_first(self, tmp_path):
        """Files this process never touched (other processes' cells)
        are the first victims, oldest mtime first."""
        store = ContentStore(tmp_path, max_entries=2, max_bytes=0)
        spec = make_spec(user_insts=201)
        result = put_cells(store, [spec])[0]
        # Two foreign entries, published by "another process".
        other = ResultCache(tmp_path)
        foreign_old = make_spec(user_insts=202)
        foreign_new = make_spec(user_insts=203)
        other.put(foreign_old, result)
        other.put(foreign_new, result)
        past = time.time() - 3600
        os.utime(tmp_path / f"{store.key(foreign_old)}.pkl", (past, past))
        # Publishing one more cell pushes the store over budget by two;
        # both victims must be foreign, the oldest first.
        put_cells(store, [make_spec(user_insts=204)])
        names = {p.stem for p in store.entries()}
        assert store.key(foreign_old) not in names
        assert store.key(foreign_new) not in names
        assert store.key(spec) in names
        assert store.stats.evictions == 2

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = ContentStore(tmp_path, max_entries=0, max_bytes=0)
        put_cells(store, [make_spec(user_insts=n) for n in (201, 202, 203)])
        assert len(store.entries()) == 3
        assert store.stats.evictions == 0


class TestPutRaw:
    """Handoff payload verification: the key hashes the spec, not the
    bytes, so put_raw must vouch for the payload itself."""

    KEY = "ab" * 20

    def test_verified_round_trip(self, tmp_path):
        store = ContentStore(tmp_path)
        data = pickle.dumps(run_cell(make_spec()))
        digest = hashlib.sha256(data).hexdigest()
        assert store.put_raw(self.KEY, data, digest) is True
        assert store.read_raw(self.KEY) == data
        assert store.stats.puts == 1

    def test_wrong_digest_is_rejected(self, tmp_path):
        store = ContentStore(tmp_path)
        data = pickle.dumps(run_cell(make_spec()))
        assert store.put_raw(self.KEY, data, "0" * 64) is False
        assert store.read_raw(self.KEY) is None
        assert store.stats.puts == 0

    def test_non_result_payload_is_rejected(self, tmp_path):
        """Corrupt bytes or a pickle of the wrong type must never be
        published and later served as an authentic result."""
        store = ContentStore(tmp_path)
        for blob in (b"\x00garbage", pickle.dumps({"not": "a result"})):
            digest = hashlib.sha256(blob).hexdigest()
            assert store.put_raw(self.KEY, blob, digest) is False
        assert store.entries() == []

    def test_malformed_key_is_rejected(self, tmp_path):
        store = ContentStore(tmp_path)
        data = pickle.dumps(run_cell(make_spec()))
        assert store.put_raw("../escape", data) is False
        assert store.entries() == []


class TestEnvKnobs:
    def test_env_bounds_are_read(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_CACHE_ENTRIES", "5")
        monkeypatch.setenv("REPRO_SERVE_CACHE_MB", "2")
        store = ContentStore(tmp_path)
        assert store.max_entries == 5
        assert store.max_bytes == 2 * 1024 * 1024

    def test_bad_env_is_rejected_early(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_CACHE_ENTRIES", "many")
        import pytest

        with pytest.raises(ValueError, match="REPRO_SERVE_CACHE_ENTRIES"):
            ContentStore(tmp_path)
