"""The sweep service core: spec codec, dedupe, bit-identity, failure."""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.serve.service import (
    SweepRequestError,
    config_from_dict,
    config_to_dict,
    expand_sweep,
    spec_from_dict,
    spec_to_dict,
    summarize,
)
from repro.sim.config import FUPool, MachineConfig
from repro.sim.parallel import run_cell
from tests.serve.helpers import make_grid, make_service, make_spec


class TestCodec:
    def test_config_round_trips(self):
        config = MachineConfig(
            mechanism="multithreaded",
            idle_threads=2,
            fu_pool=FUPool(alu=3),
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_spec_round_trips(self):
        spec = make_spec(mechanism="hardware", user_insts=777)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_mix_workload_round_trips(self):
        spec = dataclasses.replace(make_spec(), workload=("compress", "murphi"))
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_unknown_config_key_is_rejected(self):
        with pytest.raises(SweepRequestError, match="unknown config key"):
            config_from_dict({"mechanism": "traditional", "warp_drive": 9})

    def test_unknown_workload_is_rejected(self):
        with pytest.raises(SweepRequestError, match="unknown workload"):
            spec_from_dict({"workload": "doom"})

    def test_warm_from_cannot_cross_the_wire(self):
        """A checkpoint *path* is local state; the wire format rejects
        it (clients use the sweep-level ``warm`` flag instead)."""
        with pytest.raises(SweepRequestError, match="unknown cell key"):
            spec_from_dict({"workload": "compress", "warm_from": "/tmp/x"})

    def test_negative_lengths_are_rejected(self):
        with pytest.raises(SweepRequestError, match="user_insts"):
            spec_from_dict({"workload": "compress", "user_insts": -1})


class TestExpandSweep:
    def test_grid_is_the_cross_product(self):
        specs, options = expand_sweep(
            {
                "workloads": ["compress", "murphi"],
                "mechanisms": ["traditional", "multithreaded"],
                "user_insts": 300,
                "warm": True,
            }
        )
        assert len(specs) == 4
        assert options == {"warm": True, "include_results": True}
        assert {s.config.mechanism for s in specs} == {
            "traditional",
            "multithreaded",
        }

    def test_explicit_cells(self):
        spec = make_spec()
        specs, options = expand_sweep(
            {"cells": [spec_to_dict(spec)], "include_results": False}
        )
        assert specs == [spec]
        assert options["include_results"] is False

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"workloads": []}, "non-empty workloads"),
            ({"workloads": ["compress"], "mechanisms": ["warp"]}, "unknown mechanism"),
            ({"cells": []}, "non-empty list"),
            ({"sweeps": [1]}, "unknown sweep key"),
            ([1, 2], "must be a JSON object"),
        ],
    )
    def test_bad_requests_are_rejected(self, payload, match):
        with pytest.raises(SweepRequestError, match=match):
            expand_sweep(payload)

    def test_cell_limit_is_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_CELLS", "3")
        with pytest.raises(SweepRequestError, match="REPRO_SERVE_MAX_CELLS"):
            expand_sweep(
                {
                    "workloads": ["compress", "murphi"],
                    "mechanisms": ["traditional", "multithreaded"],
                }
            )


class TestResolution:
    def test_results_match_serial_run_cell(self, tmp_path):
        """Service outcomes are bit-identical to in-process runs."""
        service = make_service(tmp_path)
        specs = make_grid()[:2]
        outcomes = asyncio.run(service.run_cells(specs))
        for spec, outcome in zip(specs, outcomes):
            assert outcome.spec == spec
            assert dataclasses.asdict(outcome.result) == dataclasses.asdict(
                run_cell(spec)
            )
            assert not outcome.cached and not outcome.deduped
        assert service.cells_simulated == 2

    def test_duplicates_in_one_request_are_deduped(self, tmp_path):
        """N copies of one cell in a request cost one simulation; the
        extra copies are flagged deduped and counted as in-flight hits."""
        service = make_service(tmp_path)
        spec = make_spec()
        outcomes = asyncio.run(service.run_cells([spec, spec, spec]))
        assert service.cells_simulated == 1
        assert service.store.stats.inflight_hits == 2
        assert [o.deduped for o in outcomes] == [False, True, True]
        results = [dataclasses.asdict(o.result) for o in outcomes]
        assert results[0] == results[1] == results[2]

    def test_concurrent_requests_share_simulations(self, tmp_path):
        """Overlapping requests from different clients never repeat a
        cell: total simulations == unique cells."""
        service = make_service(tmp_path)
        specs = make_grid()[:2]

        async def both():
            return await asyncio.gather(
                service.run_cells(specs), service.run_cells(specs)
            )

        first, second = asyncio.run(both())
        assert service.cells_simulated == len(specs)
        for a, b in zip(first, second):
            assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)
        # Every resolution beyond the first per cell came from the
        # store or the in-flight table, never a second simulation.
        stats = service.store.stats
        assert stats.inflight_hits + stats.hits == len(specs)

    def test_second_request_is_served_from_store(self, tmp_path):
        service = make_service(tmp_path)
        specs = make_grid()[:2]
        asyncio.run(service.run_cells(specs))
        outcomes = asyncio.run(service.run_cells(specs))
        assert all(o.cached for o in outcomes)
        assert service.cells_simulated == len(specs)  # no re-runs

    def test_failing_cell_resolves_waiters_with_the_error(
        self, tmp_path, monkeypatch
    ):
        """A cell that fails deterministically must error out every
        waiter -- including deduped ones -- never hang them."""
        import repro.serve.service as service_mod

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(service_mod, "run_cell_batch", boom)
        monkeypatch.setattr(service_mod, "run_cell", boom)
        service = make_service(tmp_path)
        spec = make_spec()

        async def run():
            return await asyncio.wait_for(
                service.run_cells([spec, spec]), timeout=60
            )

        with pytest.raises(RuntimeError, match="engine exploded"):
            asyncio.run(run())

    def test_stats_dict_shape(self, tmp_path):
        service = make_service(tmp_path)
        asyncio.run(service.run_cells([make_spec()]))
        stats = service.stats_dict()
        assert stats["kind"] == "repro-serve-stats"
        assert stats["requests"] == 1
        assert stats["cells_requested"] == 1
        assert stats["cells_simulated"] == 1
        assert stats["inflight"] == 0
        assert stats["cache"]["puts"] == 1


class TestSummarize:
    def test_summary_counts_resolutions(self, tmp_path):
        service = make_service(tmp_path)
        spec = make_spec()
        outcomes = asyncio.run(service.run_cells([spec, spec]))
        again = asyncio.run(service.run_cells([spec]))
        summary = summarize(outcomes + again)
        assert summary["kind"] == "summary"
        assert summary["cells"] == 3
        assert summary["simulated"] == 1
        assert summary["deduped"] == 1
        assert summary["cached"] == 1
        row = summary["table"][0]
        assert row["workload"] == "compress"
        assert row["cycles"] > 0
        assert isinstance(row["exceptions_taken"], dict)
