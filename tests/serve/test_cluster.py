"""Cluster mode in-process: forwarding, handoff endpoints, HTTP jobs.

Two real servers on background loops (:class:`ServerThread` with
pre-picked ports, since ring membership needs every URL up front), so
the peer-forwarding path runs over actual sockets -- the full-fat
multi-process version of this lives in ``repro-serve smoke --nodes 3``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import time

import pytest

from repro.serve.client import (
    ServeError,
    decode_result,
    fetch_store_entries,
    fetch_store_keys,
    forward_cell,
    job_results,
    job_status,
    run_cells_via_server,
    submit_job,
)
from repro.serve.cluster import pick_ports
from repro.serve.service import spec_to_dict
from repro.sim.parallel import derive_warm_cells, run_cell
from tests.serve.helpers import ServerThread, make_grid


@pytest.fixture
def pair(tmp_path):
    """Two peered servers over separate stores."""
    ports = pick_ports(2)
    urls = [f"http://127.0.0.1:{port}" for port in ports]
    with ServerThread(
        tmp_path / "store-a",
        port=ports[0],
        node_url=urls[0],
        peers=(urls[1],),
        jobs_dir=tmp_path / "jobs-a",
    ) as a, ServerThread(
        tmp_path / "store-b",
        port=ports[1],
        node_url=urls[1],
        peers=(urls[0],),
        jobs_dir=tmp_path / "jobs-b",
    ) as b:
        yield a, b


class TestForwarding:
    def test_sweep_spans_the_ring_bit_identically(self, pair):
        a, b = pair
        specs = make_grid()
        served = run_cells_via_server(a.url, specs)
        for spec, result in zip(specs, served):
            assert dataclasses.asdict(result) == dataclasses.asdict(
                run_cell(spec)
            )
        ring = a.server.service.ring
        assert ring is not None
        owned_by_b = [
            spec
            for spec in specs
            if ring.owner(a.server.service.store.key(spec)) != a.url.rstrip()
        ]
        stats_a = a.server.service.stats_dict()
        node_a = stats_a["node"]
        # Every cell node A does not own went over the wire; none fell
        # back (B was healthy throughout).
        assert node_a["forwarded"] == len(owned_by_b)
        assert node_a["fallbacks"] == 0
        assert node_a["owned"] + node_a["forwarded"] == len(specs)
        # A forwarded result is also stored locally, so the whole grid
        # is now a local hit on A.
        keys = {a.server.service.store.key(spec) for spec in specs}
        assert keys <= set(a.server.service.store.keys())

    def test_owner_stores_what_it_resolved(self, pair):
        a, b = pair
        specs = make_grid()
        run_cells_via_server(a.url, specs)
        ring = a.server.service.ring
        store_b = b.server.service.store
        for spec in specs:
            key = a.server.service.store.key(spec)
            if ring.owner(key) == b.url:
                assert key in set(store_b.keys())

    def test_forward_cell_rejects_key_mismatch_clean_path(self, pair):
        """The forwarding client verifies the peer resolved the *same*
        content address -- here the honest case: keys agree."""
        a, b = pair
        spec = make_grid()[0]
        key, result = forward_cell(b.url, spec_to_dict(spec))
        assert key == a.server.service.store.key(spec)
        assert dataclasses.asdict(result) == dataclasses.asdict(
            run_cell(spec)
        )

    def test_wire_warm_cell_resolves_warm_on_the_peer(
        self, pair, tmp_path, monkeypatch
    ):
        """POST /cell with a warm-keyed spec: the wire strips
        ``warm_from``, so the peer must re-derive the checkpoint before
        resolving -- running it as-is would file *cold* bits under the
        warm-keyed content address."""
        monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
        a, b = pair
        warm_spec = derive_warm_cells([make_grid()[0]])[0]
        assert warm_spec.warm_hash is not None
        key, result = forward_cell(b.url, spec_to_dict(warm_spec))
        assert key == b.server.service.store.key(warm_spec)
        assert dataclasses.asdict(result) == dataclasses.asdict(
            run_cell(warm_spec)
        )

    def test_warm_sweep_spans_the_ring_bit_identically(
        self, pair, tmp_path, monkeypatch
    ):
        """A ``"warm": true`` sweep submitted to one node: cells whose
        ring owner is the peer are forwarded as warm-keyed wire specs
        and must come back bit-identical to local warm runs."""
        monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
        a, b = pair
        specs = make_grid()
        warm_specs = derive_warm_cells(specs)
        served = run_cells_via_server(a.url, specs, warm=True)
        for warm_spec, result in zip(warm_specs, served):
            assert dataclasses.asdict(result) == dataclasses.asdict(
                run_cell(warm_spec)
            )
        node_a = a.server.service.stats_dict()["node"]
        assert node_a["fallbacks"] == 0
        assert node_a["owned"] + node_a["forwarded"] == len(specs)

    def test_warm_handoff_pulls_exactly_the_owned_keys(self, pair, tmp_path):
        """A restarted member with an empty store pulls from a peer
        precisely the entries the ring assigns to it -- nothing more."""
        a, b = pair
        specs = make_grid()
        # 12 distinct cells so the ring essentially never assigns the
        # rebuilt node an empty share.
        specs = specs + [
            dataclasses.replace(spec, user_insts=spec.user_insts + delta)
            for delta in (17, 34)
            for spec in specs
        ]
        run_cells_via_server(a.url, specs)

        # A "rebuilt" node with B's ring identity but a fresh store; A
        # holds every key (owner or forwarding replica), so the joiner
        # can pull its share from A alone.
        from tests.serve.helpers import make_service

        joiner = make_service(
            tmp_path / "store-rebuilt", node_url=b.url, peers=(a.url,)
        )
        try:
            pulled = asyncio.run(joiner.warm_handoff())
            keys_a = {a.server.service.store.key(spec) for spec in specs}
            expected = {
                key for key in keys_a if joiner.ring.owner(key) == b.url
            }
            assert pulled == len(expected) > 0
            assert set(joiner.store.keys()) == expected
            assert joiner.handoff_pulled == pulled
        finally:
            joiner.close()

    def test_store_endpoints_serve_raw_entries(self, pair):
        a, b = pair
        specs = make_grid()
        run_cells_via_server(a.url, specs)
        keys = fetch_store_keys(a.url)
        assert set(keys) == {
            a.server.service.store.key(spec) for spec in specs
        }
        entries = fetch_store_entries(a.url, keys[:2])
        assert set(entries) == set(keys[:2])
        for key, (blob, digest) in entries.items():
            assert blob == a.server.service.store.read_raw(key)
            assert digest == hashlib.sha256(blob).hexdigest()


class TestJobsOverHTTP:
    def test_submit_poll_fetch(self, pair):
        a, _ = pair
        specs = make_grid()
        submitted = submit_job(
            a.url,
            {
                "cells": [spec_to_dict(spec) for spec in specs],
                "include_results": False,
            },
        )
        job_id = submitted["job_id"]
        assert submitted["cells"] == len(specs)

        deadline = time.monotonic() + 60
        status = None
        while time.monotonic() < deadline:
            status = job_status(a.url, job_id)
            if status["complete"]:
                break
            time.sleep(0.05)
        assert status and status["complete"], f"job stuck: {status}"
        assert status["done"] == len(specs)
        assert status["duplicate_done"] == 0

        lines = job_results(a.url, job_id, include_results=False)
        cells = [line for line in lines if line["kind"] == "cell"]
        summaries = [line for line in lines if line["kind"] == "job-summary"]
        assert len(cells) == len(specs)
        assert len(summaries) == 1
        assert summaries[0]["complete"] is True
        served = {line["index"]: line["key"] for line in cells}
        for index, spec in enumerate(specs):
            assert served[index] == a.server.service.store.key(spec)

    def test_warm_job_streams_its_results(self, pair, tmp_path, monkeypatch):
        """A job submitted with ``"warm": true`` journals warm-derived
        keys; the results stream must fetch by those journaled keys --
        recomputing cold addresses from the submitted cells would
        miscount every finished cell as evicted."""
        monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
        a, _ = pair
        specs = make_grid()[:2]
        submitted = submit_job(
            a.url,
            {"cells": [spec_to_dict(spec) for spec in specs], "warm": True},
        )
        job_id = submitted["job_id"]
        deadline = time.monotonic() + 120
        status = None
        while time.monotonic() < deadline:
            status = job_status(a.url, job_id)
            if status["complete"]:
                break
            time.sleep(0.05)
        assert status and status["complete"], f"warm job stuck: {status}"

        lines = job_results(a.url, job_id)
        cells = [line for line in lines if line["kind"] == "cell"]
        summary = next(l for l in lines if l["kind"] == "job-summary")
        assert len(cells) == len(specs)
        assert summary["streamed"] == len(specs)
        assert summary["evicted"] == 0
        warm_keys = {
            a.server.service.store.key(spec)
            for spec in derive_warm_cells(specs)
        }
        assert {line["key"] for line in cells} == warm_keys
        for line in cells:
            decode_result(line)  # the payload rides along and unpickles

    def test_unknown_job_is_a_clean_error(self, pair):
        a, _ = pair
        with pytest.raises(ServeError, match="404"):
            job_status(a.url, "0" * 16)
