"""Shared helpers for the sweep-service tests (imported, not a conftest).

Cells are kept tiny (a few hundred instructions) so the suites stay
fast, and services run with ``pools=0`` -- the inline thread-executor
mode -- so no worker processes are spawned.  The HTTP tests get a real
server on an ephemeral port via :class:`ServerThread`, which runs the
asyncio loop on a background thread so the blocking client can be
exercised from test code.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.http import SweepHTTPServer
from repro.serve.service import SweepService
from repro.serve.store import ContentStore
from repro.sim.config import MachineConfig
from repro.sim.parallel import CellSpec


def make_spec(
    workload: str = "compress",
    mechanism: str = "traditional",
    user_insts: int = 300,
    warmup_insts: int = 80,
) -> CellSpec:
    return CellSpec(
        workload=workload,
        config=MachineConfig(mechanism=mechanism, idle_threads=1),
        user_insts=user_insts,
        warmup_insts=warmup_insts,
        max_cycles=2_000_000,
    )


def make_grid() -> list[CellSpec]:
    """2 benchmarks x 2 mechanisms, all tiny."""
    return [
        make_spec(bench, mech)
        for bench in ("compress", "murphi")
        for mech in ("traditional", "multithreaded")
    ]


def make_service(
    cache_dir,
    node_url: str | None = None,
    peers: tuple[str, ...] = (),
    jobs_dir=None,
) -> SweepService:
    """An inline (pools=0) service over a store in ``cache_dir``.

    ``node_url`` + ``peers`` put the service in cluster mode (ring
    placement and forwarding); ``jobs_dir`` enables the persistent job
    queue -- the same wiring ``repro-serve serve`` does from its flags.
    """
    from repro.serve.queue import JobQueue

    return SweepService(
        store=ContentStore(cache_dir),
        pools=0,
        node_id=node_url,
        peers=peers,
        queue=JobQueue(jobs_dir) if jobs_dir else None,
    )


class ServerThread:
    """A real :class:`SweepHTTPServer` on a background event loop."""

    def __init__(
        self,
        cache_dir,
        port: int = 0,
        node_url: str | None = None,
        peers: tuple[str, ...] = (),
        jobs_dir=None,
    ) -> None:
        self.server = SweepHTTPServer(
            make_service(
                cache_dir, node_url=node_url, peers=peers, jobs_dir=jobs_dir
            ),
            port=port,
        )
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._started.wait(timeout=30), "server failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        )
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=30)
        self.loop.close()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"
