"""End-to-end HTTP: a real server, real sockets, both clients."""

from __future__ import annotations

import asyncio
import dataclasses
import http.client
import json

import pytest

from repro.serve.client import (
    ServeError,
    SweepClient,
    async_sweep,
    run_cells_via_server,
    split_server_url,
)
from repro.serve.service import spec_to_dict
from repro.sim.parallel import run_cell
from tests.serve.helpers import ServerThread, make_grid, make_spec


class TestUrlParsing:
    @pytest.mark.parametrize(
        "url, expected",
        [
            ("http://localhost:8712", ("localhost", 8712)),
            ("localhost:9000", ("localhost", 9000)),
            ("10.0.0.7", ("10.0.0.7", 8712)),
        ],
    )
    def test_accepted_forms(self, url, expected):
        assert split_server_url(url) == expected

    def test_https_is_rejected(self):
        with pytest.raises(ServeError, match="http"):
            split_server_url("https://example.com")


class TestEndToEnd:
    def test_sweep_stats_and_cache_flags(self, tmp_path):
        """One server thread: bit-identity, /stats, warm second sweep,
        and error statuses, all over real sockets."""
        specs = make_grid()[:2]
        with ServerThread(tmp_path) as server:
            # Liveness + empty stats.
            stats = SweepClient(server.url).stats()
            assert stats["kind"] == "repro-serve-stats"
            assert stats["requests"] == 0

            # The drop-in run_cells replacement is bit-identical to the
            # serial in-process path.
            served = run_cells_via_server(server.url, specs)
            for spec, result in zip(specs, served):
                assert dataclasses.asdict(result) == dataclasses.asdict(
                    run_cell(spec)
                )

            # A second sweep of the same cells is all store hits.
            client = SweepClient(server.url)
            events = list(
                client.sweep(
                    {
                        "cells": [spec_to_dict(s) for s in specs],
                        "include_results": False,
                    }
                )
            )
            cells = [e for e in events if e["kind"] == "cell"]
            summary = next(e for e in events if e["kind"] == "summary")
            assert len(cells) == len(specs)
            assert all(c["cached"] for c in cells)
            assert all("result_b64" not in c for c in cells)
            assert summary["cached"] == len(specs)
            assert summary["simulated"] == 0

            stats = client.stats()
            assert stats["cells_simulated"] == len(specs)
            assert stats["cache"]["hits"] >= len(specs)
            assert stats["cache"]["puts"] == len(specs)

            # Malformed sweeps are a 400, not a hung stream.
            with pytest.raises(ServeError, match="400"):
                list(client.sweep({"workloads": ["doom"]}))
            with pytest.raises(ServeError, match="400"):
                list(client.sweep({"warp": 9}))

            # Unknown routes and bad methods.
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.server.port, timeout=30
            )
            try:
                conn.request("GET", "/nope")
                assert conn.getresponse().status == 404
            finally:
                conn.close()
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.server.port, timeout=30
            )
            try:
                conn.request("GET", "/sweep")
                assert conn.getresponse().status == 405
            finally:
                conn.close()

    def test_async_client_matches_blocking_client(self, tmp_path):
        """The smoke harness's asyncio transport decodes the same
        stream the blocking client sees."""
        spec = make_spec()
        payload = {
            "cells": [spec_to_dict(spec)],
            "include_results": True,
        }
        with ServerThread(tmp_path) as server:
            events = asyncio.run(
                async_sweep("127.0.0.1", server.server.port, payload)
            )
            kinds = [e["kind"] for e in events]
            assert kinds.count("cell") == 1
            assert kinds[-1] == "summary"

            from repro.serve.client import decode_result

            cell = next(e for e in events if e["kind"] == "cell")
            assert dataclasses.asdict(decode_result(cell)) == (
                dataclasses.asdict(run_cell(spec))
            )

    def test_grid_sweep_over_http(self, tmp_path):
        """Grid-shaped requests expand server-side."""
        with ServerThread(tmp_path) as server:
            events = list(
                SweepClient(server.url).sweep(
                    {
                        "workloads": ["compress"],
                        "mechanisms": ["traditional", "multithreaded"],
                        "user_insts": 300,
                        "warmup_insts": 80,
                        "include_results": False,
                    }
                )
            )
            summary = events[-1]
            assert summary["kind"] == "summary"
            assert summary["cells"] == 2
            mechs = {
                e["mechanism"] for e in events if e["kind"] == "cell"
            }
            assert mechs == {"traditional", "multithreaded"}

    def test_body_must_be_json(self, tmp_path):
        with ServerThread(tmp_path) as server:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.server.port, timeout=30
            )
            try:
                conn.request("POST", "/sweep", b"not json {")
                response = conn.getresponse()
                assert response.status == 400
                assert "JSON" in json.loads(response.read())["error"]
            finally:
                conn.close()

    def test_negative_content_length_is_a_400(self, tmp_path):
        """A negative Content-Length must get a clean 400, not blow up
        readexactly and drop the connection without a response."""
        with ServerThread(tmp_path) as server:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.server.port, timeout=30
            )
            try:
                conn.putrequest("POST", "/sweep")
                conn.putheader("Content-Length", "-5")
                conn.endheaders()
                response = conn.getresponse()
                assert response.status == 400
                assert "Content-Length" in json.loads(response.read())["error"]
            finally:
                conn.close()
