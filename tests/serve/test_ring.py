"""The consistent-hash ring: determinism, minimal movement, replicas."""

from __future__ import annotations

import hashlib

import pytest

from repro.serve.ring import DEFAULT_VNODES, HashRing

NODES = [f"http://10.0.0.{i}:8712" for i in range(1, 6)]


def sample_keys(count: int = 400) -> list[str]:
    """Deterministic content-address-shaped keys."""
    return [
        hashlib.sha256(f"cell-{i}".encode()).hexdigest()[:40]
        for i in range(count)
    ]


class TestPlacement:
    def test_owner_is_deterministic_across_instances(self):
        a = HashRing(NODES)
        b = HashRing(NODES)
        for key in sample_keys():
            assert a.owner(key) == b.owner(key)

    def test_owner_ignores_insertion_order(self):
        forward = HashRing(NODES)
        backward = HashRing(list(reversed(NODES)))
        for key in sample_keys():
            assert forward.owner(key) == backward.owner(key)

    def test_every_node_owns_something(self):
        ring = HashRing(NODES)
        owners = {ring.owner(key) for key in sample_keys()}
        assert owners == set(NODES)

    def test_add_is_idempotent(self):
        ring = HashRing(NODES)
        before = [ring.owner(key) for key in sample_keys()]
        ring.add(NODES[0])
        assert [ring.owner(key) for key in sample_keys()] == before

    def test_owns_matches_owner(self):
        ring = HashRing(NODES)
        for key in sample_keys(50):
            owner = ring.owner(key)
            for node in NODES:
                assert ring.owns(key, node) == (node == owner)

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError, match="no nodes"):
            HashRing().owner(sample_keys(1)[0])


class TestMinimalMovement:
    def test_join_only_moves_keys_to_the_new_node(self):
        """Adding a member must never shuffle keys between old members
        -- the property that makes warm handoff a pull from peers
        instead of a full reshard."""
        keys = sample_keys()
        ring = HashRing(NODES)
        before = {key: ring.owner(key) for key in keys}
        newcomer = "http://10.0.0.99:8712"
        ring.add(newcomer)
        moved = 0
        for key in keys:
            after = ring.owner(key)
            if after != before[key]:
                assert after == newcomer
                moved += 1
        # The newcomer picked up roughly 1/(N+1) of the keys; allow a
        # wide band, but it must take *some* and nowhere near all.
        assert 0 < moved < len(keys) // 2

    def test_leave_only_moves_the_dead_nodes_keys(self):
        keys = sample_keys()
        ring = HashRing(NODES)
        before = {key: ring.owner(key) for key in keys}
        victim = NODES[2]
        ring.remove(victim)
        for key in keys:
            if before[key] == victim:
                assert ring.owner(key) != victim
            else:
                assert ring.owner(key) == before[key]

    def test_join_then_leave_round_trips(self):
        keys = sample_keys()
        ring = HashRing(NODES)
        before = {key: ring.owner(key) for key in keys}
        ring.add("http://10.0.0.99:8712")
        ring.remove("http://10.0.0.99:8712")
        assert {key: ring.owner(key) for key in keys} == before


class TestReplicas:
    def test_replicas_are_distinct_and_start_with_the_owner(self):
        ring = HashRing(NODES)
        for key in sample_keys(100):
            replicas = ring.replicas(key, 3)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert replicas[0] == ring.owner(key)

    def test_replica_order_is_deterministic(self):
        a = HashRing(NODES)
        b = HashRing(list(reversed(NODES)))
        for key in sample_keys(100):
            assert a.replicas(key, 3) == b.replicas(key, 3)

    def test_replicas_cap_at_member_count(self):
        ring = HashRing(NODES[:2])
        for key in sample_keys(20):
            replicas = ring.replicas(key, 5)
            assert sorted(replicas) == sorted(NODES[:2])


class TestShape:
    def test_vnode_count(self):
        ring = HashRing(NODES[:1])
        assert len(ring._positions) == DEFAULT_VNODES

    def test_nodes_property_sorted(self):
        assert HashRing(list(reversed(NODES))).nodes == sorted(NODES)
