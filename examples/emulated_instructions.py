#!/usr/bin/env python3
"""The generalized mechanism (paper Section 6): instruction emulation.

The ISA's ``emul rd, ra`` (popcount) is "implemented in software": the
hardware raises an emulation exception and a PAL handler computes the
result.  Under the multithreaded mechanism the handler runs in an idle
context, reads the faulting instruction's source value from a privileged
register, and writes the result directly into the faulting instruction's
destination with ``mtdst`` -- the excepting instruction completes as a
nop and its consumers wake, with nothing squashed.

Run::

    python examples/emulated_instructions.py
"""

from repro import MachineConfig, Simulator
from repro.workloads.builder import make_program

SOURCE = """
main:
    li   r1, 1
    li   r5, 200
    li   r7, 0
loop:
    sll  r1, r1, 3
    or   r1, r1, 5
    emul r2, r1          ; software-emulated popcount
    add  r7, r7, r2      ; consumer wakes straight from mtdst
    sub  r5, r5, 1
    bne  r5, r0, loop
    halt
"""


def run(mechanism: str):
    sim = Simulator(make_program(SOURCE), MachineConfig(mechanism=mechanism))
    core = sim.core
    while not core.threads[0].halted and core.cycle < 500_000:
        core.step()
    emulations = sim.mechanism.stats.emulations if sim.mechanism else 0
    return core.cycle, emulations, core.threads[0].arch.read_int(7), core.stats.squashed


def main() -> None:
    print("software-emulated popcount, 200 iterations\n")
    print(f"{'mechanism':15s} {'cycles':>8s} {'emuls':>6s} {'result':>8s} "
          f"{'squashed':>9s}")
    reference = None
    for mechanism in ("perfect", "traditional", "multithreaded", "quickstart"):
        cycles, emulations, result, squashed = run(mechanism)
        if reference is None:
            reference = result
        assert result == reference, "mechanisms must agree on results"
        print(f"{mechanism:15s} {cycles:8d} {emulations:6d} {result:8d} "
              f"{squashed:9d}")
    print("\nThe traditional trap squashes and refetches at every emul;")
    print("the multithreaded mechanism squashes nothing (Section 6 of the")
    print("paper: register write access via the excepting instruction's")
    print("physical destination).")


if __name__ == "__main__":
    main()
