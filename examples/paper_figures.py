#!/usr/bin/env python3
"""Render a paper figure as an ASCII bar chart.

The paper presents its results as grouped bar charts; this example
regenerates one (default: Figure 5) and renders it the same way using
:mod:`repro.experiments.report`.

Run::

    python examples/paper_figures.py [fig5|fig6] [scale]
"""

import os
import sys

from repro.experiments import fig5_mechanisms, fig6_quickstart
from repro.experiments.common import Settings
from repro.experiments.report import bar_chart, sparkline

FIGURES = {
    "fig5": (
        fig5_mechanisms,
        "Figure 5: penalty cycles per TLB miss, by mechanism",
    ),
    "fig6": (
        fig6_quickstart,
        "Figure 6: quick-start vs multithreaded vs hardware",
    ),
}


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "fig5"
    if len(sys.argv) > 2:
        os.environ["REPRO_SCALE"] = sys.argv[2]
    module, title = FIGURES[which]

    settings = Settings.from_env()
    result = module.run(settings)
    print(bar_chart(result, title=title))

    averages = [result.average_penalty(label) for label in result.labels()]
    print(f"\ntrend across mechanisms: {sparkline(averages)}")


if __name__ == "__main__":
    main()
