#!/usr/bin/env python3
"""A guided tour of one TLB miss under each exception architecture.

Builds a tiny hand-written program whose first load misses the DTLB,
then replays it under each mechanism with an event log, showing exactly
what the paper's Figure 1 describes: the traditional trap squashes and
refetches; the multithreaded mechanism spawns a handler thread whose
instructions retire *between* the pre-exception instructions and the
excepting load; the hardware walker resolves the miss with no
instructions at all.

Run::

    python examples/tlb_mechanism_tour.py
"""

from repro.isa.program import DataSegment
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import make_program

DATA = 0x1000_0000

SOURCE = f"""
main:
    li   r1, {DATA}
    li   r4, 100          ; pre-exception independent work
    add  r4, r4, 4
    ld   r2, 0(r1)        ; <-- misses the DTLB
    add  r3, r2, 1        ; depends on the load
    add  r5, r4, 8        ; independent of the load
    add  r6, r5, 8
    halt
"""


def build_sim(mechanism: str) -> Simulator:
    program = make_program(
        SOURCE, segments=[DataSegment(base=DATA, words=[41], name="data")]
    )
    return Simulator(program, MachineConfig(mechanism=mechanism, idle_threads=1))


def traced_run(mechanism: str) -> None:
    print(f"\n=== {mechanism} ===")
    sim = build_sim(mechanism)
    core = sim.core
    retire_log: list[str] = []

    original = core._do_retire

    def spy(thread, uop, now):
        kind = "PAL" if uop.is_handler else "app"
        retire_log.append(
            f"  cycle {now:4d}  T{thread.tid} {kind}  pc={uop.pc:3d}  {uop.inst}"
        )
        return original(thread, uop, now)

    core._do_retire = spy
    while not core.threads[0].halted and core.cycle < 50_000:
        core.step()

    print(f"finished in {core.cycle} cycles; retirement order:")
    for line in retire_log:
        print(line)
    if sim.mechanism is not None:
        stats = sim.mechanism.stats
        print(f"stats: traps={stats.traps} spawns={stats.spawns} "
              f"walks={stats.walks_completed} fills={stats.committed_fills}")
    squashed = core.stats.squashed
    print(f"squashed instructions: {squashed}")
    assert core.threads[0].arch.read_int(3) == 42


def main() -> None:
    for mechanism in ("perfect", "traditional", "multithreaded", "hardware"):
        traced_run(mechanism)
    print("\nNote how the multithreaded run retires the PAL handler between")
    print("the pre-exception instructions and the excepting load, with zero")
    print("squashed instructions -- the paper's Figure 1(b)/(c).")


if __name__ == "__main__":
    main()
