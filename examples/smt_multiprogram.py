#!/usr/bin/env python3
"""Multiprogrammed SMT: the paper's Figure 7 scenario on one mix.

Runs three benchmarks simultaneously (each in its own address-space
slice) with one idle context, comparing exception mechanisms.  With
other threads to hide trap latency, the multithreaded mechanism's edge
shrinks -- the paper reports ~25% instead of ~50% -- but the saved
fetch/decode bandwidth still shows.

Run::

    python examples/smt_multiprogram.py [b1 b2 b3] [user_insts]
"""

import sys

from repro import MachineConfig, Simulator
from repro.workloads.suite import build_mix


def main() -> None:
    if len(sys.argv) >= 4:
        mix = tuple(sys.argv[1:4])
        user_insts = int(sys.argv[4]) if len(sys.argv) > 4 else 8_000
    else:
        mix = ("adm", "cmp", "vor")
        user_insts = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000

    print(f"mix: {'-'.join(mix)}  ({user_insts} instructions per thread)\n")
    perfect = Simulator(
        build_mix(mix), MachineConfig(mechanism="perfect", idle_threads=1)
    ).run(user_insts=user_insts)
    print(f"perfect TLB: {perfect.cycles} cycles, per-thread retirement "
          f"{perfect.per_thread_user[:3]}\n")

    print(f"{'mechanism':18s} {'cycles':>8s} {'fills':>6s} {'penalty/miss':>13s}")
    for mechanism in ("traditional", "multithreaded", "quickstart", "hardware"):
        sim = Simulator(
            build_mix(mix), MachineConfig(mechanism=mechanism, idle_threads=1)
        )
        result = sim.run(user_insts=user_insts)
        penalty = (result.cycles - perfect.cycles) / max(1, result.committed_fills)
        print(f"{mechanism:18s} {result.cycles:8d} {result.committed_fills:6d} "
              f"{penalty:13.1f}")

    print("\nThe SMT's other threads absorb much of each trap's latency, so")
    print("all mechanisms sit closer together than in single-program runs")
    print("(the paper's Figure 7).")


if __name__ == "__main__":
    main()
