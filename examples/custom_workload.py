#!/usr/bin/env python3
"""Writing your own workload against the public API.

Shows the full path a user takes to study a new program under the
exception architectures: write a kernel in the repro ISA, declare its
data, build a Program (the PAL DTLB handler is installed automatically),
and measure penalty cycles per miss.

The kernel here is a toy B-tree-ish index probe: a hot root page, warm
interior pages, and leaf pages spread over more pages than the 64-entry
TLB can map -- a classic database-index TLB profile.

Run::

    python examples/custom_workload.py
"""

from repro import MachineConfig, Simulator
from repro.workloads.builder import DEFAULT_BASE, LCG_ADD, LCG_MUL, make_program

LEAF_PAGES = 80
LEAF_WORDS = LEAF_PAGES * 1024
INTERIOR_WORDS = 4096  # 32 KB: cache-warm


def build_index_probe(base: int = DEFAULT_BASE):
    leaf_base = base
    interior_base = base + LEAF_WORDS * 8

    source = f"""
main:
    li    r1, {leaf_base}
    li    r2, {interior_base}
    li    r10, 31415926535
    li    r20, {LCG_MUL}
    li    r21, {LCG_ADD}
    li    r22, {LEAF_WORDS}
    li    r16, 0
probe:
    mul   r10, r10, r20       ; next key
    add   r10, r10, r21
    and   r4, r10, 32760
    add   r4, r2, r4
    ld    r5, 0(r4)           ; interior node (warm)
    srl   r6, r10, 32
    mul   r6, r6, r22
    srl   r6, r6, 32
    sll   r6, r6, 3
    add   r6, r1, r6
    ld    r7, 0(r6)           ; leaf probe (TLB pressure)
    xor   r10, r10, r7        ; next key depends on this leaf
    add   r16, r16, r7
    jmp   probe
"""
    return make_program(
        source,
        regions=[(leaf_base, LEAF_WORDS * 8), (interior_base, INTERIOR_WORDS * 8)],
    )


def main() -> None:
    user_insts = 10_000
    print("custom workload: index-probe kernel\n")
    perfect = Simulator(
        build_index_probe(), MachineConfig(mechanism="perfect")
    ).run(user_insts=user_insts)
    print(f"perfect TLB: {perfect.cycles} cycles (IPC {perfect.ipc:.2f})")

    for mechanism in ("traditional", "multithreaded", "quickstart", "hardware"):
        sim = Simulator(
            build_index_probe(), MachineConfig(mechanism=mechanism, idle_threads=1)
        )
        result = sim.run(user_insts=user_insts)
        penalty = (result.cycles - perfect.cycles) / max(1, result.committed_fills)
        rate = result.miss_rate_per_kilo_inst
        print(f"{mechanism:14s}: {result.cycles:6d} cycles, "
              f"{result.committed_fills:4d} fills ({rate:4.1f}/kinst), "
              f"{penalty:5.1f} penalty cycles/miss")


if __name__ == "__main__":
    main()
