#!/usr/bin/env python3
"""Quickstart: measure one benchmark under every exception mechanism.

Reproduces the paper's headline result on ``compress``: executing the
software TLB miss handler in a spare SMT thread context roughly halves
the penalty cycles per miss compared with the traditional trap, and the
quick-start optimisation closes most of the remaining gap to a hardware
page walker.

Run::

    python examples/quickstart.py [benchmark] [user_insts]
"""

import sys

from repro import MachineConfig, Simulator, build_benchmark

MECHANISMS = (
    ("traditional", 1),
    ("multithreaded", 1),
    ("multithreaded", 3),
    ("quickstart", 1),
    ("hardware", 1),
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compress"
    user_insts = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000

    print(f"benchmark: {name} ({user_insts} measured instructions)\n")
    perfect = Simulator(
        build_benchmark(name), MachineConfig(mechanism="perfect")
    ).run(user_insts=user_insts)
    print(f"perfect TLB baseline: {perfect.cycles} cycles "
          f"(IPC {perfect.ipc:.2f})\n")

    print(f"{'mechanism':18s} {'cycles':>8s} {'fills':>6s} {'penalty/miss':>13s}")
    for mechanism, idle in MECHANISMS:
        sim = Simulator(
            build_benchmark(name),
            MachineConfig(mechanism=mechanism, idle_threads=idle),
        )
        result = sim.run(user_insts=user_insts)
        penalty = (result.cycles - perfect.cycles) / max(1, result.committed_fills)
        label = f"{mechanism}({idle})"
        print(f"{label:18s} {result.cycles:8d} {result.committed_fills:6d} "
              f"{penalty:13.1f}")

    print("\nExpected shape (paper, Fig. 5/6): traditional is worst;")
    print("multithreaded(1) roughly halves it; quick-start approaches the")
    print("hardware walker.")


if __name__ == "__main__":
    main()
