"""Tag-only timing caches with MSHRs and bus occupancy.

The model follows Table 1 of the paper.  A :class:`Cache` answers timing
queries: given an address and the cycle the access starts, it returns the
cycle the data is available, recursively consulting the next level on a
miss.  Latency composition (with the Table 1 parameters) yields the
paper's best-case load-use latencies: 3 cycles for an L1 hit, 12 for an L2
hit, and 104 for memory.

Concurrency effects modelled:

* **MSHRs** -- up to ``mshr_count`` outstanding line fills; requests to a
  line already in flight merge with the existing fill (secondary misses);
  a full MSHR file stalls the new request until the earliest fill returns.
* **Buses** -- each inter-level :class:`Bus` is occupied for a fixed
  number of cycles per block transfer; transfers queue FIFO.
* **LRU replacement** with a dirty bit; dirty victims charge a writeback
  transfer on the downstream bus.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(slots=True)
class Bus:
    """A shared inter-level transfer link with fixed per-block occupancy."""

    occupancy: int
    next_free: int = 0
    transfers: int = 0

    def acquire(self, cycle: int) -> int:
        """Reserve the bus at or after ``cycle``; returns the start cycle."""
        start = max(cycle, self.next_free)
        self.next_free = start + self.occupancy
        self.transfers += 1
        return start

    def reset(self) -> None:
        self.next_free = 0
        self.transfers = 0

    # -- checkpoint protocol --------------------------------------------
    #: ``occupancy`` is configuration, rebuilt from MachineConfig.
    _SNAPSHOT_TRANSIENT = ("occupancy",)

    def snapshot_state(self, ctx) -> dict:
        return {"next_free": self.next_free, "transfers": self.transfers}

    def restore_state(self, state: dict, ctx) -> None:
        self.next_free = state["next_free"]
        self.transfers = state["transfers"]


@dataclass(slots=True)
class CacheStats:
    """Per-cache event counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    mshr_merges: int = 0
    mshr_stalls: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(slots=True)
class _Line:
    tag: int
    last_use: int
    dirty: bool = False


class _DRAM:
    """Terminal level: a flat-latency memory."""

    def __init__(self, latency: int) -> None:
        self.latency = latency
        self.stats = CacheStats()

    def access(self, addr: int, cycle: int, is_write: bool = False) -> int:
        self.stats.accesses += 1
        self.stats.hits += 1
        return cycle + self.latency

    def reset(self) -> None:
        self.stats = CacheStats()

    # -- checkpoint protocol --------------------------------------------
    #: ``latency`` is configuration, rebuilt from MachineConfig.
    _SNAPSHOT_TRANSIENT = ("latency",)

    def snapshot_state(self, ctx) -> dict:
        return {"stats": dataclasses.asdict(self.stats)}

    def restore_state(self, state: dict, ctx) -> None:
        for f in dataclasses.fields(self.stats):
            setattr(self.stats, f.name, state["stats"][f.name])


class Cache:
    """A set-associative, write-back, write-allocate timing cache."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_size: int,
        latency: int,
        next_level: "Cache | _DRAM",
        bus_to_next: Bus,
        mshr_count: int = 64,
        fill_latency: int = 1,
    ) -> None:
        if size_bytes % (ways * line_size) != 0:
            raise ValueError(f"{name}: size {size_bytes} not divisible by ways*line")
        self.name = name
        self.ways = ways
        self.line_size = line_size
        self.line_shift = line_size.bit_length() - 1
        if (1 << self.line_shift) != line_size:
            raise ValueError(f"{name}: line size {line_size} not a power of two")
        self.num_sets = size_bytes // (ways * line_size)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count {self.num_sets} not a power of two")
        self.set_mask = self.num_sets - 1
        self.latency = latency
        self.fill_latency = fill_latency
        self.next_level = next_level
        self.bus = bus_to_next
        self.mshr_count = mshr_count
        self.stats = CacheStats()
        #: set index -> {tag: _Line}
        self._sets: list[dict[int, _Line]] = [dict() for _ in range(self.num_sets)]
        #: line address -> fill completion cycle (outstanding misses).
        self._mshrs: dict[int, int] = {}
        self._use_clock = 0

    # ------------------------------------------------------------------
    def access(self, addr: int, cycle: int, is_write: bool = False) -> int:
        """Access ``addr`` starting at ``cycle``; return data-ready cycle."""
        stats = self.stats
        stats.accesses += 1
        self._use_clock += 1
        line_addr = addr >> self.line_shift
        # The full line address doubles as the tag key.
        lines = self._sets[line_addr & self.set_mask]
        line = lines.get(line_addr)
        if line is not None:
            stats.hits += 1
            line.last_use = self._use_clock
            if is_write:
                line.dirty = True
            ready = cycle + self.latency
            # The line may still be in flight (tags are installed when the
            # fill is requested): a hit under an outstanding miss merges
            # with the fill rather than completing early.
            if self._mshrs:
                pending = self._mshrs.get(line_addr)
                if pending is not None and pending > ready:
                    stats.mshr_merges += 1
                    return pending
            return ready

        set_idx = line_addr & self.set_mask
        stats.misses += 1
        self._reap_mshrs(cycle)

        # Merge with an in-flight fill of the same line.
        pending = self._mshrs.get(line_addr)
        if pending is not None:
            self.stats.mshr_merges += 1
            return max(pending, cycle + self.latency)

        # A full MSHR file delays the request until the earliest fill lands.
        if len(self._mshrs) >= self.mshr_count:
            self.stats.mshr_stalls += 1
            cycle = max(cycle, min(self._mshrs.values()))
            self._reap_mshrs(cycle)

        miss_known = cycle + self.latency
        bus_start = self.bus.acquire(miss_known)
        below_ready = self.next_level.access(
            line_addr << self.line_shift, bus_start + self.bus.occupancy, is_write
        )
        fill_cycle = below_ready + self.fill_latency
        self._install(set_idx, line_addr, fill_cycle, is_write)
        self._mshrs[line_addr] = fill_cycle
        return fill_cycle

    # ------------------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """True if the line holding ``addr`` is present (no side effects)."""
        line_addr = addr >> self.line_shift
        return line_addr in self._sets[line_addr & self.set_mask]

    def _install(self, set_idx: int, tag: int, fill_cycle: int, dirty: bool) -> None:
        lines = self._sets[set_idx]
        if len(lines) >= self.ways:
            victim_tag = min(lines, key=lambda t: lines[t].last_use)
            victim = lines.pop(victim_tag)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                self.bus.acquire(fill_cycle)
        lines[tag] = _Line(tag=tag, last_use=self._use_clock, dirty=dirty)

    def _reap_mshrs(self, cycle: int) -> None:
        if self._mshrs:
            done = [line for line, fill in self._mshrs.items() if fill <= cycle]
            for line in done:
                del self._mshrs[line]

    def prewarm(self, addr: int, size_bytes: int) -> int:
        """Install every line of ``[addr, addr+size)`` without timing.

        Models starting from a checkpoint partway into execution (the
        paper's methodology): hot data structures begin resident.  LRU
        applies, so ranges beyond capacity keep only the tail.  Returns
        the number of lines installed.
        """
        first = addr >> self.line_shift
        last = (addr + max(size_bytes, 1) - 1) >> self.line_shift
        for line_addr in range(first, last + 1):
            self._use_clock += 1
            set_idx = line_addr & self.set_mask
            lines = self._sets[set_idx]
            if line_addr in lines:
                lines[line_addr].last_use = self._use_clock
            else:
                if len(lines) >= self.ways:
                    victim = min(lines, key=lambda t: lines[t].last_use)
                    del lines[victim]
                lines[line_addr] = _Line(tag=line_addr, last_use=self._use_clock)
        return last - first + 1

    @property
    def outstanding_misses(self) -> int:
        return len(self._mshrs)

    def reset(self) -> None:
        """Drop all contents and statistics (cold cache)."""
        self._sets = [dict() for _ in range(self.num_sets)]
        self._mshrs.clear()
        self.stats = CacheStats()
        self._use_clock = 0

    # -- checkpoint protocol --------------------------------------------
    #: Geometry/latency fields are configuration; next_level and bus are
    #: wired by MemoryHierarchy and snapshotted as their own objects.
    _SNAPSHOT_TRANSIENT = (
        "name", "ways", "line_size", "line_shift", "num_sets", "set_mask",
        "latency", "fill_latency", "next_level", "bus", "mshr_count",
    )

    def snapshot_state(self, ctx) -> dict:
        """Encode sets/MSHRs preserving dict insertion order.

        LRU victims are unique by ``last_use`` so order is not strictly
        architectural here, but preserving it keeps restored and
        straight-through runs structurally identical.
        """
        return {
            "sets": [
                [[line.tag, line.last_use, line.dirty]
                 for line in lines.values()]
                for lines in self._sets
            ],
            "mshrs": [[k, v] for k, v in self._mshrs.items()],
            "use_clock": self._use_clock,
            "stats": dataclasses.asdict(self.stats),
        }

    def restore_state(self, state: dict, ctx) -> None:
        if len(state["sets"]) != self.num_sets:
            raise ValueError(
                f"{self.name}: snapshot has {len(state['sets'])} sets, "
                f"cache has {self.num_sets}"
            )
        self._sets = [
            {tag: _Line(tag=tag, last_use=last_use, dirty=dirty)
             for tag, last_use, dirty in lines}
            for lines in state["sets"]
        ]
        self._mshrs = {k: v for k, v in state["mshrs"]}
        self._use_clock = state["use_clock"]
        for f in dataclasses.fields(self.stats):
            setattr(self.stats, f.name, state["stats"][f.name])


def make_dram(latency: int) -> _DRAM:
    """Construct the terminal DRAM level."""
    return _DRAM(latency)
