"""Memory subsystem: functional memory, caches, page table, and TLBs.

The model separates *function* from *timing*:

* :class:`~repro.memory.main_memory.MainMemory` holds the actual data
  (word-granular Python values) and knows nothing about time.
* :class:`~repro.memory.cache.Cache` /
  :class:`~repro.memory.hierarchy.MemoryHierarchy` are tag-only timing
  models that turn an address and a cycle into a completion cycle,
  modelling Table 1 of the paper: 64 KB 2-way L1s, a 1 MB 4-way L2,
  80-cycle memory, MSHRs and bus occupancy.
* :class:`~repro.memory.page_table.PageTable` lives *in* cacheable
  memory, so PTE loads from the TLB miss handler (or the hardware walker)
  compete with application data for cache space -- a first-order effect
  in the paper.
* :class:`~repro.memory.tlb.TLB` supports speculative fills that are
  confirmed when the producing handler retires and rolled back when it is
  squashed.
"""

from repro.memory.address import PAGE_SHIFT, PAGE_SIZE, page_offset, vpn_of
from repro.memory.cache import Cache, CacheStats
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.main_memory import MainMemory
from repro.memory.page_table import PTE_VALID, PageTable
from repro.memory.tlb import PerfectTLB, TLB, TLBEntry

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "page_offset",
    "vpn_of",
    "Cache",
    "CacheStats",
    "MemoryHierarchy",
    "MainMemory",
    "PTE_VALID",
    "PageTable",
    "PerfectTLB",
    "TLB",
    "TLBEntry",
]
