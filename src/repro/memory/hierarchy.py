"""Composition of the Table 1 memory hierarchy.

``L1I`` and ``L1D`` share one L1/L2 bus and a unified L2, which talks to
DRAM over the L2/memory bus.  The facade methods
:meth:`MemoryHierarchy.load`, :meth:`MemoryHierarchy.store` and
:meth:`MemoryHierarchy.ifetch` return *data-ready cycles* for the pipeline
to use as instruction completion times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Bus, Cache, make_dram


@dataclass
class HierarchyConfig:
    """Parameters of the cache hierarchy (defaults are Table 1)."""

    l1i_size: int = 64 * 1024
    l1i_ways: int = 2
    l1i_line: int = 32
    l1d_size: int = 64 * 1024
    l1d_ways: int = 2
    l1d_line: int = 32
    #: L1 hit latency == the load-use latency of a hitting load.
    l1_latency: int = 3
    l1_mshrs: int = 64
    l1l2_bus_occupancy: int = 2
    l2_size: int = 1024 * 1024
    l2_ways: int = 4
    l2_line: int = 64
    l2_latency: int = 6
    l2_mshrs: int = 64
    l2mem_bus_occupancy: int = 11
    memory_latency: int = 80


class MemoryHierarchy:
    """The full L1I/L1D/L2/DRAM timing stack."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.dram = make_dram(cfg.memory_latency)
        self.l2_bus = Bus(cfg.l2mem_bus_occupancy)
        self.l2 = Cache(
            "L2",
            cfg.l2_size,
            cfg.l2_ways,
            cfg.l2_line,
            cfg.l2_latency,
            next_level=self.dram,
            bus_to_next=self.l2_bus,
            mshr_count=cfg.l2_mshrs,
        )
        self.l1_bus = Bus(cfg.l1l2_bus_occupancy)
        self.l1d = Cache(
            "L1D",
            cfg.l1d_size,
            cfg.l1d_ways,
            cfg.l1d_line,
            cfg.l1_latency,
            next_level=self.l2,
            bus_to_next=self.l1_bus,
            mshr_count=cfg.l1_mshrs,
        )
        self.l1i = Cache(
            "L1I",
            cfg.l1i_size,
            cfg.l1i_ways,
            cfg.l1i_line,
            cfg.l1_latency,
            next_level=self.l2,
            bus_to_next=self.l1_bus,
            mshr_count=cfg.l1_mshrs,
        )

    def load(self, addr: int, cycle: int) -> int:
        """Data-ready cycle of a load issued at ``cycle``."""
        return self.l1d.access(addr, cycle, is_write=False)

    def store(self, addr: int, cycle: int) -> int:
        """Line-owned cycle of a store issued at ``cycle``.

        The pipeline treats stores as complete after the store-port
        latency (they drain through a write buffer); the returned cycle
        only matters for bus/cache state.
        """
        return self.l1d.access(addr, cycle, is_write=True)

    def ifetch(self, addr: int, cycle: int) -> int:
        """Instructions-ready cycle of an instruction-cache access."""
        return self.l1i.access(addr, cycle)

    def reset(self) -> None:
        """Return every level to a cold state."""
        for unit in (self.l1i, self.l1d, self.l2, self.dram):
            unit.reset()
        self.l1_bus.reset()
        self.l2_bus.reset()

    # -- checkpoint protocol --------------------------------------------
    #: ``config`` is rebuilt from the MachineConfig stored in the header.
    _SNAPSHOT_TRANSIENT = ("config",)

    def snapshot_state(self, ctx) -> dict:
        return {
            "l1i": self.l1i.snapshot_state(ctx),
            "l1d": self.l1d.snapshot_state(ctx),
            "l2": self.l2.snapshot_state(ctx),
            "dram": self.dram.snapshot_state(ctx),
            "l1_bus": self.l1_bus.snapshot_state(ctx),
            "l2_bus": self.l2_bus.snapshot_state(ctx),
        }

    def restore_state(self, state: dict, ctx) -> None:
        self.l1i.restore_state(state["l1i"], ctx)
        self.l1d.restore_state(state["l1d"], ctx)
        self.l2.restore_state(state["l2"], ctx)
        self.dram.restore_state(state["dram"], ctx)
        self.l1_bus.restore_state(state["l1_bus"], ctx)
        self.l2_bus.restore_state(state["l2_bus"], ctx)
