"""Virtual-address arithmetic.

Pages are 8 KB (Alpha's base page size).  The simulated machine uses a
single flat address space with an identity virtual-to-physical mapping for
*user* pages; the page table itself occupies a reserved high range that
user code never touches and that privileged (PAL) memory operations access
physically, bypassing the TLB.  This keeps the functional store simple
while preserving every timing-relevant behaviour: TLB reach, miss rate,
and PTE loads travelling through the cache hierarchy.
"""

from __future__ import annotations

PAGE_SHIFT = 13
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

_ADDR_MASK = (1 << 64) - 1


def vpn_of(va: int) -> int:
    """Virtual page number of ``va``."""
    return (va & _ADDR_MASK) >> PAGE_SHIFT


def page_offset(va: int) -> int:
    """Offset of ``va`` within its page."""
    return va & PAGE_MASK


def page_base(va: int) -> int:
    """Base address of the page containing ``va``."""
    return va & ~PAGE_MASK & _ADDR_MASK


def word_index(va: int) -> int:
    """Word (8-byte) index of an address -- the functional-memory key."""
    return (va & _ADDR_MASK) >> 3


def align_word(va: int) -> int:
    """Clamp an address onto an 8-byte boundary (wrong-path safety)."""
    return va & ~7 & _ADDR_MASK
