"""The page table, stored in cacheable memory.

A flat (single-level) table: the PTE for virtual page ``vpn`` lives at
``base + 8 * vpn``.  The table occupies a reserved high address range that
user code cannot name; the software TLB miss handler and the hardware
walker load PTEs from it with *physical* (untranslated) accesses that
nevertheless travel through L1D/L2 -- so PTEs compete with application
data for cache space, exactly as in the paper ("page table entries are
treated like any other data and compete for space in the cache").

PTE encoding: bit 0 is the valid bit, the page frame number sits above it.
A zero word (the default for untouched memory) is an invalid PTE, so
unmapped pages fault naturally.
"""

from __future__ import annotations

from repro.memory.address import PAGE_SHIFT, vpn_of
from repro.memory.main_memory import MainMemory

#: Valid bit of a PTE.
PTE_VALID = 0x1

#: Default base of the page-table region -- far above any workload data.
DEFAULT_PT_BASE = 1 << 40

_ADDR_MASK = (1 << 64) - 1


def make_pte(pfn: int, valid: bool = True) -> int:
    """Encode a PTE from a page frame number."""
    return ((pfn << 1) | (PTE_VALID if valid else 0)) & _ADDR_MASK


def pte_pfn(pte: int) -> int:
    """Page frame number field of a PTE."""
    return (pte & _ADDR_MASK) >> 1

def pte_valid(pte: int) -> bool:
    """True when the PTE's valid bit is set."""
    return bool(pte & PTE_VALID)


class PageTable:
    """Flat page table resident in :class:`MainMemory`."""

    def __init__(self, memory: MainMemory, base: int = DEFAULT_PT_BASE) -> None:
        if base % 8 != 0:
            raise ValueError("page table base must be 8-byte aligned")
        self.memory = memory
        self.base = base
        self._mapped: set[int] = set()

    def pte_address(self, vpn: int) -> int:
        """Physical address of the PTE for page ``vpn``."""
        return (self.base + 8 * (vpn & (_ADDR_MASK >> PAGE_SHIFT))) & _ADDR_MASK

    def map(self, vpn: int, pfn: int | None = None) -> None:
        """Install a valid translation (identity mapping by default)."""
        pfn = vpn if pfn is None else pfn
        self.memory.write_word(self.pte_address(vpn), make_pte(pfn))
        self._mapped.add(vpn)

    def unmap(self, vpn: int) -> None:
        """Invalidate a translation (subsequent misses page-fault)."""
        self.memory.write_word(self.pte_address(vpn), 0)
        self._mapped.discard(vpn)

    def map_range(self, base_va: int, size_bytes: int) -> int:
        """Map every page overlapping ``[base_va, base_va + size)``.

        Returns the number of pages mapped.
        """
        first = vpn_of(base_va)
        last = vpn_of(base_va + max(size_bytes, 1) - 1)
        for vpn in range(first, last + 1):
            self.map(vpn)
        return last - first + 1

    def is_mapped(self, vpn: int) -> bool:
        """True when ``vpn`` currently has a valid PTE."""
        return vpn in self._mapped

    def read_pte(self, vpn: int) -> int:
        """Functional read of the PTE word (what a handler load returns)."""
        value = self.memory.read_word(self.pte_address(vpn))
        return int(value)

    def mapped_vpns(self) -> set[int]:
        """The set of currently mapped virtual page numbers."""
        return set(self._mapped)

    @property
    def mapped_pages(self) -> int:
        return len(self._mapped)

    # -- checkpoint protocol --------------------------------------------
    #: ``memory`` is the owning simulator's MainMemory, restored separately.
    _SNAPSHOT_TRANSIENT = ("memory",)

    def snapshot_state(self, ctx) -> dict:
        return {"base": self.base, "mapped": sorted(self._mapped)}

    def restore_state(self, state: dict, ctx) -> None:
        self.base = state["base"]
        self._mapped = set(state["mapped"])
