"""Translation lookaside buffers.

The data TLB is the structure whose misses drive the whole paper.  The
model is a fully-associative, LRU, 64-entry (configurable) TLB supporting
*speculative* fills: ``tlbwr`` executed by an in-flight handler installs
an entry immediately usable by waiting instructions, tagged with the
identity of the producing exception instance.  When the handler retires
the entry is confirmed; if the handler (or the excepting instruction) is
squashed the entry is rolled back.  Hardware-walker fills install as
confirmed entries right away -- the paper's speculative-update behaviour
that produces the gcc anomaly.

:class:`PerfectTLB` is the infinite, always-hitting TLB used for the
baseline runs that define the penalty-per-miss metric.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class TLBEntry:
    """One installed translation."""

    vpn: int
    pfn: int
    speculative: bool = False
    #: Identity of the producing exception instance (speculative fills).
    producer: int | None = None


@dataclass
class TLBStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    confirmed_fills: int = 0
    rollbacks: int = 0
    invalidations: int = 0


class TLB:
    """Fully-associative LRU TLB with speculative-fill support."""

    def __init__(self, entries: int = 64) -> None:
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.capacity = entries
        self._entries: OrderedDict[int, TLBEntry] = OrderedDict()
        self.stats = TLBStats()

    def lookup(self, vpn: int) -> TLBEntry | None:
        """Translate ``vpn``; updates LRU state and hit/miss counters."""
        self.stats.lookups += 1
        entry = self._entries.get(vpn)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(vpn)
        return entry

    def probe(self, vpn: int) -> TLBEntry | None:
        """Side-effect-free presence check (no LRU or counter update)."""
        return self._entries.get(vpn)

    def fill(
        self,
        vpn: int,
        pfn: int,
        speculative: bool = False,
        producer: int | None = None,
    ) -> TLBEntry:
        """Install a translation, evicting LRU if the TLB is full."""
        self.stats.fills += 1
        if not speculative:
            self.stats.confirmed_fills += 1
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        entry = TLBEntry(vpn=vpn, pfn=pfn, speculative=speculative, producer=producer)
        self._entries[vpn] = entry
        return entry

    def confirm(self, producer: int) -> int:
        """Commit speculative fills from ``producer``; returns the count."""
        confirmed = 0
        for entry in self._entries.values():
            if entry.speculative and entry.producer == producer:
                entry.speculative = False
                entry.producer = None
                confirmed += 1
                self.stats.confirmed_fills += 1
        return confirmed

    def rollback(self, producer: int) -> int:
        """Remove speculative fills from ``producer``; returns the count."""
        doomed = [
            vpn
            for vpn, entry in self._entries.items()
            if entry.speculative and entry.producer == producer
        ]
        for vpn in doomed:
            del self._entries[vpn]
        self.stats.rollbacks += len(doomed)
        return len(doomed)

    def invalidate(self, vpn: int) -> bool:
        """Drop the entry for ``vpn`` if present."""
        if vpn in self._entries:
            del self._entries[vpn]
            self.stats.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Drop every entry (context-switch semantics)."""
        self._entries.clear()

    def resident_vpns(self) -> list[int]:
        """Every resident VPN in LRU order (oldest first).

        Side-effect-free; used by the fault injector to pick eviction
        victims deterministically.
        """
        return list(self._entries)

    def rollback_all_speculative(self) -> int:
        """Remove every speculative entry regardless of producer.

        Quiesce support: after a drain no in-flight handler can confirm a
        speculative fill, so any survivors would leak into the checkpoint.
        """
        doomed = [
            vpn for vpn, entry in self._entries.items() if entry.speculative
        ]
        for vpn in doomed:
            del self._entries[vpn]
        self.stats.rollbacks += len(doomed)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        """Entries in LRU order (OrderedDict order is architectural)."""
        return {
            "kind": "tlb",
            "capacity": self.capacity,
            "entries": [
                [e.vpn, e.pfn, e.speculative, e.producer]
                for e in self._entries.values()
            ],
            "stats": dataclasses.asdict(self.stats),
        }

    def restore_state(self, state: dict, ctx) -> None:
        if state["kind"] != "tlb":
            raise ValueError("snapshot TLB kind mismatch: expected 'tlb'")
        self.capacity = state["capacity"]
        self._entries = OrderedDict(
            (vpn, TLBEntry(vpn=vpn, pfn=pfn, speculative=spec, producer=prod))
            for vpn, pfn, spec, prod in state["entries"]
        )
        for f in dataclasses.fields(self.stats):
            setattr(self.stats, f.name, state["stats"][f.name])


class PerfectTLB:
    """An always-hitting TLB with identity translation.

    Used for the baseline runs: the paper's penalty-per-miss metric is
    (run time - perfect-TLB run time) / number of fills.
    """

    capacity = None

    def __init__(self) -> None:
        self.stats = TLBStats()

    def lookup(self, vpn: int) -> TLBEntry:
        self.stats.lookups += 1
        self.stats.hits += 1
        return TLBEntry(vpn=vpn, pfn=vpn)

    def probe(self, vpn: int) -> TLBEntry:
        return TLBEntry(vpn=vpn, pfn=vpn)

    def fill(self, vpn: int, pfn: int, speculative: bool = False,
             producer: int | None = None) -> TLBEntry:
        return TLBEntry(vpn=vpn, pfn=pfn)

    def confirm(self, producer: int) -> int:
        return 0

    def rollback(self, producer: int) -> int:
        return 0

    def invalidate(self, vpn: int) -> bool:
        return False

    def flush(self) -> None:
        pass

    def rollback_all_speculative(self) -> int:
        return 0

    def resident_vpns(self) -> list[int]:
        """No storage to corrupt: TLB faults are no-ops on a perfect TLB."""
        return []

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        return {"kind": "perfect", "stats": dataclasses.asdict(self.stats)}

    def restore_state(self, state: dict, ctx) -> None:
        if state["kind"] != "perfect":
            raise ValueError("snapshot TLB kind mismatch: expected 'perfect'")
        for f in dataclasses.fields(self.stats):
            setattr(self.stats, f.name, state["stats"][f.name])
