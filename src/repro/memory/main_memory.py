"""Functional main memory.

A sparse, word-granular value store.  Timing lives entirely in
:mod:`repro.memory.cache` / :mod:`repro.memory.hierarchy`; this class only
answers "what value is at this address?".  Unwritten words read as zero,
which doubles as the invalid-PTE encoding for unmapped pages.
"""

from __future__ import annotations

from typing import Mapping

from repro.memory.address import word_index


class MainMemory:
    """Sparse word-addressable memory holding native Python values."""

    __slots__ = ("_words",)

    def __init__(self, image: Mapping[int, int | float] | None = None) -> None:
        #: word index (``va >> 3``) -> value.
        self._words: dict[int, int | float] = dict(image) if image else {}

    def read_word(self, va: int) -> int | float:
        """Value of the aligned 8-byte word containing ``va`` (0 if unset)."""
        return self._words.get(word_index(va), 0)

    def write_word(self, va: int, value: int | float) -> None:
        """Store ``value`` into the aligned 8-byte word containing ``va``."""
        self._words[word_index(va)] = value

    def load_image(self, image: Mapping[int, int | float]) -> None:
        """Merge a word-indexed initial image (as built by a Program)."""
        self._words.update(image)

    def __len__(self) -> int:
        return len(self._words)

    def snapshot(self) -> dict[int, int | float]:
        """Copy of the current contents (for architectural-state checks)."""
        return dict(self._words)

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        """Encode contents as sorted [word_index, value] pairs."""
        return {"words": [[k, self._words[k]] for k in sorted(self._words)]}

    def restore_state(self, state: dict, ctx) -> None:
        self._words = {k: v for k, v in state["words"]}
