"""repro -- a reproduction of *The Use of Multithreading for Exception
Handling* (Zilles, Emer, Sohi; MICRO-32, 1999).

The package is a from-scratch, execution-driven SMT cycle simulator plus
the paper's exception architectures:

* :mod:`repro.isa` -- the RISC ISA and assembler,
* :mod:`repro.memory` -- caches, page table, TLBs,
* :mod:`repro.branch` -- YAGS / cascaded-indirect / RAS prediction,
* :mod:`repro.pipeline` -- the dynamically scheduled SMT core,
* :mod:`repro.exceptions` -- traditional, multithreaded, hardware, and
  quick-start exception handling (the core contribution),
* :mod:`repro.workloads` -- synthetic stand-ins for the paper's eight
  benchmarks,
* :mod:`repro.sim` -- configuration, runner, and the penalty-per-miss
  metric,
* :mod:`repro.experiments` -- one harness per figure/table of the paper.

Quickstart::

    from repro import MachineConfig, Simulator, build_benchmark, run_pair

    config = MachineConfig(mechanism="multithreaded", idle_threads=1)
    _, _, penalty = run_pair(lambda: build_benchmark("compress"),
                             config, user_insts=20_000)
    print(f"{penalty.penalty_per_miss:.1f} penalty cycles per TLB miss")
"""

from repro.sim.config import FUPool, MachineConfig
from repro.sim.metrics import PenaltyResult, penalty_per_miss, run_pair
from repro.sim.simulator import SimResult, Simulator
from repro.workloads.suite import BENCHMARKS, build_benchmark

__version__ = "1.0.0"

__all__ = [
    "FUPool",
    "MachineConfig",
    "PenaltyResult",
    "penalty_per_miss",
    "run_pair",
    "SimResult",
    "Simulator",
    "BENCHMARKS",
    "build_benchmark",
    "__version__",
]
