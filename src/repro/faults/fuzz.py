"""Differential fuzzing: every mechanism, under fire, must agree.

The oracle stack, strongest first:

1. **Architectural equivalence** -- the exception architecture changes
   *when* things happen, never *what* happens.  A seeded program run
   under the perfect machine defines the reference digest (user-visible
   registers plus non-page-table memory); every real mechanism, with the
   fault injector perturbing it mid-run, must converge to the same
   digest.
2. **Sanitizer cleanliness** -- each faulted run executes with the
   :mod:`repro.analysis.sanitizer` attached; any retirement-order or
   uop-lifecycle violation is a failure even when the digest survives.
3. **Termination** -- generated programs halt by construction, so a run
   exceeding its cycle bound is a hang, reported as a divergence.

``--engine-diff`` swaps in a fourth, stricter oracle: instead of
comparing mechanisms against the perfect reference, every mechanism's
faulted run is executed twice -- once under the reference cycle kernel
and once under the batched engine's fused kernel
(:mod:`repro.engine.core`) -- and the two runs must agree *exactly*:
same digest, same cycle count, same value for every pipeline counter,
same injected-fault totals.  The engines are bit-identical by contract,
so any daylight between them is an engine bug.

Programs come from :mod:`repro.faults.progen` and are validated with the
:mod:`repro.analysis` guest lint before use (an unlintable program is a
generator bug, reported as such rather than fuzzed).

Failures shrink to minimal reproducers: the op-IR makes deletion-based
reduction safe (delete ops, re-render, re-check), followed by iteration-
count reduction.  Shrunken cases land in an artifacts directory with the
program source and a JSON manifest.

``DEFECTS`` holds intentionally-broken machine mutations (test-only) used
to prove the oracle actually catches bugs -- ``--defect pfn-off-by-one``
silently skews every 7th TLB fill and must be caught and shrunk.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Severity
from repro.analysis.guest import analyze_source
from repro.analysis.sanitizer import SanitizerError
from repro.faults.config import FAULT_KINDS
from repro.faults.progen import (
    CAUSES,
    GeneratedProgram,
    Rng,
    generate_program,
    render_program,
)
from repro.isa.registers import SHADOW_BASE
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import make_program

__all__ = [
    "CAUSES",
    "CAUSE_ROTATION",
    "DEFECTS",
    "Divergence",
    "FuzzCase",
    "FuzzReport",
    "arch_digest",
    "fuzz",
    "make_case",
    "overrides_for_causes",
    "run_case",
    "run_engine_diff_case",
    "shrink_case",
]

#: Every configuration a case runs under (reference first).
MECHANISMS = ("perfect", "traditional", "multithreaded", "hardware", "quickstart")

#: Cycle bound for one run; generated programs finish in a few thousand
#: cycles, so hitting this means a hang (deadlocked machine), not load.
DEFAULT_MAX_CYCLES = 2_000_000


# ---------------------------------------------------------------------------
# Test-only machine defects (oracle self-tests).
# ---------------------------------------------------------------------------
def _defect_pfn_off_by_one(sim: Simulator) -> None:
    """Silently skew every 7th DTLB fill: classic wrong-translation bug.

    Loads and stores through the skewed entry touch the wrong physical
    page, so the memory digest diverges from the perfect reference while
    nothing crashes -- exactly the class of bug only differential
    checking catches.
    """
    if sim.config.mechanism == "perfect":
        return
    tlb = sim.dtlb
    orig_fill = tlb.fill
    fills = {"n": 0}

    def fill(vpn, pfn, speculative=False, producer=None):
        fills["n"] += 1
        if fills["n"] % 7 == 0:
            pfn += 1
        return orig_fill(vpn, pfn, speculative=speculative, producer=producer)

    tlb.fill = fill  # type: ignore[method-assign]


class _LostStoreMemory:
    """A delegating memory proxy that silently drops every 23rd write.

    ``MainMemory`` is slotted, so its methods cannot be monkeypatched
    per-instance; the proxy replaces ``core.memory`` (the retire-path
    write target) while the digest still reads the shared underlying
    words via ``sim.memory``.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._writes = 0

    def write_word(self, addr, value) -> None:
        self._writes += 1
        if self._writes % 23 == 0:
            return
        self._inner.write_word(addr, value)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _defect_lost_store(sim: Simulator) -> None:
    """Drop every 23rd memory write: silent store loss."""
    if sim.config.mechanism == "perfect":
        return
    sim.core.memory = _LostStoreMemory(sim.core.memory)


#: name -> mutation applied to each non-reference machine before running.
DEFECTS = {
    "pfn-off-by-one": _defect_pfn_off_by_one,
    "lost-store": _defect_lost_store,
}


# ---------------------------------------------------------------------------
# Case construction.
# ---------------------------------------------------------------------------
@dataclass
class FuzzCase:
    """One differential trial: a program plus a fault schedule."""

    seed: int
    program: GeneratedProgram
    faults: str
    #: Exception causes the case targets (drives handler install).
    causes: tuple = ()
    #: MachineConfig overrides applied to *every* run of the case,
    #: including the perfect reference (itlb_entries, align_check, ...).
    config_overrides: dict = field(default_factory=dict)

    def rendered(self) -> str:
        return self.program.source


#: Per-seed cause-set rotation for the default corpus: the plain
#: pre-scenario mix, each scenario cause in isolation, then everything
#: at once.  ``repro-fuzz`` therefore covers every restartable cause
#: with no extra flags.
CAUSE_ROTATION = (
    (),
    ("brev", "swint"),
    ("unaligned",),
    ("itlb_miss",),
    ("itlb_miss", "unaligned", "brev", "swint"),
)


def overrides_for_causes(causes: tuple) -> dict:
    """The MachineConfig knobs a cause set needs to actually fire."""
    overrides: dict = {}
    if "itlb_miss" in causes:
        overrides["itlb_entries"] = 1  # thrash: the loop spans 2 pages
    if "unaligned" in causes:
        overrides["align_check"] = True
    return overrides


def make_fault_spec(seed: int) -> str:
    """A seeded all-kinds fault spec with jittered periods.

    Every kind is always present -- coverage beats sparsity at this
    budget -- but the periods (and hence the interleavings) vary by
    seed so different cases stress different overlaps.
    """
    rng = Rng(seed ^ 0xFA17)
    parts = [f"seed:{seed & 0xFFFF_FFFF}"]
    base_periods = {
        "force_miss": 30,
        "tlb_evict": 70,
        "pte_corrupt": 90,
        "handler_fault": 50,
        "mem_delay": 20,
        "bp_poison": 80,
    }
    for kind in FAULT_KINDS:
        period = base_periods[kind] + rng.below(base_periods[kind])
        if kind == "mem_delay":
            parts.append(f"{kind}:{period}:{40 + 8 * rng.below(12)}")
        else:
            parts.append(f"{kind}:{period}")
    return ",".join(parts)


def make_case(
    seed: int,
    length: int = 36,
    iters: int = 24,
    causes: tuple | None = None,
) -> FuzzCase:
    """Build one case; ``causes=None`` rotates :data:`CAUSE_ROTATION`
    by seed so the default corpus exercises every restartable cause."""
    if causes is None:
        causes = CAUSE_ROTATION[seed % len(CAUSE_ROTATION)]
    causes = tuple(causes)
    return FuzzCase(
        seed=seed,
        program=generate_program(seed, length=length, iters=iters, causes=causes),
        faults=make_fault_spec(seed),
        causes=causes,
        config_overrides=overrides_for_causes(causes),
    )


def lint_program(source: str, unit: str) -> list[str]:
    """Guest-lint error codes for ``source`` (the validity oracle)."""
    return [
        f"{d.code}: {d.message}"
        for d in analyze_source(source, unit=unit)
        if d.severity is Severity.ERROR
    ]


# ---------------------------------------------------------------------------
# Running and digesting.
# ---------------------------------------------------------------------------
def arch_digest(sim: Simulator) -> tuple:
    """User-visible architectural state: registers + data memory.

    Shadow (handler-scratch) integer registers and page-table words are
    excluded -- both legitimately differ across mechanisms (fault fix-up
    rewrites PTE valid bits; shadow registers are handler working state).
    FP registers are compared by IEEE-754 bit pattern: generated FP
    chains routinely produce NaN, and ``nan != nan`` would make even a
    bit-identical pair of runs look divergent.
    """
    pt_base = sim.core.page_table.base
    regs = []
    for thread in sim.core.threads:
        if thread.program is not None and not thread.is_exception_thread:
            regs.append(
                (
                    thread.tid,
                    tuple(thread.arch.ints[:SHADOW_BASE]),
                    tuple(
                        struct.pack("<d", value) for value in thread.arch.fps
                    ),
                )
            )
    mem = tuple(
        (idx, value)
        for idx, value in sorted(sim.memory.snapshot().items())
        if (idx << 3) < pt_base
    )
    return (tuple(regs), mem)


@dataclass
class RunOutcome:
    mechanism: str
    ok: bool
    reason: str = ""  # "", "sanitizer", "hang"
    detail: str = ""
    cycles: int = 0
    digest: tuple | None = None
    fault_counts: dict = field(default_factory=dict)
    #: Every :class:`~repro.sim.stats.SimStats` counter; only populated
    #: (and only compared) by the engine-diff oracle.
    stats: dict = field(default_factory=dict)


def run_program(
    case: FuzzCase,
    mechanism: str,
    faults: str,
    defect: str | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    core_cls=None,
) -> RunOutcome:
    """One simulation to halt; sanitizer attached, faults per spec.

    ``core_cls`` swaps in an engine backend's core class (engine-diff
    mode); the run is driven through ``run_to`` either way so both
    kernels execute their production batch-stepping path, not just
    single ``step()`` calls.
    """
    program = make_program(
        case.program.source,
        regions=case.program.regions,
        scenario_causes=bool(case.causes),
    )
    config = MachineConfig(
        mechanism=mechanism,
        faults=faults,
        sanitize=True,
        **case.config_overrides,
    )
    sim = Simulator(program, config, core_cls=core_cls)
    if defect is not None:
        DEFECTS[defect](sim)
    core = sim.core
    user_threads = [
        t
        for t in core.threads
        if t.program is not None and not t.is_exception_thread
    ]
    # Unreachable retired_user targets make halting the only way a
    # thread satisfies the watch; run_to can still return early while a
    # thread sits in a non-NORMAL state (the watch treats that as
    # satisfied), so the driver nudges one step and re-enters.  Chunked
    # re-entry is bit-identical to one straight call (see run_to).
    watch = [(t, max_cycles + 1) for t in user_threads]

    def finished() -> bool:
        return all(t.halted for t in user_threads)

    try:
        while core.cycle < max_cycles and not finished():
            before = core.cycle
            core.run_to(watch, max_cycles)
            if core.cycle == before and not finished():
                core.step()
        if not finished():
            return RunOutcome(
                mechanism,
                ok=False,
                reason="hang",
                detail=f"no halt within {max_cycles} cycles",
                cycles=core.cycle,
                fault_counts=dict(core.faults.counts) if core.faults else {},
            )
    except SanitizerError as exc:
        return RunOutcome(
            mechanism,
            ok=False,
            reason="sanitizer",
            detail=str(exc),
            cycles=core.cycle,
            fault_counts=dict(core.faults.counts) if core.faults else {},
        )
    return RunOutcome(
        mechanism,
        ok=True,
        cycles=core.cycle,
        digest=arch_digest(sim),
        fault_counts=dict(core.faults.counts) if core.faults else {},
        stats={
            "sim": core.stats.as_dict(),
            "mech": (
                dataclasses.asdict(sim.mechanism.stats)
                if sim.mechanism
                else None
            ),
            "tlb": dataclasses.asdict(sim.dtlb.stats),
            "branch": dataclasses.asdict(sim.bpu.stats),
            "l1i": dataclasses.asdict(sim.hierarchy.l1i.stats),
            "l1d": dataclasses.asdict(sim.hierarchy.l1d.stats),
            "l2": dataclasses.asdict(sim.hierarchy.l2.stats),
        },
    )


@dataclass
class Divergence:
    """One oracle violation in one mechanism's faulted run."""

    mechanism: str
    reason: str  # "digest" | "sanitizer" | "hang" | "lint"
    detail: str = ""


@dataclass
class CaseResult:
    case: FuzzCase
    divergences: list[Divergence] = field(default_factory=list)
    cycles: int = 0
    fault_counts: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences


def run_case(
    case: FuzzCase,
    defect: str | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> CaseResult:
    """The full differential trial for one case.

    The perfect machine runs fault-free to define the reference digest;
    every mechanism (perfect included) then runs with the fault schedule
    active and must match it.
    """
    result = CaseResult(case=case)
    lint_errors = lint_program(case.program.source, unit=f"fuzz-{case.seed}")
    if lint_errors:
        result.divergences.append(
            Divergence("generator", "lint", "; ".join(lint_errors))
        )
        return result

    reference = run_program(case, "perfect", faults="", max_cycles=max_cycles)
    result.cycles += reference.cycles
    if not reference.ok:
        result.divergences.append(
            Divergence("perfect", reference.reason, reference.detail)
        )
        return result

    totals = {kind: 0 for kind in FAULT_KINDS}
    for mechanism in MECHANISMS:
        outcome = run_program(
            case, mechanism, faults=case.faults, defect=defect,
            max_cycles=max_cycles,
        )
        result.cycles += outcome.cycles
        for kind, count in outcome.fault_counts.items():
            totals[kind] += count
        if not outcome.ok:
            result.divergences.append(
                Divergence(mechanism, outcome.reason, outcome.detail)
            )
        elif outcome.digest != reference.digest:
            result.divergences.append(
                Divergence(
                    mechanism,
                    "digest",
                    _digest_delta(reference.digest, outcome.digest),
                )
            )
    result.fault_counts = totals
    return result


def run_engine_diff_case(
    case: FuzzCase,
    defect: str | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> CaseResult:
    """Differential trial between engine *backends* for one case.

    Every mechanism's faulted run executes twice -- under the reference
    cycle kernel and under the batched engine's fused kernel -- and the
    pair must agree exactly: same outcome, same digest, same cycle
    count, same value for every counter, same injected-fault totals.
    (``defect`` is accepted for signature compatibility with
    :func:`run_case` but both kernels receive it, so it cannot cause an
    engine divergence by itself.)
    """
    from repro.engine import core_class

    batched_cls = core_class("batched")
    result = CaseResult(case=case)
    lint_errors = lint_program(case.program.source, unit=f"fuzz-{case.seed}")
    if lint_errors:
        result.divergences.append(
            Divergence("generator", "lint", "; ".join(lint_errors))
        )
        return result

    totals = {kind: 0 for kind in FAULT_KINDS}
    for mechanism in MECHANISMS:
        ref = run_program(
            case, mechanism, faults=case.faults, defect=defect,
            max_cycles=max_cycles,
        )
        bat = run_program(
            case, mechanism, faults=case.faults, defect=defect,
            max_cycles=max_cycles, core_cls=batched_cls,
        )
        result.cycles += ref.cycles + bat.cycles
        for kind, count in ref.fault_counts.items():
            totals[kind] += count
        delta = _engine_delta(ref, bat)
        if delta:
            result.divergences.append(Divergence(mechanism, "engine", delta))
    result.fault_counts = totals
    return result


def _engine_delta(ref: RunOutcome, bat: RunOutcome) -> str:
    """Where a batched-kernel run disagrees with its reference twin
    (empty string when they match exactly)."""
    if (ref.ok, ref.reason) != (bat.ok, bat.reason):
        return (
            f"outcome: reference {ref.reason or 'ok'!s} "
            f"vs batched {bat.reason or 'ok'!s} ({bat.detail})"
        )
    parts = []
    if ref.detail != bat.detail:
        parts.append(f"detail {ref.detail!r} vs {bat.detail!r}")
    if ref.cycles != bat.cycles:
        parts.append(f"cycles {ref.cycles} vs {bat.cycles}")
    if ref.digest != bat.digest:
        parts.append("digest: " + _digest_delta(ref.digest, bat.digest))
    if ref.fault_counts != bat.fault_counts:
        parts.append(
            f"fault counts {ref.fault_counts} vs {bat.fault_counts}"
        )
    for group in ref.stats:
        if ref.stats[group] != bat.stats.get(group):
            bad = sorted(
                k
                for k in (ref.stats[group] or {})
                if (ref.stats[group] or {}).get(k)
                != (bat.stats.get(group) or {}).get(k)
            ) if isinstance(ref.stats[group], dict) else []
            parts.append(f"{group} counters differ ({bad[:4]})")
    return "; ".join(parts)


def _digest_delta(ref: tuple, got: tuple) -> str:
    """A short human-readable summary of where two digests differ."""
    ref_regs, ref_mem = ref
    got_regs, got_mem = got
    parts = []
    if ref_regs != got_regs:
        for (tid, ints_a, fps_a), (_, ints_b, fps_b) in zip(ref_regs, got_regs):
            bad_ints = [i for i, (a, b) in enumerate(zip(ints_a, ints_b)) if a != b]
            bad_fps = [i for i, (a, b) in enumerate(zip(fps_a, fps_b)) if a != b]
            if bad_ints or bad_fps:
                parts.append(f"t{tid} regs int{bad_ints[:4]} fp{bad_fps[:4]}")
    if ref_mem != got_mem:
        ref_map, got_map = dict(ref_mem), dict(got_mem)
        bad = [k for k in sorted(set(ref_map) | set(got_map))
               if ref_map.get(k) != got_map.get(k)]
        parts.append(
            f"{len(bad)} mem words, first at {hex(bad[0] << 3) if bad else '?'}"
        )
    return "; ".join(parts) or "digest mismatch"


# ---------------------------------------------------------------------------
# Shrinking.
# ---------------------------------------------------------------------------
def _still_fails(
    case: FuzzCase,
    defect: str | None,
    max_cycles: int,
    engine_diff: bool = False,
) -> bool:
    if lint_program(case.program.source, unit="shrink"):
        return False  # reduction broke validity; reject it
    runner = run_engine_diff_case if engine_diff else run_case
    return not runner(case, defect=defect, max_cycles=max_cycles).ok


def _with_ops(case: FuzzCase, ops: list, iters: int) -> FuzzCase:
    program = dataclasses.replace(
        case.program,
        ops=list(ops),
        iters=iters,
        source=render_program(
            list(ops),
            case.program.seed,
            iters,
            itlb_stride=case.program.itlb_stride,
        ),
    )
    return dataclasses.replace(case, program=program)


def shrink_case(
    case: FuzzCase,
    defect: str | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    max_attempts: int = 96,
    engine_diff: bool = False,
) -> tuple[FuzzCase, int]:
    """Greedy delta-debugging over the op IR, then the iteration count.

    Removes op chunks (halves down to singletons) as long as the case
    still fails, then halves ``iters``.  Returns the reduced case and
    the number of candidate evaluations spent.  ``engine_diff`` shrinks
    against the engine-backend oracle instead of the mechanism one.
    """
    attempts = 0
    best = case

    # Phase 1: iteration count (cheapest lever: shorter runs first).
    iters = best.program.iters
    while iters > 1 and attempts < max_attempts:
        candidate = _with_ops(best, best.program.ops, max(1, iters // 2))
        attempts += 1
        if _still_fails(candidate, defect, max_cycles, engine_diff):
            best = candidate
            iters = best.program.iters
        else:
            break

    # Phase 2: op-chunk deletion.
    chunk = max(1, len(best.program.ops) // 2)
    while chunk >= 1 and attempts < max_attempts:
        removed_any = False
        index = 0
        while index < len(best.program.ops) and attempts < max_attempts:
            ops = best.program.ops
            candidate_ops = ops[:index] + ops[index + chunk:]
            if not candidate_ops:
                index += chunk
                continue
            candidate = _with_ops(best, candidate_ops, best.program.iters)
            attempts += 1
            if _still_fails(candidate, defect, max_cycles, engine_diff):
                best = candidate
                removed_any = True
            else:
                index += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = chunk // 2 if chunk > 1 else (chunk if removed_any else 0)

    # Phase 3: retry iteration halving on the smaller body.
    iters = best.program.iters
    while iters > 1 and attempts < max_attempts:
        candidate = _with_ops(best, best.program.ops, max(1, iters // 2))
        attempts += 1
        if _still_fails(candidate, defect, max_cycles, engine_diff):
            best = candidate
            iters = best.program.iters
        else:
            break
    return best, attempts


# ---------------------------------------------------------------------------
# The fuzzing loop.
# ---------------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Aggregated corpus statistics for one fuzzing session."""

    seed: int
    programs: int = 0
    cycles: int = 0
    elapsed_seconds: float = 0.0
    fault_counts: dict = field(default_factory=lambda: {k: 0 for k in FAULT_KINDS})
    failures: list = field(default_factory=list)
    defect: str | None = None
    engine_diff: bool = False
    #: Cause filter the session was pinned to (None = seed rotation).
    causes: list | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "programs": self.programs,
            "cycles": self.cycles,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "fault_counts": dict(self.fault_counts),
            "defect": self.defect,
            "engine_diff": self.engine_diff,
            "causes": list(self.causes) if self.causes is not None else None,
            "failures": list(self.failures),
        }


def _write_artifacts(
    artifacts: Path,
    case: FuzzCase,
    shrunk: FuzzCase,
    result: CaseResult,
    attempts: int,
    defect: str | None,
) -> Path:
    case_dir = artifacts / f"case_{case.seed}"
    case_dir.mkdir(parents=True, exist_ok=True)
    (case_dir / "program.s").write_text(case.program.source)
    (case_dir / "shrunken.s").write_text(shrunk.program.source)
    manifest = {
        "seed": case.seed,
        "faults": case.faults,
        "causes": list(case.causes),
        "config_overrides": dict(case.config_overrides),
        "defect": defect,
        "divergences": [dataclasses.asdict(d) for d in result.divergences],
        "original_ops": len(case.program.ops),
        "shrunken_ops": len(shrunk.program.ops),
        "original_iters": case.program.iters,
        "shrunken_iters": shrunk.program.iters,
        "shrink_attempts": attempts,
        "repro": {
            "source": "shrunken.s",
            "regions": shrunk.program.regions,
            "faults": shrunk.faults,
            "causes": list(shrunk.causes),
            "config_overrides": dict(shrunk.config_overrides),
            "mechanisms": [d.mechanism for d in result.divergences],
        },
    }
    (case_dir / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")
    return case_dir


def fuzz(
    seed: int = 0,
    budget_seconds: float | None = None,
    max_programs: int | None = None,
    artifacts: str | os.PathLike | None = None,
    defect: str | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    shrink: bool = True,
    engine_diff: bool = False,
    causes: tuple | None = None,
    log=None,
) -> FuzzReport:
    """Run differential trials until the budget or program cap is hit.

    Stops at the *first* failing case (after shrinking and writing its
    artifacts): one minimal reproducer beats a pile of noisy ones, and
    CI wants fast signal.  ``engine_diff`` fuzzes the batched engine
    kernel against the reference kernel (:func:`run_engine_diff_case`)
    instead of the mechanisms against each other.  ``causes`` pins every
    case to one cause set (``None`` rotates the default corpus through
    :data:`CAUSE_ROTATION`).
    """
    if defect is not None and defect not in DEFECTS:
        raise ValueError(
            f"unknown defect {defect!r}; known: {', '.join(sorted(DEFECTS))}"
        )
    if causes is not None:
        unknown = sorted(set(causes) - set(CAUSES))
        if unknown:
            raise ValueError(
                f"unknown causes {unknown}; known: {', '.join(CAUSES)}"
            )
    if budget_seconds is None and max_programs is None:
        max_programs = 20
    report = FuzzReport(
        seed=seed, defect=defect, engine_diff=engine_diff,
        causes=list(causes) if causes is not None else None,
    )
    start = time.monotonic()
    case_index = 0
    while True:
        if max_programs is not None and report.programs >= max_programs:
            break
        if (
            budget_seconds is not None
            and time.monotonic() - start >= budget_seconds
        ):
            break
        case = make_case(seed + case_index, causes=causes)
        case_index += 1
        run_one = run_engine_diff_case if engine_diff else run_case
        result = run_one(case, defect=defect, max_cycles=max_cycles)
        report.programs += 1
        report.cycles += result.cycles
        for kind, count in result.fault_counts.items():
            report.fault_counts[kind] += count
        if log is not None:
            status = "ok" if result.ok else "FAIL"
            log(
                f"case {case.seed}: {status} "
                f"({result.cycles} cycles, faults={sum(result.fault_counts.values())})"
            )
        if result.ok:
            continue
        shrunk, attempts = (
            shrink_case(
                case, defect=defect, max_cycles=max_cycles,
                engine_diff=engine_diff,
            )
            if shrink
            else (case, 0)
        )
        failure = {
            "seed": case.seed,
            "faults": case.faults,
            "causes": list(case.causes),
            "divergences": [dataclasses.asdict(d) for d in result.divergences],
            "shrunken_ops": len(shrunk.program.ops),
            "original_ops": len(case.program.ops),
        }
        if artifacts is not None:
            case_dir = _write_artifacts(
                Path(artifacts), case, shrunk, result, attempts, defect
            )
            failure["artifacts"] = str(case_dir)
            if log is not None:
                log(f"reproducer written to {case_dir}")
        report.failures.append(failure)
        break
    report.elapsed_seconds = time.monotonic() - start
    return report
