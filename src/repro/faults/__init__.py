"""Deterministic fault injection and differential fuzzing.

The paper's argument is that exception handling must survive adversity:
nested, mispredicted, and back-to-back TLB misses.  This package makes
adversity a first-class, *reproducible* machine input:

* :mod:`repro.faults.config` parses ``REPRO_FAULTS`` /
  ``MachineConfig.faults`` specs into a :class:`~repro.faults.config.FaultPlan`;
* :mod:`repro.faults.injector` perturbs a running :class:`SMTCore`
  (forced TLB misses, TLB eviction, PTE valid-bit corruption,
  handler-thread faults, delayed memory responses, branch-predictor
  poisoning) on deterministic, seeded schedules;
* :mod:`repro.faults.progen` generates seeded random-but-lintable guest
  programs (validity oracle: :func:`repro.analysis.analyze_program`);
* :mod:`repro.faults.fuzz` runs every mechanism on each generated
  program, compares architectural digests, and shrinks divergences to
  minimal reproducers (``python -m repro.faults`` / ``repro-fuzz``).

Every injected fault is architecture-preserving by construction (see
``docs/ROBUSTNESS.md``): a faulted run retires the same architectural
state as a fault-free run, only slower.  That is what lets the
differential fuzzer assert bit-identical results across mechanisms even
while faults fire.
"""

from repro.faults.config import FAULT_KINDS, FaultPlan, FaultRule, parse_faults
from repro.faults.injector import FaultInjector

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "parse_faults",
]
