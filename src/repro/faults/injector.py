"""The deterministic fault injector: seeded adversity for a live core.

Attached as ``core.faults`` when ``MachineConfig.faults`` (or the
``REPRO_FAULTS`` environment variable) holds a non-empty spec; ``None``
otherwise, so a fault-free machine pays one ``is not None`` check per
hook site and is bit-identical to a machine built before this package
existed (the ``listeners`` / ``_sanitizer`` pattern).

Every fault is **architecture-preserving**: it may add misses, squashes,
handler re-executions, or latency, but never changes the program's
retired register or data-memory state.  Corruption is therefore modeled
the way real hardware surfaces it -- as *detected* faults that force
re-handling (a parity-style entry drop, a cleared PTE valid bit that the
handler's page-in path repairs) -- never as silent wrong data.  See
``docs/ROBUSTNESS.md`` for the full taxonomy.

Schedules are driven by event counters (TLB lookups, retirements, load
issues, branch predictions), not cycle numbers, so they commute with the
idle-cycle fast-forward and fire identically under the serial and
parallel runners.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.config import FAULT_KINDS, FaultPlan, parse_faults, splitmix64
from repro.memory.address import vpn_of
from repro.memory.page_table import PTE_VALID, pte_valid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.core import SMTCore
    from repro.pipeline.thread import ThreadContext
    from repro.pipeline.uop import Uop

__all__ = ["FaultInjector"]

#: Salt distinguishing victim-selection hashes from schedule hashes.
_VICTIM_SALT = 0x5DEECE66D


class FaultInjector:
    """Perturb one :class:`SMTCore` on deterministic, seeded schedules.

    ``counts`` tallies *effective* injections per kind (a ``force_miss``
    that found nothing resident, or a ``handler_fault`` with no handler
    in flight, is a no-op and is not counted), which is what the tests
    and fuzz manifests assert against.
    """

    def __init__(self, core: "SMTCore", plan: FaultPlan | str) -> None:
        if isinstance(plan, str):
            plan = parse_faults(plan)
        self.core = core
        self.plan = plan
        self.seed = plan.seed
        #: kind -> trigger-stream events seen so far.
        self.events = {kind: 0 for kind in FAULT_KINDS}
        #: kind -> effective injections so far.
        self.counts = {kind: 0 for kind in FAULT_KINDS}
        self._rules = {rule.kind: rule for rule in plan.rules}
        self._phases = {
            rule.kind: rule.phase(plan.seed) for rule in plan.rules
        }

    # ------------------------------------------------------------------
    def _fire(self, kind: str) -> bool:
        """Advance ``kind``'s trigger stream; True when it should fire."""
        rule = self._rules.get(kind)
        if rule is None:
            return False
        tick = self.events[kind]
        self.events[kind] = tick + 1
        return tick % rule.period == self._phases[kind]

    def _choice(self, kind: str, n: int) -> int:
        """Seeded victim index in ``[0, n)``, distinct per injection."""
        salt = FAULT_KINDS.index(kind) + 1
        x = splitmix64(
            self.seed * _VICTIM_SALT + salt * 0x9E3779B9 + self.counts[kind]
        )
        return x % n

    def _emit(
        self, kind: str, now: int, tid: int, seq: int, pc: int, detail: str
    ) -> None:
        self.counts[kind] += 1
        bus = self.core.listeners
        if bus is not None:
            bus.fault(now, tid, seq, pc, kind, detail)

    # ------------------------------------------------------------------
    # Hooks, one per trigger stream (called from SMTCore).
    # ------------------------------------------------------------------
    def on_mem_access(self, uop: "Uop", addr: int, now: int) -> None:
        """Before a user-mode DTLB lookup: maybe force it to miss."""
        if self._fire("force_miss"):
            vpn = vpn_of(addr)
            if self.core.dtlb.invalidate(vpn):
                self._emit(
                    "force_miss", now, uop.thread_id, uop.seq, uop.pc,
                    f"vpn={vpn:#x}",
                )

    def load_delay(self, uop: "Uop", addr: int, now: int) -> int:
        """Extra cycles for an issued load's memory response."""
        if self._fire("mem_delay"):
            delay = self._rules["mem_delay"].arg
            self._emit(
                "mem_delay", now, uop.thread_id, uop.seq, uop.pc,
                f"addr={addr:#x} cycles={delay}",
            )
            return delay
        return 0

    def poison_branch(self, uop: "Uop", now: int) -> None:
        """After a conditional-branch prediction: maybe flip it."""
        if self._fire("bp_poison"):
            uop.pred_taken = not uop.pred_taken
            if uop.pred_taken:
                # Conditional branches are direct: the taken target is
                # architectural, only the direction was predicted.
                uop.pred_target = uop.inst.target
            self._emit(
                "bp_poison", now, uop.thread_id, uop.seq, uop.pc,
                f"taken={uop.pred_taken}",
            )

    def on_retire(self, thread: "ThreadContext", uop: "Uop", now: int) -> None:
        """After each retirement: state-corruption and handler faults."""
        if self._fire("tlb_evict"):
            self._evict_entry(thread, uop, now)
        if self._fire("pte_corrupt"):
            self._corrupt_pte(thread, uop, now)
        if self._fire("handler_fault"):
            mechanism = self.core.mechanism
            if mechanism is not None:
                detail = mechanism.inject_handler_fault(now)
                if detail is not None:
                    self._emit(
                        "handler_fault", now, thread.tid, uop.seq, uop.pc,
                        detail,
                    )

    # ------------------------------------------------------------------
    def _evict_entry(self, thread: "ThreadContext", uop: "Uop", now: int) -> None:
        """Parity-style detected corruption: drop one resident entry."""
        dtlb = self.core.dtlb
        vpns = dtlb.resident_vpns()
        if not vpns:  # PerfectTLB (no storage) or an empty TLB
            return
        vpn = vpns[self._choice("tlb_evict", len(vpns))]
        if dtlb.invalidate(vpn):
            self._emit(
                "tlb_evict", now, thread.tid, uop.seq, uop.pc, f"vpn={vpn:#x}"
            )

    def _corrupt_pte(self, thread: "ThreadContext", uop: "Uop", now: int) -> None:
        """Clear a mapped PTE's valid bit (and shoot down its entry).

        Self-healing by construction: the next access to the page misses,
        the handler's ``hardexc`` page-fault path re-sets the valid bit
        and re-installs the same identity translation, so architectural
        state is preserved while the nested-exception machinery gets
        exercised.  Pages whose PTE is already invalid are left alone.
        """
        pt = self.core.page_table
        vpns = sorted(pt.mapped_vpns())
        if not vpns:
            return
        vpn = vpns[self._choice("pte_corrupt", len(vpns))]
        pte_addr = pt.pte_address(vpn)
        pte = int(self.core.memory.read_word(pte_addr))
        if not pte_valid(pte):
            return
        self.core.memory.write_word(pte_addr, pte & ~PTE_VALID)
        self.core.dtlb.invalidate(vpn)
        self._emit(
            "pte_corrupt", now, thread.tid, uop.seq, uop.pc, f"vpn={vpn:#x}"
        )

    # -- checkpoint protocol --------------------------------------------
    #: Rebuilt from the spec (config/env) at construction: not state.
    _SNAPSHOT_TRANSIENT = ("core", "plan", "seed", "_rules", "_phases")

    def snapshot_state(self, ctx) -> dict:
        """Stream counters only; the plan is rebuilt from config/env."""
        return {
            "kind": "faults",
            "events": dict(self.events),
            "counts": dict(self.counts),
        }

    def restore_state(self, state: dict, ctx) -> None:
        if state["kind"] != "faults":
            raise ValueError("snapshot faults kind mismatch: expected 'faults'")
        for kind in FAULT_KINDS:
            self.events[kind] = state["events"].get(kind, 0)
            self.counts[kind] = state["counts"].get(kind, 0)
