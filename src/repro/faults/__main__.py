"""``python -m repro.faults`` runs the differential fuzzer CLI."""

import sys

from repro.faults.cli import main

sys.exit(main())
