"""Seeded random-but-lintable guest-program generation.

The differential fuzzer needs programs that are (a) deterministic, (b)
architecturally total (no undefined behaviour to diverge on -- the ISA's
semantics are total by construction: division by zero yields zero, FP
clamps, ``emul`` is popcount), (c) guaranteed to terminate, and (d)
clean under the :mod:`repro.analysis` guest lint, which acts as the
validity oracle for every emitted program.

Programs are built from a small IR -- a list of :class:`GenOp` body
descriptors -- rather than raw text, so the shrinker can delete ops and
re-render instead of mutating assembly strings:

* a fixed prologue initialises every register the body may read
  (must-defined dataflow holds on every path by construction);
* the body is a seeded mix of ALU, FP, ``emul``, load/store, and
  *forward-only* conditional skips (the body CFG is a DAG, so one body
  pass always terminates);
* a counted outer loop repeats the body; memory operands are masked
  into a ``PAGES``-page region (wider than the 64-entry DTLB, so
  capacity misses and page walks happen naturally);
* ``halt`` ends the program.

Randomness is a local splitmix64 stream -- no :mod:`random`, so the same
seed renders the same program on every platform and process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.config import splitmix64

__all__ = [
    "CAUSES",
    "GenOp",
    "GeneratedProgram",
    "Rng",
    "generate_ops",
    "render_program",
]

#: Base of the data region every memory op is masked into.
DATA_BASE = 0x1000_0000
#: Region pages (8 KiB each); 128 > the 64-entry DTLB, so the generated
#: access stream overflows the TLB by construction.
PAGES = 128
REGION_BYTES = PAGES * 8192
#: Word-aligned offset mask within the region (region size is 2**20).
OFF_MASK = (REGION_BYTES - 1) & ~0x7

#: A second, *load-only* region for unaligned accesses.  No store ever
#: targets it, so a trapping misaligned load and the perfect machine's
#: silently-aligned load read the same (zero-filled) words and the
#: architectural digest stays mechanism-invariant by construction.
LOAD_BASE = 0x2000_0000
LOAD_PAGES = 16
LOAD_REGION_BYTES = LOAD_PAGES * 8192
LOAD_OFF_MASK = (LOAD_REGION_BYTES - 1) & ~0x7

#: Instructions of wrong-path filler jumped over inside the loop when
#: ITLB pressure is requested: > one 8 KiB page (2048 instructions), so
#: the loop head and tail are guaranteed to sit on different text pages
#: and a 1-entry ITLB thrashes on every iteration.
ITLB_STRIDE = 2080

#: Integer registers the body may use as data sources/destinations.
DATA_REGS = tuple(range(1, 9))
#: FP registers the body may use.
FP_REGS = tuple(range(1, 5))
#: r9: rolling pointer, r10: region base, r11: address scratch,
#: r12/r13: loop counter/limit, r14: load-only region base (unaligned).
PTR_REG, BASE_REG, ADDR_REG, CTR_REG, LIM_REG, LOAD_REG = 9, 10, 11, 12, 13, 14

_ALU_OPS = ("add", "sub", "and", "or", "xor", "mul", "div", "sll", "srl",
            "cmplt", "cmpeq")
_FP_OPS = ("fadd", "fsub", "fmul", "fdiv")
_BRANCH_OPS = ("beq", "bne", "blt", "bge")
#: Post-shift keeps shift amounts in [0, 16) so sll/srl stay meaningful.
_SHIFT_MASK = 0xF


class Rng:
    """A tiny deterministic PRNG over splitmix64 (no :mod:`random`)."""

    def __init__(self, seed: int) -> None:
        self._state = seed & ((1 << 64) - 1)

    def next(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        return splitmix64(self._state)

    def below(self, n: int) -> int:
        """Uniform-ish integer in ``[0, n)``."""
        return self.next() % n

    def choice(self, seq):
        return seq[self.below(len(seq))]


@dataclass(frozen=True)
class GenOp:
    """One body operation: pre-rendered lines plus skip metadata.

    ``skip`` > 0 marks a forward conditional branch guarding the next
    ``skip`` surviving ops; its single line is rendered with a fresh
    label at render time (`{label}` placeholder), which is what keeps
    deletion-based shrinking valid.
    """

    kind: str
    lines: tuple[str, ...]
    skip: int = 0


@dataclass
class GeneratedProgram:
    """A rendered program plus the IR it came from (for shrinking)."""

    seed: int
    iters: int
    ops: list[GenOp]
    source: str = ""
    regions: list = field(default_factory=list)
    #: Exception causes this program was generated to exercise.
    causes: tuple = ()
    #: Loop page-straddle filler length (0 = contiguous loop).
    itlb_stride: int = 0


def _alu(rng: Rng) -> GenOp:
    op = rng.choice(_ALU_OPS)
    rd = rng.choice(DATA_REGS)
    ra = rng.choice(DATA_REGS)
    if rng.below(3) == 0:
        imm = rng.next() & 0xFFFF if op not in ("sll", "srl") else (
            rng.next() & _SHIFT_MASK
        )
        return GenOp("alu", (f"{op} r{rd}, r{ra}, {imm}",))
    rb = rng.choice(DATA_REGS)
    if op in ("sll", "srl"):
        # Register shift amounts are unbounded 64-bit values; mask via an
        # immediate form instead so results stay non-degenerate.
        return GenOp("alu", (f"{op} r{rd}, r{ra}, {rng.next() & _SHIFT_MASK}",))
    return GenOp("alu", (f"{op} r{rd}, r{ra}, r{rb}",))


def _fp(rng: Rng) -> GenOp:
    roll = rng.below(4)
    if roll == 0:
        return GenOp("fp", (f"itof f{rng.choice(FP_REGS)}, r{rng.choice(DATA_REGS)}",))
    if roll == 1:
        return GenOp("fp", (f"ftoi r{rng.choice(DATA_REGS)}, f{rng.choice(FP_REGS)}",))
    op = rng.choice(_FP_OPS)
    return GenOp(
        "fp",
        (f"{op} f{rng.choice(FP_REGS)}, f{rng.choice(FP_REGS)}, "
         f"f{rng.choice(FP_REGS)}",),
    )


def _emul(rng: Rng) -> GenOp:
    return GenOp(
        "emul", (f"emul r{rng.choice(DATA_REGS)}, r{rng.choice(DATA_REGS)}",)
    )


def _mem(rng: Rng) -> GenOp:
    """A load or store at a data-dependent masked region offset."""
    value = rng.choice(DATA_REGS)
    if rng.below(2) == 0:
        # Rolling-pointer access: a page-plus stride guarantees the walk
        # covers many distinct pages regardless of data-register values.
        setup = (
            f"add r{PTR_REG}, r{PTR_REG}, {8192 + 8 * (1 + rng.below(16))}",
            f"and r{ADDR_REG}, r{PTR_REG}, {hex(OFF_MASK)}",
            f"add r{ADDR_REG}, r{ADDR_REG}, r{BASE_REG}",
        )
    else:
        setup = (
            f"and r{ADDR_REG}, r{rng.choice(DATA_REGS)}, {hex(OFF_MASK)}",
            f"add r{ADDR_REG}, r{ADDR_REG}, r{BASE_REG}",
        )
    if rng.below(3) == 0:
        return GenOp("st", (*setup, f"st r{value}, 0(r{ADDR_REG})"))
    return GenOp("ld", (*setup, f"ld r{value}, 0(r{ADDR_REG})"))


def _brev(rng: Rng) -> GenOp:
    return GenOp(
        "brev", (f"brev r{rng.choice(DATA_REGS)}, r{rng.choice(DATA_REGS)}",)
    )


def _swint(rng: Rng) -> GenOp:
    return GenOp(
        "swint", (f"swint r{rng.choice(DATA_REGS)}, r{rng.choice(DATA_REGS)}",)
    )


def _unaligned(rng: Rng) -> GenOp:
    """A misaligned load from the load-only region (odd offset 1..7)."""
    setup = (
        f"and r{ADDR_REG}, r{rng.choice(DATA_REGS)}, {hex(LOAD_OFF_MASK)}",
        f"add r{ADDR_REG}, r{ADDR_REG}, r{LOAD_REG}",
    )
    offset = 1 + rng.below(7)
    return GenOp(
        "unaligned",
        (*setup, f"ld r{rng.choice(DATA_REGS)}, {offset}(r{ADDR_REG})"),
    )


def _skip(rng: Rng) -> GenOp:
    op = rng.choice(_BRANCH_OPS)
    ra = rng.choice(DATA_REGS)
    rb = rng.choice(DATA_REGS)
    return GenOp(
        "skip", (f"{op} r{ra}, r{rb}, {{label}}",), skip=1 + rng.below(4)
    )


#: Restartable-exception causes the generator can target.  ``dtlb_miss``
#: and ``emul`` are always present in the default maker mix; the others
#: add their maker to the pool (or, for ``itlb_miss``, a page-straddling
#: loop layout) only when requested, so default output stays
#: byte-identical to the pre-scenario generator.
CAUSES = ("dtlb_miss", "emul", "itlb_miss", "unaligned", "brev", "swint")

_CAUSE_MAKERS = {"brev": _brev, "swint": _swint, "unaligned": _unaligned}


def generate_ops(seed: int, length: int, causes: tuple = ()) -> list[GenOp]:
    """The seeded body IR: ``length`` ops mixing every op class.

    ``causes`` appends the matching cause makers to the pool (in fixed
    :data:`CAUSES` order, so the stream is seed-deterministic); an empty
    tuple reproduces the pre-scenario op mix exactly.
    """
    rng = Rng(seed)
    makers = (_alu, _alu, _mem, _mem, _fp, _emul, _skip)
    extra = tuple(
        _CAUSE_MAKERS[c] for c in CAUSES if c in causes and c in _CAUSE_MAKERS
    )
    makers = makers + extra + extra  # double weight: causes should fire often
    return [rng.choice(makers)(rng) for _ in range(length)]


def render_program(
    ops: list[GenOp], seed: int, iters: int, itlb_stride: int = 0
) -> str:
    """Render the IR into assembly: prologue, counted loop, halt.

    ``itlb_stride`` > 0 splits the loop across a text-page boundary: the
    tail (loop counter + back branch) sits past ``itlb_stride``
    never-executed filler instructions, reached by an always-taken
    forward branch, so each iteration fetches from two distinct pages
    and a small ITLB misses continuously.
    """
    rng = Rng(splitmix64(seed ^ 0xC0FFEE))
    lines = ["main:"]
    for reg in DATA_REGS:
        lines.append(f"  li r{reg}, {rng.next() & 0xFFFFFFFF}")
    for reg in FP_REGS:
        lines.append(f"  itof f{reg}, r{DATA_REGS[reg % len(DATA_REGS)]}")
    lines.append(f"  li r{PTR_REG}, 0")
    lines.append(f"  li r{BASE_REG}, {hex(DATA_BASE)}")
    lines.append(f"  li r{CTR_REG}, 0")
    lines.append(f"  li r{LIM_REG}, {iters}")
    if any(op.kind == "unaligned" for op in ops):
        lines.append(f"  li r{LOAD_REG}, {hex(LOAD_BASE)}")
    lines.append("loop:")
    #: (ops until placement, label) for open forward skips.
    open_skips: list[list] = []
    next_label = 0
    for op in ops:
        if op.kind == "skip":
            label = f"skip{next_label}"
            next_label += 1
            lines.append("  " + op.lines[0].format(label=label))
            open_skips.append([op.skip, label])
            continue
        for line in op.lines:
            lines.append("  " + line)
        still_open: list[list] = []
        for entry in open_skips:
            entry[0] -= 1
            if entry[0] <= 0:
                lines.append(f"{entry[1]}:")
            else:
                still_open.append(entry)
        open_skips = still_open
    for _, label in open_skips:
        lines.append(f"{label}:")
    if itlb_stride > 0:
        lines.append(f"  beq r{CTR_REG}, r{CTR_REG}, far")
        for _ in range(itlb_stride):
            lines.append(f"  add r{DATA_REGS[0]}, r{DATA_REGS[0]}, 0")
        lines.append("far:")
    lines.append(f"  add r{CTR_REG}, r{CTR_REG}, 1")
    lines.append(f"  blt r{CTR_REG}, r{LIM_REG}, loop")
    lines.append("  halt")
    return "\n".join(lines) + "\n"


def generate_program(
    seed: int,
    length: int = 36,
    iters: int = 24,
    causes: tuple = (),
) -> GeneratedProgram:
    """Generate one complete program (IR + rendered source + regions).

    ``causes`` selects the restartable-exception causes the program
    should exercise (see :data:`CAUSES`); the default empty tuple is
    byte-identical to the pre-scenario generator.
    """
    itlb_stride = ITLB_STRIDE if "itlb_miss" in causes else 0
    ops = generate_ops(seed, length, causes=causes)
    source = render_program(ops, seed, iters, itlb_stride=itlb_stride)
    regions = [(DATA_BASE, REGION_BYTES)]
    if any(op.kind == "unaligned" for op in ops):
        regions.append((LOAD_BASE, LOAD_REGION_BYTES))
    return GeneratedProgram(
        seed=seed,
        iters=iters,
        ops=ops,
        source=source,
        regions=regions,
        causes=tuple(causes),
        itlb_stride=itlb_stride,
    )
