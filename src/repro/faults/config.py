"""Fault-plan specification: the ``REPRO_FAULTS`` mini-language.

A spec is a comma-separated list of clauses::

    seed:42,force_miss:50,mem_delay:20:60,bp_poison:100

``seed:N`` seeds every schedule (default 0); every other clause is
``kind:period`` or ``kind:period:arg`` and arms one fault kind to fire
every ``period``-th event of its trigger stream, at a seeded phase.  The
streams are event *counters*, not cycle numbers, so schedules are
immune to the idle-cycle fast-forward (which skips quiet cycles) and
identical between the serial and parallel runners.

Kinds (full taxonomy and semantics in ``docs/ROBUSTNESS.md``):

=================== stream ============== arg =========================
``force_miss``      user DTLB lookups     --  (drop the looked-up entry)
``tlb_evict``       retirements           --  (drop a seeded-random entry)
``pte_corrupt``     retirements           --  (clear a PTE valid bit)
``handler_fault``   retirements           --  (fault the in-flight handler)
``mem_delay``       issued loads          extra cycles (default 50)
``bp_poison``       cond-branch predicts  --  (flip the prediction)
=================== ==================== ============================

Parsing is strict: unknown kinds, non-positive periods, duplicate
clauses, and malformed integers all raise :class:`ValueError` at
configuration time rather than deep inside a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "parse_faults",
    "splitmix64",
]

#: Every injectable fault kind, in documentation order.  The index of a
#: kind in this tuple salts its schedule hash, so two kinds with the
#: same period and seed still fire at different phases.
FAULT_KINDS = (
    "force_miss",
    "tlb_evict",
    "pte_corrupt",
    "handler_fault",
    "mem_delay",
    "bp_poison",
)

#: Default extra latency (cycles) for ``mem_delay`` without an arg.
DEFAULT_MEM_DELAY = 50

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """One splitmix64 scramble: the seeded-hash primitive for schedules.

    Pure integer arithmetic (no :mod:`random`), so fault schedules are
    bit-reproducible across processes and platforms.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


@dataclass(frozen=True)
class FaultRule:
    """One armed fault kind: fire every ``period`` events, seeded phase."""

    kind: str
    period: int
    arg: int = 0

    def phase(self, seed: int) -> int:
        """Deterministic firing phase within ``[0, period)``."""
        salt = FAULT_KINDS.index(self.kind) + 1
        return splitmix64(seed * 0x100000001B3 + salt) % self.period


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault spec: the seed plus every armed rule."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    #: The original spec text (diagnostics and manifests).
    spec: str = field(default="", compare=False)

    def rule(self, kind: str) -> FaultRule | None:
        for rule in self.rules:
            if rule.kind == kind:
                return rule
        return None

    def __bool__(self) -> bool:
        return bool(self.rules)


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    seed = 0
    rules: list[FaultRule] = []
    seen: set[str] = set()
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        kind = parts[0].strip()
        if kind == "seed":
            if len(parts) != 2:
                raise ValueError(f"bad seed clause {clause!r} (want seed:N)")
            seed = _int_field(parts[1], clause)
            continue
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {clause!r}; "
                f"pick one of {FAULT_KINDS}"
            )
        if kind in seen:
            raise ValueError(f"duplicate fault clause for {kind!r}")
        seen.add(kind)
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad fault clause {clause!r} (want kind:period[:arg])"
            )
        period = _int_field(parts[1], clause)
        if period <= 0:
            raise ValueError(f"fault period must be positive in {clause!r}")
        arg = _int_field(parts[2], clause) if len(parts) == 3 else 0
        if kind == "mem_delay":
            if len(parts) == 2:
                arg = DEFAULT_MEM_DELAY
            elif arg <= 0:
                raise ValueError(f"mem_delay cycles must be positive in {clause!r}")
        elif len(parts) == 3:
            raise ValueError(f"fault kind {kind!r} takes no arg ({clause!r})")
        rules.append(FaultRule(kind=kind, period=period, arg=arg))
    return FaultPlan(seed=seed, rules=tuple(rules), spec=spec)


def _int_field(text: str, clause: str) -> int:
    try:
        return int(text.strip())
    except ValueError:
        raise ValueError(
            f"non-integer field {text.strip()!r} in fault clause {clause!r}"
        ) from None
