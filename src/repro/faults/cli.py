"""``repro-fuzz``: the differential fuzzer's command-line front end.

Exit codes: 0 -- all cases agreed; 1 -- a divergence was found (and its
shrunken reproducer written when ``--artifacts`` is set); 2 -- bad
usage/configuration.  CI runs this twice: a short-budget smoke on every
PR and a long-budget nightly sweep (see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.faults.fuzz import CAUSES, DEFECTS, fuzz


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differentially fuzz the five exception mechanisms "
        "under deterministic fault injection.",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; case N uses seed+N (default: 0)",
    )
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; stops starting new cases once exceeded",
    )
    parser.add_argument(
        "--programs", type=int, default=None, metavar="N",
        help="maximum number of generated programs (default: 20 when "
        "no --budget is given)",
    )
    parser.add_argument(
        "--artifacts", type=Path, default=None, metavar="DIR",
        help="directory for shrunken reproducers + manifests on failure",
    )
    parser.add_argument(
        "--defect", choices=sorted(DEFECTS), default=None,
        help="apply a known-broken test-only machine mutation "
        "(oracle self-test: the fuzzer must catch it)",
    )
    parser.add_argument(
        "--engine-diff", action="store_true",
        help="fuzz the batched engine kernel against the reference "
        "kernel: every faulted run executes under both and must agree "
        "exactly (digest, cycles, every counter)",
    )
    parser.add_argument(
        "--causes", default=None, metavar="LIST",
        help="comma-separated restartable-exception causes every case "
        f"targets ({', '.join(CAUSES)}); default rotates through all "
        "cause sets by seed",
    )
    parser.add_argument(
        "--stats-out", type=Path, default=None, metavar="FILE",
        help="write corpus statistics (JSON) here, pass or fail",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report the first failure without minimizing it",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=None, metavar="N",
        help="per-run hang bound in cycles (default: 2000000)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.budget is not None and args.budget <= 0:
        print("error: --budget must be positive", file=sys.stderr)
        return 2
    if args.programs is not None and args.programs <= 0:
        print("error: --programs must be positive", file=sys.stderr)
        return 2
    causes = None
    if args.causes is not None:
        causes = tuple(
            part.strip() for part in args.causes.split(",") if part.strip()
        )
        unknown = sorted(set(causes) - set(CAUSES))
        if unknown:
            print(
                f"error: unknown causes {', '.join(unknown)} "
                f"(known: {', '.join(CAUSES)})",
                file=sys.stderr,
            )
            return 2
    # The fuzzer owns its fault schedules; an inherited REPRO_FAULTS
    # would also fault the perfect reference run and poison the oracle.
    os.environ.pop("REPRO_FAULTS", None)

    log = (lambda msg: None) if args.quiet else (
        lambda msg: print(msg, flush=True)
    )
    kwargs = {}
    if args.max_cycles is not None:
        kwargs["max_cycles"] = args.max_cycles
    report = fuzz(
        seed=args.seed,
        budget_seconds=args.budget,
        max_programs=args.programs,
        artifacts=args.artifacts,
        defect=args.defect,
        shrink=not args.no_shrink,
        engine_diff=args.engine_diff,
        causes=causes,
        log=log,
        **kwargs,
    )
    if args.stats_out is not None:
        args.stats_out.parent.mkdir(parents=True, exist_ok=True)
        args.stats_out.write_text(
            json.dumps(report.to_json(), indent=2) + "\n"
        )
    total_faults = sum(report.fault_counts.values())
    print(
        f"repro-fuzz: {report.programs} programs, {report.cycles} cycles, "
        f"{total_faults} faults injected, "
        f"{len(report.failures)} failure(s) in {report.elapsed_seconds:.1f}s"
    )
    if report.failures:
        for failure in report.failures:
            for div in failure["divergences"]:
                print(
                    f"  seed {failure['seed']}: {div['mechanism']} "
                    f"{div['reason']}: {div['detail']}"
                )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
