"""The SMT core: the cycle-by-cycle machine model.

One :class:`SMTCore` owns all thread contexts, the shared front end,
window, functional units, and the memory system handles.  Each call to
:meth:`SMTCore.step` advances one cycle through the stages (in reverse
pipeline order so every stage sees the machine state as of the cycle
start):

1. mechanism ``tick`` (hardware walker completions, etc.),
2. retirement (unlimited bandwidth, with cross-thread splicing),
3. schedule/execute (oldest-fetched-first among ready instructions),
4. decode/rename/window-insert,
5. fetch (abstract front end with handler-priority + ICOUNT chooser).

Design points taken straight from the paper's Section 5.1: instructions
are scheduled the same cycle they execute (perfect cache hit/miss
prediction), they must wait ``post_insert_delay`` cycles after window
insertion (register read), retirement bandwidth is unlimited, writeback
is unmodeled, and the front end can supply instructions from multiple
non-contiguous basic blocks in one cycle with no taken-branch limit.
Wrong-path execution is real: it touches the caches and the TLB.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.branch.unit import BranchPredictionUnit
from repro.isa import semantics
from repro.isa.instructions import (
    FP_DEST_OPS,
    FP_SRC_A_OPS,
    FP_SRC_B_OPS,
    Instruction,
    Opcode,
)
from repro.isa.program import Program
from repro.isa.registers import PrivReg, pal_reg
from repro.memory.address import align_word, vpn_of
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.main_memory import MainMemory
from repro.memory.page_table import PageTable
from repro.memory.tlb import TLB, PerfectTLB
from repro.pipeline.thread import ThreadContext, ThreadState
from repro.pipeline.uop import Uop, UopState
from repro.pipeline.window import InstructionWindow
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.exceptions.base import ExceptionMechanism

_FAR_FUTURE = 1 << 60

# Source operand register spaces per opcode: (space_a, space_b) where a
# space is "int", "fp", or None.  Immediates are bound when rb is absent.
_SRC_SPACES: dict[Opcode, tuple[str | None, str | None]] = {
    Opcode.ADD: ("int", "int"),
    Opcode.SUB: ("int", "int"),
    Opcode.AND: ("int", "int"),
    Opcode.OR: ("int", "int"),
    Opcode.XOR: ("int", "int"),
    Opcode.SLL: ("int", "int"),
    Opcode.SRL: ("int", "int"),
    Opcode.SRA: ("int", "int"),
    Opcode.CMPLT: ("int", "int"),
    Opcode.CMPULT: ("int", "int"),
    Opcode.CMPEQ: ("int", "int"),
    Opcode.MUL: ("int", "int"),
    Opcode.DIV: ("int", "int"),
    Opcode.LI: (None, None),
    Opcode.LD: ("int", None),
    Opcode.FLD: ("int", None),
    Opcode.ST: ("int", "int"),
    Opcode.FST: ("int", "fp"),
    Opcode.BEQ: ("int", "int"),
    Opcode.BNE: ("int", "int"),
    Opcode.BLT: ("int", "int"),
    Opcode.BGE: ("int", "int"),
    Opcode.JMP: (None, None),
    Opcode.CALL: (None, None),
    Opcode.CALLI: ("int", None),
    Opcode.JMPI: ("int", None),
    Opcode.RET: ("int", None),
    Opcode.FADD: ("fp", "fp"),
    Opcode.FSUB: ("fp", "fp"),
    Opcode.FMUL: ("fp", "fp"),
    Opcode.FDIV: ("fp", "fp"),
    Opcode.FSQRT: ("fp", None),
    Opcode.ITOF: ("int", None),
    Opcode.FTOI: ("fp", None),
    Opcode.MFPR: (None, None),
    Opcode.MTPR: ("int", None),
    Opcode.TLBWR: ("int", "int"),
    Opcode.RETI: (None, None),
    Opcode.HARDEXC: (None, None),
    Opcode.MTDST: ("int", None),
    Opcode.EMUL: ("int", None),
    Opcode.NOP: (None, None),
    Opcode.HALT: (None, None),
}

_INT_ALU_OPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.CMPLT, Opcode.CMPULT,
        Opcode.CMPEQ, Opcode.MUL, Opcode.DIV, Opcode.LI,
    }
)
_FP_ALU_OPS = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT}
)


class SMTCore:
    """The simulated simultaneous-multithreading core."""

    def __init__(
        self,
        config: MachineConfig,
        memory: MainMemory,
        hierarchy: MemoryHierarchy,
        dtlb: TLB | PerfectTLB,
        page_table: PageTable,
        bpu: BranchPredictionUnit | None = None,
        mechanism: "ExceptionMechanism | None" = None,
    ) -> None:
        self.config = config
        self.memory = memory
        self.hierarchy = hierarchy
        self.dtlb = dtlb
        self.page_table = page_table
        self.bpu = bpu or BranchPredictionUnit()
        self.mechanism = mechanism
        self.window = InstructionWindow(config.window_size)
        self.threads = [
            ThreadContext(tid, config.fetch_buffer_size)
            for tid in range(config.num_threads)
        ]
        self.cycle = 0
        self._next_seq = 0
        self.stats = SimStats()
        #: PAL entries by handler name, set when programs load; lengths
        #: (per handler) drive window reservations and fetch stop.
        self.pal_entries: dict[str, int] = {}
        self.handler_lengths: dict[str, int] = {}
        if mechanism is not None:
            mechanism.attach(self)

    # ------------------------------------------------------------------
    # Setup helpers.
    # ------------------------------------------------------------------
    def load_program(self, tid: int, program: Program) -> ThreadContext:
        """Bind ``program`` to thread ``tid`` and load its data image."""
        thread = self.threads[tid]
        thread.activate(program)
        thread.priv_regs[PrivReg.PTBR] = self.page_table.base
        self.memory.load_image(program.build_memory_words())
        self.pal_entries.update(program.pal_entries)
        return thread

    @property
    def pal_entry(self) -> int | None:
        """Entry PC of the DTLB miss handler (the common case)."""
        return self.pal_entries.get("dtlb_miss")

    @property
    def handler_length(self) -> int:
        """Common-case DTLB handler length (reservations, quick-start)."""
        return self.handler_lengths.get("dtlb_miss", 10)

    @handler_length.setter
    def handler_length(self, value: int) -> None:
        self.handler_lengths["dtlb_miss"] = value

    def alloc_seq(self) -> int:
        """Allocate the next global fetch-order sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def find_idle_thread(self) -> ThreadContext | None:
        """An idle hardware context usable for an exception, if any."""
        for thread in self.threads:
            if thread.state is ThreadState.IDLE:
                return thread
        return None

    @property
    def app_threads(self) -> list[ThreadContext]:
        return [t for t in self.threads if t.state is ThreadState.NORMAL]

    # ------------------------------------------------------------------
    # The cycle loop.
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine by one cycle."""
        now = self.cycle
        if self.mechanism is not None:
            self.mechanism.tick(now)
        self._retire(now)
        self._execute(now)
        self._decode(now)
        self._fetch(now)
        self.cycle += 1
        self.stats.cycles = self.cycle

    def run(self, user_insts: int, max_cycles: int = 10_000_000) -> None:
        """Run until every application thread retires ``user_insts``
        *additional* user-mode instructions (or halts), or ``max_cycles``
        total elapse."""
        targets = {
            thread.tid: thread.retired_user + user_insts
            for thread in self.threads
            if thread.state is ThreadState.NORMAL
        }
        while self.cycle < max_cycles:
            done = True
            for thread in self.threads:
                target = targets.get(thread.tid)
                if target is None or thread.halted:
                    continue
                if thread.state is ThreadState.NORMAL and thread.retired_user < target:
                    done = False
                    break
            if done:
                return
            self.step()
        raise RuntimeError(
            f"simulation exceeded {max_cycles} cycles "
            f"(retired: {[t.retired_user for t in self.threads]})"
        )

    # ------------------------------------------------------------------
    # Fetch.
    # ------------------------------------------------------------------
    def _fetch_priority(self) -> list[ThreadContext]:
        """Thread order for fetch/decode: handler threads first, then the
        configured chooser among application threads."""
        handlers = [t for t in self.threads if t.state is ThreadState.EXCEPTION]
        apps = [t for t in self.threads if t.state is ThreadState.NORMAL]
        if self.config.chooser == "icount":
            apps.sort(key=lambda t: (t.in_flight, t.tid))
        else:
            offset = self.cycle % max(1, len(apps)) if apps else 0
            apps = apps[offset:] + apps[:offset]
        if not self.config.handler_fetch_priority:
            return apps + handlers
        return handlers + apps

    def _fetch(self, now: int) -> None:
        config = self.config
        budget = config.width
        free_handler_fetch = config.limits.no_fetch_bandwidth
        for thread in self._fetch_priority():
            handler_free = free_handler_fetch and thread.is_exception_thread
            if budget <= 0 and not handler_free:
                continue
            per_thread = config.width
            while per_thread > 0 and (budget > 0 or handler_free):
                if not thread.can_fetch(now):
                    break
                if not self._fetch_one(thread, now):
                    break
                per_thread -= 1
                if not handler_free:
                    budget -= 1
        if budget > 0 and self.mechanism is not None:
            budget -= self.mechanism.fetch_idle(now, budget)

    def _fetch_one(self, thread: ThreadContext, now: int) -> bool:
        """Fetch a single instruction for ``thread``; False to stop."""
        inst = thread.program.fetch(thread.pc)
        if inst is None:
            # Wrong-path fetch ran off the text segment: wait for a squash.
            thread.fetch_stall_until = _FAR_FUTURE
            return False
        if inst.privileged and not thread.fetch_priv:
            # Wrong-path fetch fell into PAL code: privilege fence.
            thread.fetch_stall_until = _FAR_FUTURE
            return False

        # Instruction cache: one probe per line transition.
        ready = self.hierarchy.ifetch(thread.pc * 4, now)
        if ready > now + self.hierarchy.config.l1_latency:
            thread.fetch_stall_until = ready
            return False

        uop = Uop(self.alloc_seq(), thread.tid, thread.pc, inst)
        uop.fetch_cycle = now
        uop.avail_cycle = now + self.config.fetch_latency
        uop.is_handler = inst.privileged
        if thread.overfetch_after_reti:
            uop.discard = True
        thread.rob.append(uop)
        thread.fetch_buffer.append(uop)
        self.stats.fetched += 1

        op = inst.op
        if op is Opcode.HALT:
            thread.fetch_wait_uop = uop
            return False
        if inst.is_branch:
            pred = self.bpu.predict(thread.pc, inst)
            uop.checkpoint = pred.checkpoint
            uop.pred_taken = pred.taken
            uop.pred_target = pred.target
            if op is Opcode.RETI:
                if thread.is_exception_thread:
                    if self.config.predict_handler_length:
                        thread.fetch_done = True
                        return False
                    # No length prediction: keep fetching (and wasting
                    # bandwidth) past the handler until reti is decoded.
                    thread.overfetch_after_reti = True
                    thread.pc += 1
                    return True
                thread.fetch_wait_uop = uop
                return False
            thread.pc = pred.target if pred.taken else thread.pc + 1
            return True
        thread.pc += 1
        return True

    # ------------------------------------------------------------------
    # Decode / rename / window insertion.
    # ------------------------------------------------------------------
    def _decode(self, now: int) -> None:
        config = self.config
        budget = config.width
        free_handler_decode = config.limits.no_fetch_bandwidth
        for thread in self._fetch_priority():
            handler_free = free_handler_decode and thread.is_exception_thread
            while thread.fetch_buffer and (budget > 0 or handler_free):
                uop = thread.fetch_buffer[0]
                if uop.avail_cycle > now:
                    break
                if uop.discard:
                    thread.fetch_buffer.popleft()
                    thread.rob.remove(uop)
                    uop.state = UopState.SQUASHED
                    self.stats.overfetch_discarded += 1
                    if not handler_free:
                        budget -= 1
                    continue
                if not self._admit(thread, uop, now):
                    break
                thread.fetch_buffer.popleft()
                if uop.inst.op is Opcode.RETI and thread.is_exception_thread:
                    # Reti decoded: stop any overfetch past the handler.
                    thread.fetch_done = True
                    thread.overfetch_after_reti = False
                self._rename(thread, uop)
                exc_id = None
                if thread.is_exception_thread and thread.exc_instance is not None:
                    exc_id = thread.exc_instance.id
                if config.limits.no_window_overhead and uop.is_handler:
                    uop.free_slot = True
                self.window.insert(uop, exc_id)
                uop.insert_cycle = now
                uop.min_sched_cycle = (
                    now + config.decode_latency + config.post_insert_delay
                )
                uop.state = UopState.WINDOW
                if not handler_free:
                    budget -= 1
            if budget <= 0 and not free_handler_decode:
                break

    def _admit(self, thread: ThreadContext, uop: Uop, now: int) -> bool:
        """Window admission check, including deadlock avoidance."""
        if uop.is_handler and thread.is_exception_thread:
            if self.config.limits.no_window_overhead:
                return True
            if self.window.occupancy < self.window.capacity:
                return True
            return self._make_room_for_handler(thread, now)
        if uop.is_handler:
            # Traditional handler uops run in the application thread and
            # are admitted like ordinary instructions (no reservations).
            return self.window.occupancy < self.window.capacity
        return self.window.can_insert_app()

    def _make_room_for_handler(self, exc_thread: ThreadContext, now: int) -> bool:
        """Squash the master thread's tail so the handler can advance.

        The paper's deadlock-avoidance rule: reclaim window slots from the
        youngest post-exception instructions, never killing the excepting
        instruction itself (in which case the handler stalls instead).
        """
        master = self.threads[exc_thread.master_tid]
        master_uop = exc_thread.master_uop
        if master_uop is None:
            return False
        boundary = None
        freed = 0
        for victim in reversed(master.rob):
            if victim.seq <= master_uop.seq:
                break
            boundary = victim
            if victim.state == UopState.WINDOW and not victim.free_slot:
                freed += 1
                if freed >= 1:
                    break
        if boundary is None or freed == 0:
            return False
        self.window.tail_squashes += 1
        self._resource_squash(master, boundary.seq - 1, now)
        return self.window.occupancy < self.window.capacity

    def _rename(self, thread: ThreadContext, uop: Uop) -> None:
        """Record dataflow sources and claim the destination mapping."""
        inst = uop.inst
        space_a, space_b = _SRC_SPACES[inst.op]
        priv = inst.privileged
        if space_a == "int":
            reg = pal_reg(inst.ra) if priv else inst.ra
            producer = thread.int_map[reg]
            if producer is not None:
                uop.src_a_uop = producer
            else:
                uop.src_a_value = thread.arch.read_int(reg)
        elif space_a == "fp":
            producer = thread.fp_map[inst.ra]
            if producer is not None:
                uop.src_a_uop = producer
            else:
                uop.src_a_value = thread.arch.read_fp(inst.ra)
        if space_b == "int":
            if inst.rb is not None:
                reg = pal_reg(inst.rb) if priv else inst.rb
                producer = thread.int_map[reg]
                if producer is not None:
                    uop.src_b_uop = producer
                else:
                    uop.src_b_value = thread.arch.read_int(reg)
            else:
                uop.src_b_value = inst.imm or 0
        elif space_b == "fp":
            producer = thread.fp_map[inst.rb]
            if producer is not None:
                uop.src_b_uop = producer
            else:
                uop.src_b_value = thread.arch.read_fp(inst.rb)
        elif inst.op is Opcode.LI:
            uop.src_b_value = inst.imm or 0

        if inst.rd is not None:
            if inst.op in FP_DEST_OPS:
                thread.fp_map[inst.rd] = uop
            else:
                reg = pal_reg(inst.rd) if priv else inst.rd
                thread.int_map[reg] = uop
        elif inst.op is Opcode.MTDST and not thread.is_exception_thread:
            # Traditional emulation: mtdst writes the excepting
            # instruction's (user) destination register; the hardware
            # latched its index at the trap.
            dest = thread.priv_regs[PrivReg.EXC_DST]
            if 0 < dest < 32:
                uop.dyn_dest = dest
                thread.int_map[dest] = uop
        if inst.is_store:
            thread.store_queue.append(uop)
        uop.renamed = True

    # ------------------------------------------------------------------
    # Schedule / execute.
    # ------------------------------------------------------------------
    def _execute(self, now: int) -> None:
        config = self.config
        pool = config.fu_pool
        budget = config.width
        fu_used = {"alu": 0, "muldiv": 0, "fp": 0, "fpdiv": 0, "mem": 0}
        free_handler_exec = config.limits.no_execute_bandwidth
        for uop in list(self.window.uops):
            if budget <= 0 and not free_handler_exec:
                break
            if uop.state != UopState.WINDOW or uop.issued:
                continue
            if uop.min_sched_cycle > now or uop.waiting_fill is not None:
                continue
            if not uop.src_ready(now):
                continue
            inst = uop.inst
            if inst.is_load and not self._load_ordering_ok(uop, now):
                continue
            if inst.op is Opcode.RETI and not self._older_all_issued(uop):
                # Return-from-exception serializes: it must not redirect
                # fetch before the handler's tlbwr has installed the fill.
                continue
            handler_free = free_handler_exec and uop.is_handler
            group = config.fu_group(inst.fu_class)
            if not handler_free:
                if budget <= 0 or fu_used[group] >= pool.capacity(group):
                    continue
            issued = self._issue(uop, now)
            if issued and not handler_free:
                fu_used[group] += 1
                budget -= 1
        if self.mechanism is not None:
            free_mem = pool.mem - fu_used["mem"]
            if free_mem > 0:
                self.mechanism.service_mem_ports(now, free_mem)

    def _older_all_issued(self, uop: Uop) -> bool:
        """True when every older same-thread uop has issued."""
        for older in self.threads[uop.thread_id].rob:
            if older.seq >= uop.seq:
                return True
            if not older.issued and older.state != UopState.SQUASHED:
                return False
        return True

    @staticmethod
    def _store_addr_if_known(store: Uop, now: int) -> int | None:
        """A store's effective address once its base operand is ready.

        Models the usual STA/STD split: the address generation of a store
        completes as soon as the base register is available, even if the
        store data is still in flight.
        """
        if store.issued:
            return store.eff_addr
        base_producer = store.src_a_uop
        if base_producer is not None and not (
            base_producer.issued and base_producer.finish_cycle <= now
        ):
            return None
        base = (
            base_producer.value if base_producer is not None else store.src_a_value
        )
        return align_word(semantics.effective_address(store.inst, int(base)))

    def _load_ordering_ok(self, uop: Uop, now: int) -> bool:
        """Memory disambiguation for a load about to issue.

        The load waits on any older same-thread store whose address is
        still unknown, and on a matching-address store whose data is not
        yet available (it will forward once the store issues).  Stores to
        other addresses are bypassed -- this is what lets independent
        iterations overlap their cache and TLB misses.
        """
        if uop.inst.privileged:
            return True  # handler loads: the handler performs no stores
        thread = self.threads[uop.thread_id]
        if not thread.store_queue:
            return True
        addr = align_word(
            semantics.effective_address(uop.inst, int(uop.src_values()[0]))
        )
        for store in thread.store_queue:
            if store.seq >= uop.seq:
                break
            store_addr = self._store_addr_if_known(store, now)
            if store_addr is None:
                return False
            if store_addr == addr and not store.issued:
                return False
        return True

    def _issue(self, uop: Uop, now: int) -> bool:
        """Execute ``uop`` functionally and stamp its completion time.

        Returns False when the uop could not issue after all (it raised a
        TLB miss and is now waiting or was squashed by a trap).
        """
        inst = uop.inst
        op = inst.op
        thread = self.threads[uop.thread_id]
        a, b = uop.src_values()

        if inst.is_mem:
            return self._issue_mem(uop, thread, inst, a, b, now)

        latency = self.config.fu_latency(inst.fu_class)
        if op in _INT_ALU_OPS:
            uop.value = semantics.compute_int(inst, int(a), int(b))
        elif op in _FP_ALU_OPS:
            uop.value = semantics.compute_fp(inst, float(a), float(b))
        elif op in (Opcode.ITOF, Opcode.FTOI):
            uop.value = semantics.convert(inst, a)
        elif op is Opcode.MFPR:
            uop.value = thread.priv_regs[inst.imm]
        elif op is Opcode.MTPR:
            thread.priv_regs[inst.imm] = int(a)
            uop.value = None
        elif op is Opcode.TLBWR:
            if self.mechanism is not None:
                self.mechanism.on_tlbwr(uop, int(a), int(b), now)
        elif op is Opcode.EMUL:
            if self.mechanism is None:
                # The perfect machine implements the operation natively.
                uop.value = semantics.compute_int(inst, int(a), 0)
            else:
                self.stats.emulation_events += 1
                self.mechanism.on_emulation(uop, int(a), now)
                return False  # waits for the handler's mtdst
        elif op is Opcode.MTDST:
            uop.value = int(a) & ((1 << 64) - 1)
            if self.mechanism is not None:
                self.mechanism.on_mtdst(uop, int(a), now)
        elif op is Opcode.HARDEXC:
            # Takes effect at retirement: a speculatively fetched hardexc
            # (e.g. behind a mispredicted handler branch) must not revert.
            uop.value = None
        elif op in (Opcode.NOP, Opcode.HALT):
            uop.value = None
        elif inst.is_branch:
            return self._issue_branch(uop, thread, inst, a, b, now)

        uop.issued = True
        uop.issue_cycle = now
        uop.finish_cycle = now + latency
        return True

    def _issue_mem(
        self,
        uop: Uop,
        thread: ThreadContext,
        inst: Instruction,
        a,
        b,
        now: int,
    ) -> bool:
        addr = align_word(semantics.effective_address(inst, int(a)))
        uop.eff_addr = addr
        if not inst.privileged:
            entry = self.dtlb.lookup(vpn_of(addr))
            if entry is None:
                self.stats.dtlb_miss_events += 1
                if self.mechanism is not None:
                    self.mechanism.on_dtlb_miss(uop, addr, vpn_of(addr), now)
                return False
        if inst.is_load:
            forwarded = None
            if not inst.privileged:
                for store in reversed(thread.store_queue):
                    if store.seq < uop.seq and store.issued and store.eff_addr == addr:
                        forwarded = store.value
                        break
            if forwarded is not None:
                uop.value = forwarded
                ready = now + self.hierarchy.config.l1_latency
                self.stats.store_forwards += 1
            else:
                uop.value = self.memory.read_word(addr)
                ready = self.hierarchy.load(addr, now)
            if inst.op is Opcode.FLD:
                uop.value = float(uop.value)
            else:
                uop.value = int(uop.value) & ((1 << 64) - 1)
            uop.finish_cycle = ready
        else:
            uop.value = b  # store data
            self.hierarchy.store(addr, now)
            uop.finish_cycle = now + self.config.store_latency
        uop.issued = True
        uop.issue_cycle = now
        return True

    def _issue_branch(
        self,
        uop: Uop,
        thread: ThreadContext,
        inst: Instruction,
        a,
        b,
        now: int,
    ) -> bool:
        op = inst.op
        taken = True
        if inst.is_cond_branch:
            taken = semantics.branch_taken(inst, int(a), int(b))
            target = inst.target if taken else uop.pc + 1
        elif op in (Opcode.JMP, Opcode.CALL):
            target = inst.target
        elif op in (Opcode.CALLI, Opcode.JMPI, Opcode.RET):
            target = int(a) % max(1, len(thread.program.insts) + 1)
        elif op is Opcode.RETI:
            target = thread.priv_regs[PrivReg.EXC_PC]
        else:  # pragma: no cover
            raise AssertionError(f"unexpected branch {inst}")

        if op in (Opcode.CALL, Opcode.CALLI):
            uop.value = uop.pc + 1  # link register
        uop.actual_taken = taken
        uop.actual_target = target
        uop.issued = True
        uop.issue_cycle = now
        uop.finish_cycle = now + 1

        if op is Opcode.RETI:
            if self.mechanism is not None:
                self.mechanism.on_reti_executed(uop, now)
            return True
        mispredicted = taken != uop.pred_taken or (
            taken and target != uop.pred_target
        )
        if mispredicted:
            self._mispredict(thread, uop, now)
        return True

    def _mispredict(self, thread: ThreadContext, uop: Uop, now: int) -> None:
        self.stats.mispredicts += 1
        self.squash_from(thread, uop.seq, now)
        self.bpu.repair(
            uop.pc, uop.inst, uop.checkpoint, uop.actual_taken, uop.actual_target
        )
        thread.pc = uop.actual_target
        thread.fetch_priv = uop.inst.privileged
        thread.fetch_stall_until = now + 1
        thread.fetch_wait_uop = None
        thread.fetch_done = False
        thread.overfetch_after_reti = False

    # ------------------------------------------------------------------
    # Squash machinery.
    # ------------------------------------------------------------------
    def squash_from(self, thread: ThreadContext, boundary_seq: int, now: int) -> int:
        """Squash every uop of ``thread`` with ``seq > boundary_seq``.

        Returns the number of squashed uops.  Exception threads linked to
        squashed excepting instructions are reclaimed via the mechanism.
        """
        squashed = 0
        while thread.rob and thread.rob[-1].seq > boundary_seq:
            victim = thread.rob.pop()
            self._squash_uop(thread, victim, now)
            squashed += 1
        if squashed:
            thread.rebuild_rename_maps()
            self.stats.squashed += squashed
        if thread.fetch_wait_uop is not None and (
            thread.fetch_wait_uop.state == UopState.SQUASHED
        ):
            thread.fetch_wait_uop = None
        return squashed

    def _squash_uop(self, thread: ThreadContext, victim: Uop, now: int) -> None:
        if victim.state == UopState.WINDOW:
            self.window.remove(victim)
        victim.state = UopState.SQUASHED
        if victim in thread.fetch_buffer:
            thread.fetch_buffer.remove(victim)
        if victim.inst.is_store and victim in thread.store_queue:
            thread.store_queue.remove(victim)
        if self.mechanism is not None:
            self.mechanism.on_uop_squashed(victim, now)

    def squash_all(self, thread: ThreadContext, now: int) -> int:
        """Squash every in-flight uop of ``thread`` (thread reclaim)."""
        return self.squash_from(thread, -1, now)

    def _resource_squash(self, thread: ThreadContext, boundary_seq: int, now: int) -> None:
        """Squash for window-space reclamation (not a misprediction).

        The squashed instructions are simply refetched from the oldest
        squashed PC; front-end speculative state is restored to the oldest
        squashed branch's checkpoint (no outcome is re-applied).
        """
        doomed = [u for u in thread.rob if u.seq > boundary_seq]
        if not doomed:
            return
        oldest = doomed[0]
        oldest_branch = next((u for u in doomed if u.checkpoint is not None), None)
        self.squash_from(thread, boundary_seq, now)
        if oldest_branch is not None:
            self.bpu.restore_checkpoint(oldest_branch.checkpoint)
        thread.pc = oldest.pc
        thread.fetch_priv = oldest.inst.privileged
        thread.fetch_stall_until = now + 1
        thread.fetch_wait_uop = None

    # ------------------------------------------------------------------
    # Retire.
    # ------------------------------------------------------------------
    def _retire(self, now: int) -> None:
        progress = True
        while progress:
            progress = False
            for thread in self.threads:
                if thread.state is ThreadState.IDLE or not thread.rob:
                    continue
                head = thread.rob[0]
                if not (head.issued and head.finish_cycle <= now):
                    continue
                if head.state != UopState.WINDOW:
                    continue
                if thread.is_exception_thread:
                    master = self.threads[thread.master_tid]
                    if not master.rob or master.rob[0] is not thread.master_uop:
                        continue
                elif head.linked_handler is not None:
                    continue  # splice: the handler thread retires first
                self._do_retire(thread, head, now)
                progress = True

    def _do_retire(self, thread: ThreadContext, uop: Uop, now: int) -> None:
        thread.rob.popleft()
        self.window.remove(uop)
        uop.state = UopState.RETIRED
        inst = uop.inst
        op = inst.op

        if inst.rd is not None:
            if op in FP_DEST_OPS:
                if uop.value is not None:
                    thread.arch.write_fp(inst.rd, uop.value)
                if thread.fp_map[inst.rd] is uop:
                    thread.fp_map[inst.rd] = None
            else:
                reg = pal_reg(inst.rd) if inst.privileged else inst.rd
                if uop.value is not None:
                    thread.arch.write_int(reg, int(uop.value))
                if thread.int_map[reg] is uop:
                    thread.int_map[reg] = None
        elif uop.dyn_dest is not None:
            thread.arch.write_int(uop.dyn_dest, int(uop.value))
            if thread.int_map[uop.dyn_dest] is uop:
                thread.int_map[uop.dyn_dest] = None

        if inst.is_store:
            self.memory.write_word(uop.eff_addr, uop.value)
            if uop in thread.store_queue:
                thread.store_queue.remove(uop)
            if (
                self.mechanism is not None
                and uop.eff_addr >= self.page_table.base
            ):
                self.mechanism.on_store_retired(uop.eff_addr, now)
        elif inst.is_branch and op is not Opcode.RETI:
            self.bpu.train(
                uop.pc,
                inst,
                uop.checkpoint,
                uop.actual_taken,
                uop.actual_target,
                uop.pred_taken,
                uop.pred_target,
            )
        elif op is Opcode.RETI:
            if self.mechanism is not None:
                self.mechanism.on_reti_retired(uop, now)
        elif op is Opcode.HARDEXC:
            if self.mechanism is not None:
                self.mechanism.on_hardexc(uop, now)
        elif op is Opcode.HALT:
            thread.halted = True

        if uop.is_handler:
            thread.retired_handler += 1
            self.stats.retired_handler += 1
        else:
            thread.retired_user += 1
            self.stats.retired_user += 1
