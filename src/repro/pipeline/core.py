"""The SMT core: the cycle-by-cycle machine model.

One :class:`SMTCore` owns all thread contexts, the shared front end,
window, functional units, and the memory system handles.  Each call to
:meth:`SMTCore.step` advances one cycle through the stages (in reverse
pipeline order so every stage sees the machine state as of the cycle
start):

1. mechanism ``tick`` (hardware walker completions, etc.),
2. retirement (unlimited bandwidth, with cross-thread splicing),
3. schedule/execute (oldest-fetched-first among ready instructions),
4. decode/rename/window-insert,
5. fetch (abstract front end with handler-priority + ICOUNT chooser).

Design points taken straight from the paper's Section 5.1: instructions
are scheduled the same cycle they execute (perfect cache hit/miss
prediction), they must wait ``post_insert_delay`` cycles after window
insertion (register read), retirement bandwidth is unlimited, writeback
is unmodeled, and the front end can supply instructions from multiple
non-contiguous basic blocks in one cycle with no taken-branch limit.
Wrong-path execution is real: it touches the caches and the TLB.
"""

from __future__ import annotations

import dataclasses
import os
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING

from repro.branch.unit import BranchPredictionUnit
from repro.isa import semantics
from repro.isa.instructions import (
    EK_BRANCH,
    EK_CONVERT,
    EK_EMUL,
    EK_FP_ALU,
    EK_HARDEXC,
    EK_INT_ALU,
    EK_MFPR,
    EK_MTDST,
    EK_MTPR,
    EK_TLBWR,
    SRC_FP,
    SRC_IMM,
    SRC_INT,
    Instruction,
    Opcode,
)
from repro.isa.program import Program
from repro.isa.registers import PrivReg
from repro.memory.address import vpn_of
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.main_memory import MainMemory
from repro.memory.page_table import PageTable
from repro.memory.tlb import TLB, PerfectTLB
from repro.pipeline.thread import ThreadContext, ThreadState
from repro.pipeline.uop import Uop, UopState
from repro.pipeline.window import InstructionWindow
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.exceptions.base import ExceptionMechanism

_FAR_FUTURE = 1 << 60

#: ``align_word(semantics.effective_address(...))`` folded into one mask
#: (both the 64-bit value mask and the 8-byte alignment clamp).
_EA_ALIGN_MASK = ((1 << 64) - 1) & ~7


class SMTCore:
    """The simulated simultaneous-multithreading core."""

    def __init__(
        self,
        config: MachineConfig,
        memory: MainMemory,
        hierarchy: MemoryHierarchy,
        dtlb: TLB | PerfectTLB,
        page_table: PageTable,
        bpu: BranchPredictionUnit | None = None,
        mechanism: "ExceptionMechanism | None" = None,
        itlb: TLB | PerfectTLB | None = None,
    ) -> None:
        self.config = config
        self.memory = memory
        self.hierarchy = hierarchy
        self.dtlb = dtlb
        #: Instruction TLB; None models the seed machine (fetch always
        #: translates).  Built by the simulator when config.itlb_entries
        #: is nonzero (repro.scenarios "itlb_miss" cause).
        self.itlb = itlb
        self.page_table = page_table
        self.bpu = bpu or BranchPredictionUnit()
        self.mechanism = mechanism
        self.window = InstructionWindow(config.window_size)
        self.threads = [
            ThreadContext(tid, config.fetch_buffer_size)
            for tid in range(config.num_threads)
        ]
        self.cycle = 0
        self._next_seq = 0
        # Hot-loop constants (invariant after construction).
        self._l1_latency = hierarchy.config.l1_latency
        self._fetch_latency = config.fetch_latency
        self._icount_chooser = config.chooser == "icount"
        self._pt_base = page_table.base
        # Direct L1-I access (the per-fetch probe is the hottest call in
        # the simulator; skip the hierarchy delegation frame).
        self._ifetch = hierarchy.l1i.access
        # Event-driven scheduler state (see _execute).  A window uop lives
        # in exactly one of: a wake bucket (its sources become ready at a
        # known cycle), the retry list (ready but blocked on something
        # re-checked each cycle: memory ordering, reti serialization, FU
        # contention), parked on unissued producers (woken by
        # producer_issued), or parked on ``waiting_fill`` (woken by the
        # mechanism via wake_uop).
        #: cycle -> uops whose sources become ready that cycle.
        self._wake_buckets: dict[int, list[Uop]] = {}
        #: Ready-but-blocked uops, re-examined every executed cycle.
        self._retry: list[Uop] = []
        #: The uop heap (ordered by seq) being drained by an in-progress
        #: _execute; mid-cycle wakes ahead of the scan join it directly.
        self._exec_heap: list | None = None
        self._exec_seq = -1
        #: Did anything observable happen during the current cycle?  Set by
        #: fetch/decode/issue/retire/squash and mechanism port/fetch grants;
        #: a cycle that ends with this still False cannot affect any later
        #: cycle except through the passage of time, which is what lets
        #: :meth:`run` fast-forward the clock (see docs/PERFORMANCE.md).
        self._activity = True
        self.stats = SimStats()
        #: Opt-in observability event bus (docs/OBSERVABILITY.md).
        #: ``None`` when nothing listens; every emission site costs one
        #: ``is not None`` check, so a bus-less machine is bit-identical
        #: to one built before the bus existed.  Attach via
        #: :func:`repro.obs.attach_bus`.
        self.listeners = None
        #: Opt-in runtime invariant checker (docs/ANALYSIS.md).  ``None``
        #: when disabled; the hot-path hooks cost one ``is not None``
        #: check each, nothing more.
        self._sanitizer = None
        if config.sanitize or os.environ.get("REPRO_SANITIZE", "") not in (
            "",
            "0",
        ):
            from repro.analysis.sanitizer import PipelineSanitizer

            self._sanitizer = PipelineSanitizer(self)
            self.window.sanitizer = self._sanitizer
        #: Opt-in deterministic fault injector (docs/ROBUSTNESS.md).
        #: ``None`` when no faults are armed; each hook site costs one
        #: ``is not None`` check, so a fault-free machine is bit-identical
        #: to one built before the injector existed.
        self.faults = None
        fault_spec = config.faults or os.environ.get("REPRO_FAULTS", "")
        if fault_spec:
            from repro.faults.injector import FaultInjector

            self.faults = FaultInjector(self, fault_spec)
        #: PAL entries by handler name, set when programs load; lengths
        #: (per handler) drive window reservations and fetch stop.
        self.pal_entries: dict[str, int] = {}
        self.handler_lengths: dict[str, int] = {}
        # Per-cycle mechanism hooks, cached as bound methods only when the
        # mechanism actually overrides them (skips three no-op calls per
        # cycle for the purely reactive mechanisms).
        self._mech_tick = None
        self._mech_ports = None
        self._mech_fetch_idle = None
        if mechanism is not None:
            mechanism.attach(self)
            from repro.exceptions.base import ExceptionMechanism as _Base

            cls = type(mechanism)
            if cls.tick is not _Base.tick:
                self._mech_tick = mechanism.tick
            if cls.service_mem_ports is not _Base.service_mem_ports:
                self._mech_ports = mechanism.service_mem_ports
            if cls.fetch_idle is not _Base.fetch_idle:
                self._mech_fetch_idle = mechanism.fetch_idle

    # ------------------------------------------------------------------
    # Setup helpers.
    # ------------------------------------------------------------------
    def load_program(self, tid: int, program: Program) -> ThreadContext:
        """Bind ``program`` to thread ``tid`` and load its data image."""
        thread = self.threads[tid]
        thread.activate(program)
        thread.priv_regs[PrivReg.PTBR] = self.page_table.base
        self.memory.load_image(program.build_memory_words())
        self.pal_entries.update(program.pal_entries)
        return thread

    @property
    def pal_entry(self) -> int | None:
        """Entry PC of the DTLB miss handler (the common case)."""
        return self.pal_entries.get("dtlb_miss")

    @property
    def handler_length(self) -> int:
        """Common-case DTLB handler length (reservations, quick-start)."""
        return self.handler_lengths.get("dtlb_miss", 10)

    @handler_length.setter
    def handler_length(self, value: int) -> None:
        self.handler_lengths["dtlb_miss"] = value

    def alloc_seq(self) -> int:
        """Allocate the next global fetch-order sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def find_idle_thread(self) -> ThreadContext | None:
        """An idle hardware context usable for an exception, if any."""
        for thread in self.threads:
            if thread.state is ThreadState.IDLE:
                return thread
        return None

    @property
    def app_threads(self) -> list[ThreadContext]:
        return [t for t in self.threads if t.state is ThreadState.NORMAL]

    # ------------------------------------------------------------------
    # The cycle loop.
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine by one cycle."""
        now = self.cycle
        self._activity = False
        if self._mech_tick is not None:
            self._mech_tick(now)
        self._retire(now)
        self._execute(now)
        self._decode(now)
        self._fetch(now)
        self.cycle += 1
        self.stats.cycles = self.cycle

    def run(self, user_insts: int, max_cycles: int = 10_000_000) -> None:
        """Run until every application thread retires ``user_insts``
        *additional* user-mode instructions (or halts), or ``max_cycles``
        total elapse."""
        watch = [
            (thread, thread.retired_user + user_insts)
            for thread in self.threads
            if thread.state is ThreadState.NORMAL
        ]
        if not self.run_to(watch, max_cycles):
            raise RuntimeError(
                f"simulation exceeded {max_cycles} cycles "
                f"(retired: {[t.retired_user for t in self.threads]})"
            )

    def run_to(
        self, watch: list[tuple[ThreadContext, int]], stop_cycle: int
    ) -> bool:
        """Run until every watched thread reaches its absolute
        ``retired_user`` target (or halts), or the clock reaches
        ``stop_cycle``.  Returns True when the targets completed.

        The loop is the historical :meth:`run` body verbatim; ``run``
        delegates here so the checkpoint autosave runner can execute the
        same simulation in bounded chunks.  Chunking is bit-identical to
        one straight call: the loop only stops at ``stop_cycle`` after a
        completed step (or a fast-forward clamp), and the extra quiet
        step a resumed chunk takes at a clamped boundary changes nothing
        by the quietness invariant documented in :meth:`_next_event`.
        Note the seed semantics are preserved exactly: targets are only
        checked *before* a step, so targets reached exactly when the
        clock runs out still report False.

        This method is the reference root of the kernel-parity pass
        (``repro-lint parity``): every state mutation and hook call
        reachable from here must also appear in the fused kernel
        (``engine/core.py:_run_to_fused``) or be declared in its
        elision ledger.  Edits that add mutations or hooks here will
        fail the lint until the fused kernel follows.
        """
        fast_forward = self.config.fast_forward
        step = self.step
        while self.cycle < stop_cycle:
            for thread, target in watch:
                if (
                    not thread.halted
                    and thread.retired_user < target
                    and thread.state is ThreadState.NORMAL
                ):
                    break
            else:
                return True
            step()
            if fast_forward and not self._activity:
                # Quiet cycle: no machine state changed, so nothing can
                # happen until the earliest time-gated wakeup.  Jump the
                # clock there; every skipped cycle would have been quiet
                # too, so all stats remain bit-identical to the slow path.
                nxt = self._next_event(self.cycle - 1)
                if nxt > self.cycle:
                    self.cycle = min(nxt, stop_cycle)
                    self.stats.cycles = self.cycle
        return False

    def _next_event(self, prev: int) -> int:
        """Earliest cycle after ``prev`` at which anything can happen.

        Called only after a *quiet* cycle ``prev`` (no fetch, decode,
        issue, retire, squash, or mechanism grant).  Quiet means every
        in-flight item is blocked, and each block is either time-gated
        (enumerated below) or released by another blocked item's wakeup:

        * fetch -- stalled until ``fetch_stall_until`` (icache miss,
          redirect) or blocked on buffer space / halt / ``fetch_done`` /
          ``fetch_wait_uop``, all of which clear only via other events;
        * decode -- the buffer head's ``avail_cycle`` (fetch pipe), or
          window-full, which clears at another uop's retirement/squash;
        * schedule -- the wake-bucket cycles (each holds uops whose
          sources become ready exactly then); uops parked on unissued
          producers or TLB fills are covered by their producer's /
          mechanism's own wakeup, and retry-list uops (ready but blocked
          on memory ordering, reti serialization, or FU contention) are
          covered by their blockers: contention implies an issue happened
          (not a quiet cycle), and ordering/serialization blockers are
          themselves bucketed, parked, or retrying;
        * retire -- the per-thread ROB head's ``finish_cycle``; splice
          gating is covered by the handler thread's own entries;
        * mechanism -- :meth:`ExceptionMechanism.next_event_cycle`
          (hardware-walker completions; reactive mechanisms report "far").
        """
        nxt = _FAR_FUTURE
        for thread in self.threads:
            if thread.state is ThreadState.IDLE or thread.halted:
                continue
            stall = thread.fetch_stall_until
            if prev < stall < nxt:
                nxt = stall
            if thread.fetch_buffer:
                avail = thread.fetch_buffer[0].avail_cycle
                if prev < avail < nxt:
                    nxt = avail
            if thread.rob:
                head = thread.rob[0]
                if head.issued and prev < head.finish_cycle < nxt:
                    nxt = head.finish_cycle
        for cyc in self._wake_buckets:
            if prev < cyc < nxt:
                nxt = cyc
        if self.mechanism is not None:
            mech = self.mechanism.next_event_cycle(prev)
            if mech < nxt:
                nxt = mech
        return nxt

    # ------------------------------------------------------------------
    # Fetch.
    # ------------------------------------------------------------------
    def _fetch_priority(self) -> list[ThreadContext]:
        """Thread order for fetch/decode: handler threads first, then the
        configured chooser among application threads."""
        handlers = []
        apps = []
        for t in self.threads:
            state = t.state
            if state is ThreadState.NORMAL:
                apps.append(t)
            elif state is ThreadState.EXCEPTION:
                handlers.append(t)
        if self._icount_chooser:
            if len(apps) > 1:
                apps.sort(key=lambda t: (len(t.rob), t.tid))
        else:
            offset = self.cycle % max(1, len(apps)) if apps else 0
            apps = apps[offset:] + apps[:offset]
        if not handlers:
            return apps
        if not self.config.handler_fetch_priority:
            return apps + handlers
        return handlers + apps

    def _fetch(self, now: int) -> None:
        config = self.config
        budget = config.width
        free_handler_fetch = config.limits.no_fetch_bandwidth
        for thread in self._fetch_priority():
            handler_free = free_handler_fetch and thread.is_exception_thread
            if budget <= 0 and not handler_free:
                continue
            if not thread.can_fetch(now):
                continue
            # Inside the loop only buffer space can newly block: every
            # other can_fetch condition flips only via a _fetch_one that
            # already returned False (stall, redirect wait, halt, done).
            buf = thread.fetch_buffer
            cap = thread.fetch_buffer_size
            per_thread = config.width
            while per_thread > 0 and (budget > 0 or handler_free) and len(buf) < cap:
                if not self._fetch_one(thread, now):
                    break
                per_thread -= 1
                if not handler_free:
                    budget -= 1
        if budget > 0 and self._mech_fetch_idle is not None:
            used = self._mech_fetch_idle(now, budget)
            if used:
                budget -= used
                self._activity = True

    def _fetch_one(self, thread: ThreadContext, now: int) -> bool:
        """Fetch a single instruction for ``thread``; False to stop."""
        pc = thread.pc
        insts = thread.program.insts
        if not 0 <= pc < len(insts):
            # Wrong-path fetch ran off the text segment: wait for a squash.
            thread.fetch_stall_until = _FAR_FUTURE
            return False
        inst = insts[pc]
        if inst.privileged and not thread.fetch_priv:
            # Wrong-path fetch fell into PAL code: privilege fence.
            thread.fetch_stall_until = _FAR_FUTURE
            return False

        # Instruction-TLB probe (user-mode fetch only: PAL handler fetch
        # is physically mapped, like the handler's privileged loads).
        itlb = self.itlb
        if (
            itlb is not None
            and not thread.fetch_priv
            and itlb.lookup(vpn_of(pc * 4)) is None
        ):
            self.stats.itlb_miss_events += 1
            self._activity = True
            if self.listeners is not None:
                self.listeners.exception(now, thread.tid, -1, pc, "itlb_miss")
            if self.mechanism is not None:
                self.mechanism.on_itlb_miss(thread, pc, now)
            return False

        # Instruction cache probe (wrong-path fetch pollutes it too).
        ready = self._ifetch(pc * 4, now)
        if ready > now + self._l1_latency:
            thread.fetch_stall_until = ready
            return False

        seq = self._next_seq
        self._next_seq = seq + 1
        uop = Uop(seq, thread.tid, pc, inst)
        uop.fetch_cycle = now
        uop.avail_cycle = now + self._fetch_latency
        uop.is_handler = inst.privileged
        if thread.overfetch_after_reti:
            uop.discard = True
        thread.rob.append(uop)
        thread.fetch_buffer.append(uop)
        self.stats.fetched += 1
        self._activity = True
        if self.listeners is not None:
            self.listeners.fetch(
                now, thread.tid, seq, pc, inst.op.value, uop.is_handler
            )

        op = inst.op
        if op is Opcode.HALT:
            thread.fetch_wait_uop = uop
            return False
        if inst.is_branch:
            pred = self.bpu.predict(pc, inst)
            uop.checkpoint = pred.checkpoint
            uop.pred_taken = pred.taken
            uop.pred_target = pred.target
            if self.faults is not None and inst.is_cond_branch:
                self.faults.poison_branch(uop, now)
            if op is Opcode.RETI:
                if thread.is_exception_thread:
                    if self.config.predict_handler_length:
                        thread.fetch_done = True
                        return False
                    # No length prediction: keep fetching (and wasting
                    # bandwidth) past the handler until reti is decoded.
                    thread.overfetch_after_reti = True
                    thread.pc = pc + 1
                    return True
                thread.fetch_wait_uop = uop
                return False
            thread.pc = uop.pred_target if uop.pred_taken else pc + 1
            return True
        thread.pc = pc + 1
        return True

    # ------------------------------------------------------------------
    # Decode / rename / window insertion.
    # ------------------------------------------------------------------
    def _decode(self, now: int) -> None:
        for thread in self.threads:
            if thread.fetch_buffer:
                break
        else:
            return
        config = self.config
        budget = config.width
        limits = config.limits
        free_handler_decode = limits.no_fetch_bandwidth
        no_window_overhead = limits.no_window_overhead
        sched_delay = config.decode_latency + config.post_insert_delay
        window = self.window
        stats = self.stats
        for thread in self._fetch_priority():
            buf = thread.fetch_buffer
            # Per-thread invariants: decoding this thread cannot change its
            # own exception linkage (admission squashes hit the *master*
            # thread's tail, which never reaches the excepting uop).
            is_exc = thread.is_exception_thread
            handler_free = free_handler_decode and is_exc
            exc_id = None
            if is_exc and thread.exc_instance is not None:
                exc_id = thread.exc_instance.id
            while buf and (budget > 0 or handler_free):
                uop = buf[0]
                if uop.avail_cycle > now:
                    break
                if uop.discard:
                    buf.popleft()
                    thread.rob.remove(uop)
                    uop.state = UopState.SQUASHED
                    stats.overfetch_discarded += 1
                    self._activity = True
                    if not handler_free:
                        budget -= 1
                    continue
                if not uop.is_handler:
                    # Common case inlined from _admit: an application uop
                    # may not claim a reserved slot.
                    if (
                        window._occupancy + window._reserved_total
                        >= window.capacity
                    ):
                        break
                elif not self._admit(thread, uop, now):
                    break
                buf.popleft()
                if uop.inst.op is Opcode.RETI and is_exc:
                    # Reti decoded: stop any overfetch past the handler.
                    thread.fetch_done = True
                    thread.overfetch_after_reti = False
                self._rename(thread, uop)
                if no_window_overhead and uop.is_handler:
                    uop.free_slot = True
                window.insert(uop, exc_id)
                uop.insert_cycle = now
                uop.min_sched_cycle = now + sched_delay
                uop.state = UopState.WINDOW
                self._schedule_uop(uop)
                self._activity = True
                if not handler_free:
                    budget -= 1
            if budget <= 0 and not free_handler_decode:
                break

    def _admit(self, thread: ThreadContext, uop: Uop, now: int) -> bool:
        """Window admission check, including deadlock avoidance."""
        window = self.window
        if uop.is_handler and thread.is_exception_thread:
            if self.config.limits.no_window_overhead:
                return True
            if window._occupancy < window.capacity:
                return True
            return self._make_room_for_handler(thread, now)
        if uop.is_handler:
            # Traditional handler uops run in the application thread and
            # are admitted like ordinary instructions (no reservations).
            return window._occupancy < window.capacity
        return window._occupancy + window._reserved_total < window.capacity

    def _make_room_for_handler(self, exc_thread: ThreadContext, now: int) -> bool:
        """Squash the master thread's tail so the handler can advance.

        The paper's deadlock-avoidance rule: reclaim window slots from the
        youngest post-exception instructions, never killing the excepting
        instruction itself (in which case the handler stalls instead).
        """
        master = self.threads[exc_thread.master_tid]
        master_uop = exc_thread.master_uop
        if master_uop is None:
            return False
        boundary = None
        freed = 0
        for victim in reversed(master.rob):
            if victim.seq <= master_uop.seq:
                break
            boundary = victim
            if victim.state == UopState.WINDOW and not victim.free_slot:
                freed += 1
                if freed >= 1:
                    break
        if boundary is None or freed == 0:
            return False
        self.window.tail_squashes += 1
        self._resource_squash(master, boundary.seq - 1, now)
        return self.window.occupancy < self.window.capacity

    def _rename(self, thread: ThreadContext, uop: Uop) -> None:
        """Record dataflow sources and claim the destination mapping.

        Operand spaces and PAL-resolved register indices were precomputed
        at :class:`Instruction` construction (``src_*_kind``/``src_*_idx``).
        """
        inst = uop.inst
        kind = inst.src_a_kind
        if kind == SRC_INT:
            reg = inst.src_a_idx
            producer = thread.int_map[reg]
            if producer is not None:
                uop.src_a_uop = producer
            else:
                uop.src_a_value = thread.arch.read_int(reg)
        elif kind == SRC_FP:
            reg = inst.src_a_idx
            producer = thread.fp_map[reg]
            if producer is not None:
                uop.src_a_uop = producer
            else:
                uop.src_a_value = thread.arch.read_fp(reg)
        kind = inst.src_b_kind
        if kind == SRC_INT:
            reg = inst.src_b_idx
            producer = thread.int_map[reg]
            if producer is not None:
                uop.src_b_uop = producer
            else:
                uop.src_b_value = thread.arch.read_int(reg)
        elif kind == SRC_IMM:
            uop.src_b_value = inst.imm0
        elif kind == SRC_FP:
            reg = inst.src_b_idx
            producer = thread.fp_map[reg]
            if producer is not None:
                uop.src_b_uop = producer
            else:
                uop.src_b_value = thread.arch.read_fp(reg)

        kind = inst.dest_kind
        if kind == SRC_FP:
            thread.fp_map[inst.dest_idx] = uop
        elif kind == SRC_INT:
            thread.int_map[inst.dest_idx] = uop
        elif inst.op is Opcode.MTDST and not thread.is_exception_thread:
            # Traditional emulation: mtdst writes the excepting
            # instruction's (user) destination register; the hardware
            # latched its index at the trap.
            dest = thread.priv_regs[PrivReg.EXC_DST]
            if 0 < dest < 32:
                uop.dyn_dest = dest
                thread.int_map[dest] = uop
        if inst.is_store:
            thread.store_queue.append(uop)
        uop.renamed = True

    # ------------------------------------------------------------------
    # Schedule / execute.
    # ------------------------------------------------------------------
    def _schedule_uop(self, uop: Uop) -> None:
        """Register a freshly inserted window uop with the scheduler.

        If every producer has issued, the uop goes into the wake bucket
        of the cycle its last source (or the post-insert delay) lands;
        otherwise it parks on its unissued producers, which wake it from
        :meth:`producer_issued`.
        """
        wake = uop.min_sched_cycle
        wait = 0
        p = uop.src_a_uop
        if p is not None:
            if p.issued:
                if p.finish_cycle > wake:
                    wake = p.finish_cycle
            else:
                if p.consumers is None:
                    p.consumers = [uop]
                else:
                    p.consumers.append(uop)
                wait += 1
        p = uop.src_b_uop
        if p is not None:
            if p.issued:
                if p.finish_cycle > wake:
                    wake = p.finish_cycle
            else:
                if p.consumers is None:
                    p.consumers = [uop]
                else:
                    p.consumers.append(uop)
                wait += 1
        uop.wait_count = wait
        uop.src_wake = wake
        if wait == 0:
            uop.scheduled = True
            buckets = self._wake_buckets
            if wake in buckets:
                buckets[wake].append(uop)
            else:
                buckets[wake] = [uop]

    def producer_issued(self, producer: Uop) -> None:
        """Wake the consumers parked on ``producer`` (which just issued).

        Called by the core at every issue, and by the multithreaded
        mechanism when ``mtdst`` completes an emulated instruction on the
        excepting uop's behalf.
        """
        consumers = producer.consumers
        if consumers is None:
            return
        producer.consumers = None
        fin = producer.finish_cycle
        buckets = self._wake_buckets
        for c in consumers:
            if fin > c.src_wake:
                c.src_wake = fin
            c.wait_count -= 1
            if c.wait_count == 0 and not c.scheduled and c.state == UopState.WINDOW:
                c.scheduled = True
                wake = c.src_wake
                if wake in buckets:
                    buckets[wake].append(c)
                else:
                    buckets[wake] = [c]

    def wake_uop(self, uop: Uop) -> None:
        """Re-enter ``uop`` into scheduling after an asynchronous unblock
        (its TLB fill arrived, a reclaimed instance re-raises it, ...).

        A wake during ``_execute`` whose seq is still ahead of the scan
        position joins the current cycle's examine heap -- exactly the
        uops the old full linear scan would still have visited this
        cycle; everything else is examined next executed cycle.
        """
        if uop.scheduled or uop.issued or uop.state != UopState.WINDOW:
            return
        heap = self._exec_heap
        if heap is not None and uop.seq > self._exec_seq:
            heappush(heap, uop)
        else:
            self._retry.append(uop)
        uop.scheduled = True

    def _execute(self, now: int) -> None:
        entries = self._wake_buckets.pop(now, None)
        retry = self._retry
        if retry:
            if entries is None:
                entries = []
            entries.extend(retry)
            retry.clear()
        ports = self._mech_ports
        pool = self.config.fu_pool
        if not entries:
            if ports is not None and pool.mem > 0:
                if ports(now, pool.mem):
                    self._activity = True
            return
        config = self.config
        budget = config.width
        fu_used = {"alu": 0, "muldiv": 0, "fp": 0, "fpdiv": 0, "mem": 0}
        free_handler_exec = config.limits.no_execute_bandwidth
        # The examine heap holds uops directly (Uop orders by seq).
        heap = entries
        heapify(heap)
        self._exec_heap = heap
        retry_append = retry.append
        while heap:
            uop = heappop(heap)
            if budget <= 0 and not free_handler_exec:
                # Out of issue bandwidth: everything still queued re-arms
                # for next cycle (the old scan's early `break`).
                retry_append(uop)
                while heap:
                    retry_append(heappop(heap))
                break
            self._exec_seq = uop.seq
            uop.scheduled = False
            if uop.state != UopState.WINDOW or uop.issued:
                continue  # squashed or completed by a mid-loop event
            if uop.waiting_fill is not None:
                continue  # parked: the mechanism wakes it via wake_uop
            if uop.min_sched_cycle > now or not uop.src_ready(now):
                # An asynchronous re-raise re-entered it early: re-time.
                self._schedule_uop(uop)
                continue
            inst = uop.inst
            if inst.is_load and not self._load_ordering_ok(uop, now):
                retry_append(uop)
                uop.scheduled = True
                continue
            if inst.op is Opcode.RETI and not self._older_all_issued(uop):
                # Return-from-exception serializes: it must not redirect
                # fetch before the handler's tlbwr has installed the fill.
                retry_append(uop)
                uop.scheduled = True
                continue
            handler_free = free_handler_exec and uop.is_handler
            group = inst.fu_group
            if not handler_free and (
                budget <= 0 or fu_used[group] >= pool.capacity(group)
            ):
                retry_append(uop)
                uop.scheduled = True
                continue
            # An issue attempt always changes machine state: either the
            # uop issues, or it raises an exception event (TLB miss /
            # emulation) through the mechanism.
            self._activity = True
            if self._issue(uop, now):
                if self.listeners is not None:
                    self.listeners.issue(
                        now, uop.thread_id, uop.seq, uop.pc,
                        uop.inst.op.value, uop.is_handler,
                    )
                if not handler_free:
                    fu_used[group] += 1
                    budget -= 1
        self._exec_heap = None
        self._exec_seq = -1
        if ports is not None:
            free_mem = pool.mem - fu_used["mem"]
            if free_mem > 0:
                if ports(now, free_mem):
                    self._activity = True

    def _older_all_issued(self, uop: Uop) -> bool:
        """True when every older same-thread uop has issued."""
        for older in self.threads[uop.thread_id].rob:
            if older.seq >= uop.seq:
                return True
            if not older.issued and older.state != UopState.SQUASHED:
                return False
        return True

    @staticmethod
    def _store_addr_if_known(store: Uop, now: int) -> int | None:
        """A store's effective address once its base operand is ready.

        Models the usual STA/STD split: the address generation of a store
        completes as soon as the base register is available, even if the
        store data is still in flight.
        """
        if store.issued:
            return store.eff_addr
        base_producer = store.src_a_uop
        if base_producer is not None:
            if not (base_producer.issued and base_producer.finish_cycle <= now):
                return None
            base = base_producer.value
        else:
            base = store.src_a_value
        # align_word(effective_address(...)) with the masks folded together.
        return (int(base) + store.inst.imm0) & _EA_ALIGN_MASK

    def _load_ordering_ok(self, uop: Uop, now: int) -> bool:
        """Memory disambiguation for a load about to issue.

        The load waits on any older same-thread store whose address is
        still unknown, and on a matching-address store whose data is not
        yet available (it will forward once the store issues).  Stores to
        other addresses are bypassed -- this is what lets independent
        iterations overlap their cache and TLB misses.
        """
        if uop.inst.privileged:
            return True  # handler loads: the handler performs no stores
        thread = self.threads[uop.thread_id]
        if not thread.store_queue:
            return True
        producer = uop.src_a_uop
        base = producer.value if producer is not None else uop.src_a_value
        addr = (int(base or 0) + uop.inst.imm0) & _EA_ALIGN_MASK
        for store in thread.store_queue:
            if store.seq >= uop.seq:
                break
            store_addr = self._store_addr_if_known(store, now)
            if store_addr is None:
                return False
            if store_addr == addr and not store.issued:
                return False
        return True

    def _issue(self, uop: Uop, now: int) -> bool:
        """Execute ``uop`` functionally and stamp its completion time.

        Returns False when the uop could not issue after all (it raised a
        TLB miss and is now waiting or was squashed by a trap).
        """
        inst = uop.inst
        thread = self.threads[uop.thread_id]
        a, b = uop.src_values()

        if inst.is_mem:
            return self._issue_mem(uop, thread, inst, a, b, now)

        latency = inst.fu_latency0
        kind = inst.exec_kind
        if kind == EK_INT_ALU:
            uop.value = semantics.compute_int(inst, int(a), int(b))
        elif kind == EK_BRANCH:
            return self._issue_branch(uop, thread, inst, a, b, now)
        elif kind == EK_FP_ALU:
            uop.value = semantics.compute_fp(inst, float(a), float(b))
        elif kind == EK_CONVERT:
            uop.value = semantics.convert(inst, a)
        elif kind == EK_MFPR:
            uop.value = thread.priv_regs[inst.imm]
        elif kind == EK_MTPR:
            thread.priv_regs[inst.imm] = int(a)
            uop.value = None
        elif kind == EK_TLBWR:
            if self.mechanism is not None:
                self.mechanism.on_tlbwr(uop, int(a), int(b), now)
        elif kind == EK_EMUL:
            if self.mechanism is None:
                # The perfect machine implements the operation natively.
                uop.value = semantics.compute_int(inst, int(a), 0)
            else:
                # emul/brev/swint all trap to software service; the cause
                # string is the mnemonic ("emul", "brev", "swint").
                self.stats.emulation_events += 1
                if self.listeners is not None:
                    self.listeners.exception(
                        now, uop.thread_id, uop.seq, uop.pc, inst.op.value
                    )
                self.mechanism.on_emulation(uop, int(a), now)
                return False  # waits for the handler's mtdst
        elif kind == EK_MTDST:
            uop.value = int(a) & ((1 << 64) - 1)
            if self.mechanism is not None:
                self.mechanism.on_mtdst(uop, int(a), now)
        elif kind == EK_HARDEXC:
            # Takes effect at retirement: a speculatively fetched hardexc
            # (e.g. behind a mispredicted handler branch) must not revert.
            uop.value = None
        else:  # EK_NOP: nop / halt
            uop.value = None

        uop.issued = True
        uop.issue_cycle = now
        uop.finish_cycle = now + latency
        if uop.consumers is not None:
            self.producer_issued(uop)
        return True

    def _issue_mem(
        self,
        uop: Uop,
        thread: ThreadContext,
        inst: Instruction,
        a,
        b,
        now: int,
    ) -> bool:
        addr = (int(a) + inst.imm0) & _EA_ALIGN_MASK
        uop.eff_addr = addr
        faults = self.faults
        if not inst.privileged:
            if (
                self.config.align_check
                and inst.op is Opcode.LD
                and (int(a) + inst.imm0) & 7
                and self.mechanism is not None
            ):
                # Misaligned user load: trap to the fixup handler, which
                # loads the aligned-down word and completes the load via
                # mtdst.  (The perfect machine force-aligns silently via
                # _EA_ALIGN_MASK, which computes the identical value.)
                raw = (int(a) + inst.imm0) & ((1 << 64) - 1)
                self.stats.unaligned_events += 1
                if self.listeners is not None:
                    self.listeners.exception(
                        now, uop.thread_id, uop.seq, uop.pc, "unaligned"
                    )
                self.mechanism.on_unaligned(uop, raw, now)
                return False  # waits for the handler's mtdst
            if faults is not None:
                faults.on_mem_access(uop, addr, now)
            entry = self.dtlb.lookup(vpn_of(addr))
            if entry is None:
                self.stats.dtlb_miss_events += 1
                if self.listeners is not None:
                    self.listeners.exception(
                        now, uop.thread_id, uop.seq, uop.pc, "dtlb_miss"
                    )
                if self.mechanism is not None:
                    self.mechanism.on_dtlb_miss(uop, addr, vpn_of(addr), now)
                return False
        if inst.is_load:
            forwarded = None
            if not inst.privileged:
                for store in reversed(thread.store_queue):
                    if store.seq < uop.seq and store.issued and store.eff_addr == addr:
                        forwarded = store.value
                        break
            if forwarded is not None:
                uop.value = forwarded
                ready = now + self.hierarchy.config.l1_latency
                self.stats.store_forwards += 1
            else:
                uop.value = self.memory.read_word(addr)
                ready = self.hierarchy.load(addr, now)
                if faults is not None:
                    ready += faults.load_delay(uop, addr, now)
            if inst.op is Opcode.FLD:
                uop.value = float(uop.value)
            else:
                uop.value = int(uop.value) & ((1 << 64) - 1)
            uop.finish_cycle = ready
        else:
            uop.value = b  # store data
            self.hierarchy.store(addr, now)
            uop.finish_cycle = now + self.config.store_latency
        uop.issued = True
        uop.issue_cycle = now
        if uop.consumers is not None:
            self.producer_issued(uop)
        return True

    def _issue_branch(
        self,
        uop: Uop,
        thread: ThreadContext,
        inst: Instruction,
        a,
        b,
        now: int,
    ) -> bool:
        op = inst.op
        taken = True
        if inst.is_cond_branch:
            taken = semantics.branch_taken(inst, int(a), int(b))
            target = inst.target if taken else uop.pc + 1
        elif op in (Opcode.JMP, Opcode.CALL):
            target = inst.target
        elif op in (Opcode.CALLI, Opcode.JMPI, Opcode.RET):
            target = int(a) % max(1, len(thread.program.insts) + 1)
        elif op is Opcode.RETI:
            target = thread.priv_regs[PrivReg.EXC_PC]
        else:  # pragma: no cover
            raise AssertionError(f"unexpected branch {inst}")

        if op in (Opcode.CALL, Opcode.CALLI):
            uop.value = uop.pc + 1  # link register
        uop.actual_taken = taken
        uop.actual_target = target
        uop.issued = True
        uop.issue_cycle = now
        uop.finish_cycle = now + 1
        if uop.consumers is not None:
            self.producer_issued(uop)

        if op is Opcode.RETI:
            if self.mechanism is not None:
                self.mechanism.on_reti_executed(uop, now)
            return True
        mispredicted = taken != uop.pred_taken or (
            taken and target != uop.pred_target
        )
        if mispredicted:
            self._mispredict(thread, uop, now)
        return True

    def _mispredict(self, thread: ThreadContext, uop: Uop, now: int) -> None:
        self.stats.mispredicts += 1
        self.squash_from(thread, uop.seq, now)
        self.bpu.repair(
            uop.pc, uop.inst, uop.checkpoint, uop.actual_taken, uop.actual_target
        )
        thread.pc = uop.actual_target
        thread.fetch_priv = uop.inst.privileged
        thread.fetch_stall_until = now + 1
        thread.fetch_wait_uop = None
        thread.fetch_done = False
        thread.overfetch_after_reti = False

    # ------------------------------------------------------------------
    # Squash machinery.
    # ------------------------------------------------------------------
    def squash_from(self, thread: ThreadContext, boundary_seq: int, now: int) -> int:
        """Squash every uop of ``thread`` with ``seq > boundary_seq``.

        Returns the number of squashed uops.  Exception threads linked to
        squashed excepting instructions are reclaimed via the mechanism.
        """
        squashed = 0
        while thread.rob and thread.rob[-1].seq > boundary_seq:
            victim = thread.rob.pop()
            self._squash_uop(thread, victim, now)
            squashed += 1
        if squashed:
            thread.rebuild_rename_maps()
            self.stats.squashed += squashed
            self._activity = True
        if thread.fetch_wait_uop is not None and (
            thread.fetch_wait_uop.state == UopState.SQUASHED
        ):
            thread.fetch_wait_uop = None
        return squashed

    def _squash_uop(self, thread: ThreadContext, victim: Uop, now: int) -> None:
        if self.listeners is not None:
            self.listeners.squash(
                now, thread.tid, victim.seq, victim.pc,
                victim.inst.op.value, victim.is_handler,
            )
        state = victim.state
        if state == UopState.WINDOW:
            self.window.remove(victim)
        elif state == UopState.FETCH_BUF:
            # Squashes walk the ROB tail youngest-first, so the victim is
            # almost always the buffer's newest entry.
            buf = thread.fetch_buffer
            if buf:
                if buf[-1] is victim:
                    buf.pop()
                else:
                    try:
                        buf.remove(victim)
                    except ValueError:
                        pass
        victim.state = UopState.SQUASHED
        if victim.inst.is_store:
            queue = thread.store_queue
            if queue:
                if queue[-1] is victim:
                    queue.pop()
                elif victim in queue:
                    queue.remove(victim)
        if self.mechanism is not None:
            self.mechanism.on_uop_squashed(victim, now)

    def squash_all(self, thread: ThreadContext, now: int) -> int:
        """Squash every in-flight uop of ``thread`` (thread reclaim)."""
        return self.squash_from(thread, -1, now)

    def _resource_squash(self, thread: ThreadContext, boundary_seq: int, now: int) -> None:
        """Squash for window-space reclamation (not a misprediction).

        The squashed instructions are simply refetched from the oldest
        squashed PC; front-end speculative state is restored to the oldest
        squashed branch's checkpoint (no outcome is re-applied).
        """
        doomed = [u for u in thread.rob if u.seq > boundary_seq]
        if not doomed:
            return
        oldest = doomed[0]
        oldest_branch = next((u for u in doomed if u.checkpoint is not None), None)
        self.squash_from(thread, boundary_seq, now)
        if oldest_branch is not None:
            self.bpu.restore_checkpoint(oldest_branch.checkpoint)
        thread.pc = oldest.pc
        thread.fetch_priv = oldest.inst.privileged
        thread.fetch_stall_until = now + 1
        thread.fetch_wait_uop = None

    # ------------------------------------------------------------------
    # Retire.
    # ------------------------------------------------------------------
    def _retire(self, now: int) -> None:
        threads = self.threads
        do_retire = self._do_retire
        progress = True
        while progress:
            progress = False
            for thread in threads:
                if thread.state is ThreadState.IDLE:
                    continue
                rob = thread.rob
                if not rob:
                    continue
                head = rob[0]
                if not head.issued or head.finish_cycle > now:
                    continue
                if head.state != UopState.WINDOW:
                    continue
                if thread.is_exception_thread:
                    # Splice gate: retire in the master's program order.
                    # Master-less handlers (itlb_miss: the faulting fetch
                    # produced no uop) retire freely.
                    master_uop = thread.master_uop
                    if master_uop is not None:
                        master = threads[thread.master_tid]
                        if not master.rob or master.rob[0] is not master_uop:
                            continue
                elif head.linked_handler is not None:
                    continue  # splice: the handler thread retires first
                do_retire(thread, head, now)
                progress = True

    def _do_retire(self, thread: ThreadContext, uop: Uop, now: int) -> None:
        if self._sanitizer is not None:
            self._sanitizer.on_retire(thread, uop, now)
        if self.listeners is not None:
            self.listeners.retire(
                now, thread.tid, uop.seq, uop.pc, uop.inst.op.value,
                uop.is_handler,
            )
        thread.rob.popleft()
        self.window.remove(uop)
        uop.state = UopState.RETIRED
        self._activity = True
        inst = uop.inst
        op = inst.op

        kind = inst.dest_kind
        if kind == SRC_FP:
            reg = inst.dest_idx
            if uop.value is not None:
                thread.arch.write_fp(reg, uop.value)
            if thread.fp_map[reg] is uop:
                thread.fp_map[reg] = None
        elif kind == SRC_INT:
            reg = inst.dest_idx
            if uop.value is not None:
                thread.arch.write_int(reg, int(uop.value))
            if thread.int_map[reg] is uop:
                thread.int_map[reg] = None
        elif uop.dyn_dest is not None:
            thread.arch.write_int(uop.dyn_dest, int(uop.value))
            if thread.int_map[uop.dyn_dest] is uop:
                thread.int_map[uop.dyn_dest] = None

        if inst.is_store:
            self.memory.write_word(uop.eff_addr, uop.value)
            queue = thread.store_queue
            if queue:
                # Retirement is oldest-first: the head is the usual hit.
                if queue[0] is uop:
                    del queue[0]
                elif uop in queue:
                    queue.remove(uop)
            if self.mechanism is not None and uop.eff_addr >= self._pt_base:
                self.mechanism.on_store_retired(uop.eff_addr, now)
        elif inst.is_branch and op is not Opcode.RETI:
            self.bpu.train(
                uop.pc,
                inst,
                uop.checkpoint,
                uop.actual_taken,
                uop.actual_target,
                uop.pred_taken,
                uop.pred_target,
            )
        elif op is Opcode.RETI:
            if self.mechanism is not None:
                self.mechanism.on_reti_retired(uop, now)
        elif op is Opcode.HARDEXC:
            if self.mechanism is not None:
                self.mechanism.on_hardexc(uop, now)
        elif op is Opcode.HALT:
            thread.halted = True

        if uop.is_handler:
            thread.retired_handler += 1
            self.stats.retired_handler += 1
        else:
            thread.retired_user += 1
            self.stats.retired_user += 1

        if self.faults is not None:
            self.faults.on_retire(thread, uop, now)

    # ------------------------------------------------------------------
    # Checkpoint support.
    # ------------------------------------------------------------------
    def drain_in_flight(self, now: int) -> None:
        """Squash every in-flight instruction and cancel exception work.

        Warm-checkpoint quiesce: after this the machine holds only
        *architectural* state (registers, memory, committed TLB entries,
        caches, predictor tables) plus empty pipeline structures, so a
        snapshot taken here can be restored under any exception
        mechanism.  Threads resume fetching at the architecturally
        correct PC; a thread caught mid-trap-handler rewinds via the
        mechanism's :meth:`drain_resume_pc`.  Consumes zero simulated
        cycles (counters such as ``stats.squashed`` do move, which is
        why warm measurements are always taken as deltas).
        """
        # Pre-scan: the BPU is shared, so collect the globally oldest
        # squashable branch checkpoint before any squash cascades run.
        restore_cp = None
        restore_seq = _FAR_FUTURE
        plans: list[tuple[ThreadContext, bool, int]] = []
        for thread in self.threads:
            for uop in thread.rob:
                if uop.checkpoint is not None and uop.seq < restore_seq:
                    restore_seq = uop.seq
                    restore_cp = uop.checkpoint
                    break
            if thread.state is ThreadState.NORMAL:
                handler_active = thread.fetch_priv or any(
                    u.is_handler for u in thread.rob
                )
                oldest_pc = thread.rob[0].pc if thread.rob else thread.pc
                plans.append((thread, handler_active, oldest_pc))
        for thread, handler_active, oldest_pc in plans:
            # Squashing the master's tail cascades into any linked
            # exception threads via the mechanism's on_uop_squashed.
            self.squash_all(thread, now)
            if handler_active and self.mechanism is not None:
                thread.pc = self.mechanism.drain_resume_pc(thread)
            else:
                thread.pc = oldest_pc
            thread.fetch_priv = False
            thread.fetch_stall_until = now
            thread.fetch_wait_uop = None
            thread.fetch_done = False
            thread.overfetch_after_reti = False
        if restore_cp is not None:
            self.bpu.restore_checkpoint(restore_cp)
        if self.mechanism is not None:
            self.mechanism.drain(now)
        # No in-flight handler can confirm a speculative fill any more.
        self.dtlb.rollback_all_speculative()
        if self.itlb is not None:
            self.itlb.rollback_all_speculative()
        # Only squashed uops can remain queued; drop them.
        self._wake_buckets.clear()
        self._retry.clear()
        if len(self.window) or self.window.occupancy:
            raise RuntimeError("drain left the instruction window occupied")

    #: Rebuilt from MachineConfig / wiring at construction, or rebound by
    #: attach(): not part of the snapshot.
    _SNAPSHOT_TRANSIENT = (
        "config", "memory", "hierarchy", "dtlb", "itlb", "page_table", "bpu",
        "mechanism", "_l1_latency", "_fetch_latency", "_icount_chooser",
        "_pt_base", "_ifetch", "listeners", "_sanitizer", "_mech_tick",
        "_mech_ports", "_mech_fetch_idle",
    )

    def snapshot_state(self, ctx) -> dict:
        """Encode core state; uop references register with ``ctx``."""
        if self._exec_heap is not None or self._exec_seq != -1:
            raise RuntimeError(
                "core snapshot is only defined between step() boundaries"
            )
        return {
            "cycle": self.cycle,
            "next_seq": self._next_seq,
            "activity": self._activity,
            "stats": dataclasses.asdict(self.stats),
            "pal_entries": dict(self.pal_entries),
            "handler_lengths": dict(self.handler_lengths),
            "threads": [t.snapshot_state(ctx) for t in self.threads],
            "window": self.window.snapshot_state(ctx),
            "wake_buckets": [
                [cyc, [ctx.uop_ref(u) for u in self._wake_buckets[cyc]]]
                for cyc in sorted(self._wake_buckets)
            ],
            "retry": [ctx.uop_ref(u) for u in self._retry],
            "faults": (
                self.faults.snapshot_state(ctx)
                if self.faults is not None
                else None
            ),
        }

    def restore_state(self, state: dict, ctx) -> None:
        """Second restore phase: uops already exist in ``ctx``."""
        self.cycle = state["cycle"]
        self._next_seq = state["next_seq"]
        self._activity = state["activity"]
        # .get(): snapshots written before a counter existed restore with
        # that counter at its fresh default (zero / empty dict).
        for f in dataclasses.fields(self.stats):
            if f.name in state["stats"]:
                setattr(self.stats, f.name, state["stats"][f.name])
        self.pal_entries = dict(state["pal_entries"])
        self.handler_lengths = dict(state["handler_lengths"])
        if len(state["threads"]) != len(self.threads):
            raise ValueError(
                f"snapshot has {len(state['threads'])} thread contexts, "
                f"core has {len(self.threads)}"
            )
        for thread, tstate in zip(self.threads, state["threads"]):
            thread.restore_state(tstate, ctx)
        self.window.restore_state(state["window"], ctx)
        self._wake_buckets = {
            cyc: [ctx.resolve_uop(s) for s in seqs]
            for cyc, seqs in state["wake_buckets"]
        }
        self._retry = [ctx.resolve_uop(s) for s in state["retry"]]
        # Older checkpoints predate the fault injector; a snapshot taken
        # with faults off restores cleanly into a faulted machine (the
        # injector simply starts its streams from zero).
        fault_state = state.get("faults")
        if fault_state is not None and self.faults is not None:
            self.faults.restore_state(fault_state, ctx)
        self._exec_heap = None
        self._exec_seq = -1
