"""The dynamically scheduled SMT pipeline.

* :mod:`repro.pipeline.uop` -- the dynamic (in-flight) instruction record.
* :mod:`repro.pipeline.thread` -- per-hardware-context state, including
  the paper's Figure 4 exception-linkage fields.
* :mod:`repro.pipeline.window` -- the shared instruction window with the
  reservation bookkeeping the multithreaded mechanism uses for deadlock
  avoidance.
* :mod:`repro.pipeline.core` -- the cycle loop: fetch (abstract front end
  with chooser), decode/rename, oldest-first schedule/execute, load/store
  handling, squash recovery, and splicing retirement.
"""

from repro.pipeline.core import SMTCore
from repro.pipeline.thread import ThreadContext, ThreadState
from repro.pipeline.uop import Uop, UopState
from repro.pipeline.window import InstructionWindow

__all__ = ["SMTCore", "ThreadContext", "ThreadState", "Uop", "UopState", "InstructionWindow"]
