"""Dynamic instructions (uops).

A :class:`Uop` is one fetched occurrence of a static instruction.  It
carries its position in global fetch order (``seq``), its front-end
timing, the branch-prediction checkpoint taken when it was fetched, and
its dataflow links: each source is either a *producer* uop reference or a
literal value captured from the architectural file at rename time.

Lifecycle::

    FETCH_BUF --> WINDOW --> DONE --> RETIRED
        \\___________\\________\\--> SQUASHED

Decode/rename moves a uop from the fetch buffer into the window (decode
latency is folded into the earliest-schedule cycle); issue computes the
value functionally and stamps ``finish_cycle``; a consumer may issue in
the producer's ``finish_cycle``.
"""

from __future__ import annotations

import enum

from repro.isa.instructions import Instruction


class UopState(enum.IntEnum):
    FETCH_BUF = 0
    WINDOW = 1
    DONE = 2
    RETIRED = 3
    SQUASHED = 4


class Uop:
    """One in-flight instruction."""

    __slots__ = (
        "seq",
        "thread_id",
        "pc",
        "inst",
        "state",
        "renamed",
        "fetch_cycle",
        "avail_cycle",
        "insert_cycle",
        "min_sched_cycle",
        "issue_cycle",
        "finish_cycle",
        "issued",
        "pred_taken",
        "pred_target",
        "checkpoint",
        "src_a_uop",
        "src_a_value",
        "src_b_uop",
        "src_b_value",
        "value",
        "eff_addr",
        "actual_taken",
        "actual_target",
        "waiting_fill",
        "exc_instance",
        "linked_handler",
        "is_handler",
        "free_slot",
        "quickstarted",
        "discard",
        "dyn_dest",
        "wait_count",
        "src_wake",
        "consumers",
        "scheduled",
    )

    def __init__(self, seq: int, thread_id: int, pc: int, inst: Instruction) -> None:
        self.seq = seq
        self.thread_id = thread_id
        self.pc = pc
        self.inst = inst
        self.state = UopState.FETCH_BUF
        #: True once decode/rename has recorded this uop's dest mapping.
        self.renamed = False

        # Front-end timing.
        self.fetch_cycle = -1
        #: Cycle the uop leaves the fetch pipeline (enters the buffer "ready").
        self.avail_cycle = -1
        self.insert_cycle = -1
        self.min_sched_cycle = -1
        self.issue_cycle = -1
        self.finish_cycle = -1
        self.issued = False

        # Branch prediction (branches only).
        self.pred_taken = False
        self.pred_target: int | None = None
        self.checkpoint = None
        self.actual_taken = False
        self.actual_target: int | None = None

        # Dataflow.  A source is (producer uop, None) or (None, value).
        self.src_a_uop: Uop | None = None
        self.src_a_value: int | float | None = None
        self.src_b_uop: Uop | None = None
        self.src_b_value: int | float | None = None
        self.value: int | float | None = None
        self.eff_addr: int | None = None

        # Exception machinery.
        #: VPN this memory op is waiting on a TLB fill for (None = not waiting).
        self.waiting_fill: int | None = None
        #: The exception instance this uop *raised* (excepting instruction).
        self.exc_instance = None
        #: Exception thread whose retirement must precede this uop's.
        self.linked_handler = None
        #: True for handler-thread (or traditional-handler) instructions.
        self.is_handler = False
        #: True when the uop occupies no window slot (limit studies).
        self.free_slot = False
        #: True when this handler uop was served from a quick-start image.
        self.quickstarted = False
        #: Overfetched handler instruction to be dropped at decode (used
        #: when handler-length prediction is disabled).
        self.discard = False
        #: Dynamic integer destination (``mtdst`` under the traditional
        #: mechanism writes the excepting instruction's register).
        self.dyn_dest: int | None = None

        # Event-driven scheduling (see SMTCore._execute).
        #: Unissued producers still outstanding at window insertion.
        self.wait_count = 0
        #: Earliest cycle both sources and the schedule delay allow issue.
        self.src_wake = -1
        #: Consumers to notify when this uop issues (None until first use).
        self.consumers: list["Uop"] | None = None
        #: True while sitting in a wake bucket, the retry list, or the
        #: in-flight examine heap (guards against double-scheduling).
        self.scheduled = False

    # ------------------------------------------------------------------
    def __lt__(self, other: "Uop") -> bool:
        """Order by global fetch sequence (heap entries in _execute)."""
        return self.seq < other.seq

    def value_ready(self, now: int) -> bool:
        """True when this uop's result is readable at cycle ``now``."""
        return self.issued and self.finish_cycle <= now

    def src_ready(self, now: int) -> bool:
        """True when both sources are available at cycle ``now``."""
        a = self.src_a_uop
        if a is not None and not (a.issued and a.finish_cycle <= now):
            return False
        b = self.src_b_uop
        if b is not None and not (b.issued and b.finish_cycle <= now):
            return False
        return True

    def src_values(self) -> tuple[int | float, int | float]:
        """Source operand values (only valid once :meth:`src_ready`)."""
        a = self.src_a_uop.value if self.src_a_uop is not None else self.src_a_value
        b = self.src_b_uop.value if self.src_b_uop is not None else self.src_b_value
        return (a if a is not None else 0, b if b is not None else 0)

    @property
    def in_flight(self) -> bool:
        return self.state in (UopState.FETCH_BUF, UopState.WINDOW, UopState.DONE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Uop #{self.seq} t{self.thread_id} pc={self.pc} {self.inst.op.value}"
            f" {self.state.name}>"
        )
