"""Dynamic instructions (uops).

A :class:`Uop` is one fetched occurrence of a static instruction.  It
carries its position in global fetch order (``seq``), its front-end
timing, the branch-prediction checkpoint taken when it was fetched, and
its dataflow links: each source is either a *producer* uop reference or a
literal value captured from the architectural file at rename time.

Lifecycle::

    FETCH_BUF --> WINDOW --> DONE --> RETIRED
        \\___________\\________\\--> SQUASHED

Decode/rename moves a uop from the fetch buffer into the window (decode
latency is folded into the earliest-schedule cycle); issue computes the
value functionally and stamps ``finish_cycle``; a consumer may issue in
the producer's ``finish_cycle``.
"""

from __future__ import annotations

import enum

from repro.isa.instructions import Instruction


class UopState(enum.IntEnum):
    FETCH_BUF = 0
    WINDOW = 1
    DONE = 2
    RETIRED = 3
    SQUASHED = 4


class Uop:
    """One in-flight instruction."""

    __slots__ = (
        "seq",
        "thread_id",
        "pc",
        "inst",
        "state",
        "renamed",
        "fetch_cycle",
        "avail_cycle",
        "insert_cycle",
        "min_sched_cycle",
        "issue_cycle",
        "finish_cycle",
        "issued",
        "pred_taken",
        "pred_target",
        "checkpoint",
        "src_a_uop",
        "src_a_value",
        "src_b_uop",
        "src_b_value",
        "value",
        "eff_addr",
        "actual_taken",
        "actual_target",
        "waiting_fill",
        "exc_instance",
        "linked_handler",
        "is_handler",
        "free_slot",
        "quickstarted",
        "discard",
        "dyn_dest",
        "wait_count",
        "src_wake",
        "consumers",
        "scheduled",
    )

    def __init__(self, seq: int, thread_id: int, pc: int, inst: Instruction) -> None:
        self.seq = seq
        self.thread_id = thread_id
        self.pc = pc
        self.inst = inst
        self.state = UopState.FETCH_BUF
        #: True once decode/rename has recorded this uop's dest mapping.
        self.renamed = False

        # Front-end timing.
        self.fetch_cycle = -1
        #: Cycle the uop leaves the fetch pipeline (enters the buffer "ready").
        self.avail_cycle = -1
        self.insert_cycle = -1
        self.min_sched_cycle = -1
        self.issue_cycle = -1
        self.finish_cycle = -1
        self.issued = False

        # Branch prediction (branches only).
        self.pred_taken = False
        self.pred_target: int | None = None
        self.checkpoint = None
        self.actual_taken = False
        self.actual_target: int | None = None

        # Dataflow.  A source is (producer uop, None) or (None, value).
        self.src_a_uop: Uop | None = None
        self.src_a_value: int | float | None = None
        self.src_b_uop: Uop | None = None
        self.src_b_value: int | float | None = None
        self.value: int | float | None = None
        self.eff_addr: int | None = None

        # Exception machinery.
        #: VPN this memory op is waiting on a TLB fill for (None = not waiting).
        self.waiting_fill: int | None = None
        #: The exception instance this uop *raised* (excepting instruction).
        self.exc_instance = None
        #: Exception thread whose retirement must precede this uop's.
        self.linked_handler = None
        #: True for handler-thread (or traditional-handler) instructions.
        self.is_handler = False
        #: True when the uop occupies no window slot (limit studies).
        self.free_slot = False
        #: True when this handler uop was served from a quick-start image.
        self.quickstarted = False
        #: Overfetched handler instruction to be dropped at decode (used
        #: when handler-length prediction is disabled).
        self.discard = False
        #: Dynamic integer destination (``mtdst`` under the traditional
        #: mechanism writes the excepting instruction's register).
        self.dyn_dest: int | None = None

        # Event-driven scheduling (see SMTCore._execute).
        #: Unissued producers still outstanding at window insertion.
        self.wait_count = 0
        #: Earliest cycle both sources and the schedule delay allow issue.
        self.src_wake = -1
        #: Consumers to notify when this uop issues (None until first use).
        self.consumers: list["Uop"] | None = None
        #: True while sitting in a wake bucket, the retry list, or the
        #: in-flight examine heap (guards against double-scheduling).
        self.scheduled = False

    # ------------------------------------------------------------------
    def __lt__(self, other: "Uop") -> bool:
        """Order by global fetch sequence (heap entries in _execute)."""
        return self.seq < other.seq

    def value_ready(self, now: int) -> bool:
        """True when this uop's result is readable at cycle ``now``."""
        return self.issued and self.finish_cycle <= now

    def src_ready(self, now: int) -> bool:
        """True when both sources are available at cycle ``now``."""
        a = self.src_a_uop
        if a is not None and not (a.issued and a.finish_cycle <= now):
            return False
        b = self.src_b_uop
        if b is not None and not (b.issued and b.finish_cycle <= now):
            return False
        return True

    def src_values(self) -> tuple[int | float, int | float]:
        """Source operand values (only valid once :meth:`src_ready`)."""
        a = self.src_a_uop.value if self.src_a_uop is not None else self.src_a_value
        b = self.src_b_uop.value if self.src_b_uop is not None else self.src_b_value
        return (a if a is not None else 0, b if b is not None else 0)

    @property
    def in_flight(self) -> bool:
        return self.state in (UopState.FETCH_BUF, UopState.WINDOW, UopState.DONE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Uop #{self.seq} t{self.thread_id} pc={self.pc} {self.inst.op.value}"
            f" {self.state.name}>"
        )

    # -- checkpoint protocol --------------------------------------------
    #: ``inst`` is static program text, rebuilt from the thread's Program.
    _SNAPSHOT_TRANSIENT = ("inst",)

    def snapshot_state(self, ctx) -> dict:
        """Encode every slot; object links become seq / id references.

        Links on retired and squashed uops are pruned to ``None``: the
        machine only ever reads their scalar results (``issued``,
        ``finish_cycle``, ``value``, ``state``) after completion, and
        pruning bounds the snapshot's reachable-uop closure at one hop
        past the in-flight set instead of the whole dependence history.
        """
        live = self.in_flight
        cp = self.checkpoint
        consumers = self.consumers
        return {
            "seq": self.seq,
            "thread_id": self.thread_id,
            "pc": self.pc,
            "prog": ctx.thread_program_ref(self.thread_id),
            "state": int(self.state),
            "renamed": self.renamed,
            "fetch_cycle": self.fetch_cycle,
            "avail_cycle": self.avail_cycle,
            "insert_cycle": self.insert_cycle,
            "min_sched_cycle": self.min_sched_cycle,
            "issue_cycle": self.issue_cycle,
            "finish_cycle": self.finish_cycle,
            "issued": self.issued,
            "pred_taken": self.pred_taken,
            "pred_target": self.pred_target,
            "checkpoint": None if cp is None else
                [cp.ghr, cp.path, cp.ras.tos, cp.ras.top_value],
            "actual_taken": self.actual_taken,
            "actual_target": self.actual_target,
            "src_a_uop": ctx.uop_ref(self.src_a_uop) if live else None,
            "src_a_value": self.src_a_value,
            "src_b_uop": ctx.uop_ref(self.src_b_uop) if live else None,
            "src_b_value": self.src_b_value,
            "value": self.value,
            "eff_addr": self.eff_addr,
            "waiting_fill": self.waiting_fill,
            "exc_instance":
                ctx.instance_ref(self.exc_instance) if live else None,
            "linked_handler": self.linked_handler.tid
                if live and self.linked_handler is not None else None,
            "is_handler": self.is_handler,
            "free_slot": self.free_slot,
            "quickstarted": self.quickstarted,
            "discard": self.discard,
            "dyn_dest": self.dyn_dest,
            "wait_count": self.wait_count,
            "src_wake": self.src_wake,
            "consumers": None if not live or consumers is None else
                [ctx.uop_ref(c) for c in consumers],
            "scheduled": self.scheduled,
        }

    @classmethod
    def from_state(cls, state: dict, ctx) -> "Uop":
        """Rebuild scalars; links are patched by :meth:`link_state`."""
        uop = cls(
            state["seq"],
            state["thread_id"],
            state["pc"],
            ctx.instruction_at(state["prog"], state["pc"]),
        )
        uop.state = UopState(state["state"])
        uop.renamed = state["renamed"]
        uop.fetch_cycle = state["fetch_cycle"]
        uop.avail_cycle = state["avail_cycle"]
        uop.insert_cycle = state["insert_cycle"]
        uop.min_sched_cycle = state["min_sched_cycle"]
        uop.issue_cycle = state["issue_cycle"]
        uop.finish_cycle = state["finish_cycle"]
        uop.issued = state["issued"]
        uop.pred_taken = state["pred_taken"]
        uop.pred_target = state["pred_target"]
        uop.actual_taken = state["actual_taken"]
        uop.actual_target = state["actual_target"]
        uop.src_a_value = state["src_a_value"]
        uop.src_b_value = state["src_b_value"]
        uop.value = state["value"]
        uop.eff_addr = state["eff_addr"]
        uop.waiting_fill = state["waiting_fill"]
        uop.is_handler = state["is_handler"]
        uop.free_slot = state["free_slot"]
        uop.quickstarted = state["quickstarted"]
        uop.discard = state["discard"]
        uop.dyn_dest = state["dyn_dest"]
        uop.wait_count = state["wait_count"]
        uop.src_wake = state["src_wake"]
        uop.scheduled = state["scheduled"]
        return uop

    def link_state(self, state: dict, ctx) -> None:
        """Second restore pass: resolve object references."""
        self.checkpoint = ctx.make_branch_checkpoint(state["checkpoint"])
        self.src_a_uop = ctx.resolve_uop(state["src_a_uop"])
        self.src_b_uop = ctx.resolve_uop(state["src_b_uop"])
        self.exc_instance = ctx.resolve_instance(state["exc_instance"])
        self.linked_handler = ctx.resolve_thread(state["linked_handler"])
        refs = state["consumers"]
        self.consumers = (
            None if refs is None else [ctx.resolve_uop(s) for s in refs]
        )
