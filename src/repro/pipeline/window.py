"""The shared instruction window with exception reservations.

All threads share one centralized window (Table 1).  The multithreaded
exception mechanism *reserves* enough slots for the (perfectly predicted)
handler length when an exception spawns; application threads may not
claim those slots, which is the paper's first line of defence against the
out-of-order-fetch deadlock.  The second line -- squashing the main
thread's tail when a handler instruction still cannot enter -- lives in
the core, which calls :meth:`InstructionWindow.can_insert_app` /
:meth:`InstructionWindow.insert` here.

Occupancy is held from insertion (decode) to retirement, per the paper
("instructions maintain entries in the instruction window until
retirement").  Uops flagged ``free_slot`` (limit studies) are tracked but
never counted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.uop import Uop


class InstructionWindow:
    """Centralized instruction window plus reservation accounting."""

    __slots__ = (
        "capacity",
        "_uops",
        "_occupancy",
        "_reservations",
        "_reserved_total",
        "peak_occupancy",
        "tail_squashes",
        "sanitizer",
    )

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        #: Runtime invariant checker, attached by the core when enabled
        #: (``None`` costs a single identity check per insert).
        self.sanitizer = None
        #: Occupying uops (unordered; scheduling order lives in the
        #: core's event queue, so membership is all that matters here).
        self._uops: set["Uop"] = set()
        self._occupancy = 0
        #: exception-instance id -> window slots still reserved for it.
        self._reservations: dict[int, int] = {}
        self._reserved_total = 0
        self.peak_occupancy = 0
        self.tail_squashes = 0

    # ------------------------------------------------------------------
    @property
    def uops(self) -> list["Uop"]:
        """Occupying uops in fetch order (oldest first); for inspection."""
        return sorted(self._uops, key=lambda u: u.seq)

    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def reserved_total(self) -> int:
        return self._reserved_total

    def can_insert_app(self) -> bool:
        """May an application-thread uop take a slot this cycle?"""
        return self._occupancy + self._reserved_total < self.capacity

    def can_insert_handler(self, exc_id: int | None) -> bool:
        """May a handler uop take a slot (using its reservation if any)?"""
        if self._occupancy < self.capacity:
            return True
        return False

    def insert(self, uop: "Uop", exc_id: int | None = None) -> None:
        """Place a uop into the window (caller checked admissibility).

        A handler uop consumes one unit of its instance's reservation, if
        any remains.
        """
        if self.sanitizer is not None:
            self.sanitizer.on_insert(self, uop)
        self._uops.add(uop)
        if not uop.free_slot:
            occ = self._occupancy + 1
            self._occupancy = occ
            if occ > self.peak_occupancy:
                self.peak_occupancy = occ
        if exc_id is not None and self._reservations.get(exc_id, 0) > 0:
            self._reservations[exc_id] -= 1
            self._reserved_total -= 1

    def remove(self, uop: "Uop") -> None:
        """Remove a uop (retirement or squash)."""
        uops = self._uops
        if uop not in uops:
            return
        uops.remove(uop)
        if not uop.free_slot:
            self._occupancy -= 1

    # ------------------------------------------------------------------
    def reserve(self, exc_id: int, slots: int) -> None:
        """Reserve ``slots`` window entries for exception ``exc_id``."""
        slots = max(0, slots)
        self._reservations[exc_id] = self._reservations.get(exc_id, 0) + slots
        self._reserved_total += slots

    def release(self, exc_id: int) -> None:
        """Drop any remaining reservation for ``exc_id``."""
        remaining = self._reservations.pop(exc_id, 0)
        self._reserved_total -= remaining

    def counters(self) -> dict[str, int]:
        """Occupancy/reservation snapshot for manifests and debugging."""
        return {
            "capacity": self.capacity,
            "occupancy": self._occupancy,
            "reserved_total": self._reserved_total,
            "open_reservations": len(self._reservations),
            "peak_occupancy": self.peak_occupancy,
            "tail_squashes": self.tail_squashes,
        }

    def __len__(self) -> int:
        return len(self._uops)

    # -- checkpoint protocol --------------------------------------------
    #: ``sanitizer`` is reattached by the core; ``capacity`` is config
    #: (encoded anyway so restore can validate geometry).
    _SNAPSHOT_TRANSIENT = ("sanitizer",)

    def snapshot_state(self, ctx) -> dict:
        return {
            "capacity": self.capacity,
            "uops": [
                ctx.uop_ref(u)
                for u in sorted(self._uops, key=lambda u: u.seq)
            ],
            "occupancy": self._occupancy,
            "reservations": [
                [k, self._reservations[k]] for k in sorted(self._reservations)
            ],
            "reserved_total": self._reserved_total,
            "peak_occupancy": self.peak_occupancy,
            "tail_squashes": self.tail_squashes,
        }

    def restore_state(self, state: dict, ctx) -> None:
        if state["capacity"] != self.capacity:
            raise ValueError(
                f"window snapshot capacity {state['capacity']} != "
                f"configured {self.capacity}"
            )
        self._uops = {ctx.resolve_uop(s) for s in state["uops"]}
        self._occupancy = state["occupancy"]
        self._reservations = {k: v for k, v in state["reservations"]}
        self._reserved_total = state["reserved_total"]
        self.peak_occupancy = state["peak_occupancy"]
        self.tail_squashes = state["tail_squashes"]
