"""Per-hardware-context thread state.

Each SMT context owns a program counter, fetch buffer, architectural
register file, rename maps, a per-thread in-order list of in-flight uops
(the thread's slice of the reorder machinery), and the paper's Figure 4
exception-linkage state: {state, master thread, sequence number of the
excepting instruction}.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Deque

from repro.isa.program import Program
from repro.isa.registers import FP_REG_COUNT, INT_REG_COUNT, PrivReg, RegisterFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.pipeline.uop import Uop


class ThreadState(enum.Enum):
    """Figure 4's per-thread state field."""

    IDLE = "idle"
    NORMAL = "normal"
    EXCEPTION = "exception"


class ThreadContext:
    """One hardware thread context."""

    __slots__ = (
        "tid",
        "state",
        "program",
        "arch",
        "int_map",
        "fp_map",
        "rob",
        "fetch_buffer",
        "fetch_buffer_size",
        "store_queue",
        "pc",
        "fetch_priv",
        "fetch_stall_until",
        "fetch_wait_uop",
        "fetch_done",
        "overfetch_after_reti",
        "halted",
        "priv_regs",
        "master_tid",
        "master_uop",
        "exc_instance",
        "retired_user",
        "retired_handler",
    )

    def __init__(self, tid: int, fetch_buffer_size: int = 16) -> None:
        self.tid = tid
        self.state = ThreadState.IDLE
        self.program: Program | None = None
        self.arch = RegisterFile()
        self.int_map: list["Uop | None"] = [None] * INT_REG_COUNT
        self.fp_map: list["Uop | None"] = [None] * FP_REG_COUNT

        #: Every in-flight uop of this thread, in fetch order.  The head is
        #: the next to retire; squashes truncate the tail.
        self.rob: Deque["Uop"] = deque()
        #: Fetched-but-not-decoded uops (a FIFO prefix of ``rob``).
        self.fetch_buffer: Deque["Uop"] = deque()
        self.fetch_buffer_size = fetch_buffer_size
        #: In-flight store uops in fetch order (subset of ``rob``).
        self.store_queue: list["Uop"] = []

        # Fetch engine state.
        self.pc = 0
        self.fetch_priv = False
        self.fetch_stall_until = 0
        #: A fetched uop whose execution must redirect fetch (reti/halt).
        self.fetch_wait_uop: "Uop | None" = None
        #: Exception thread: stop fetching once the handler is fully fetched.
        self.fetch_done = False
        #: Without handler-length prediction: reti fetched, overfetching.
        self.overfetch_after_reti = False
        self.halted = False

        # Privileged state (latched by hardware at a trap).
        self.priv_regs: list[int] = [0] * len(PrivReg)

        # Figure 4 exception-thread linkage.
        self.master_tid: int | None = None
        self.master_uop: "Uop | None" = None
        self.exc_instance = None

        # Counters.
        self.retired_user = 0
        self.retired_handler = 0

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Instruction count used by the ICOUNT fetch chooser."""
        return len(self.rob)

    @property
    def is_exception_thread(self) -> bool:
        return self.state is ThreadState.EXCEPTION

    def can_fetch(self, now: int) -> bool:
        """True when the fetch engine may pull instructions this cycle."""
        return (
            self.state is not ThreadState.IDLE
            and not self.halted
            and not self.fetch_done
            and self.fetch_wait_uop is None
            and self.fetch_stall_until <= now
            and len(self.fetch_buffer) < self.fetch_buffer_size
            and self.program is not None
        )

    def activate(self, program: Program, entry: int | None = None) -> None:
        """Bind a program and make the context a runnable application thread."""
        self.program = program
        self.pc = program.entry if entry is None else entry
        self.state = ThreadState.NORMAL
        self.halted = False

    def rebuild_rename_maps(self) -> None:
        """Recompute rename maps from surviving renamed uops (post-squash)."""
        self.int_map = [None] * INT_REG_COUNT
        self.fp_map = [None] * FP_REG_COUNT
        from repro.isa.instructions import SRC_FP, SRC_INT  # local: avoid cycle

        for uop in self.rob:
            if not uop.renamed:
                break  # rename happens in order; the rest are un-decoded
            inst = uop.inst
            kind = inst.dest_kind
            if kind == SRC_FP:
                self.fp_map[inst.dest_idx] = uop
            elif kind == SRC_INT:
                self.int_map[inst.dest_idx] = uop
            elif uop.dyn_dest is not None:
                self.int_map[uop.dyn_dest] = uop

    def reset_to_idle(self) -> None:
        """Return an exception context to the idle pool (Fig. 4 state)."""
        self.state = ThreadState.IDLE
        self.program = None
        self.rob.clear()
        self.fetch_buffer.clear()
        self.store_queue.clear()
        self.int_map = [None] * INT_REG_COUNT
        self.fp_map = [None] * FP_REG_COUNT
        self.pc = 0
        self.fetch_priv = False
        self.fetch_stall_until = 0
        self.fetch_wait_uop = None
        self.fetch_done = False
        self.overfetch_after_reti = False
        self.halted = False
        self.master_tid = None
        self.master_uop = None
        self.exc_instance = None

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        """Encode every slot; uops by seq, the program by image index."""
        return {
            "tid": self.tid,
            "state": self.state.value,
            "prog": ctx.program_index(self.program),
            "arch": self.arch.snapshot_state(ctx),
            "int_map": [ctx.uop_ref(u) for u in self.int_map],
            "fp_map": [ctx.uop_ref(u) for u in self.fp_map],
            "rob": [ctx.uop_ref(u) for u in self.rob],
            "fetch_buffer": [ctx.uop_ref(u) for u in self.fetch_buffer],
            "fetch_buffer_size": self.fetch_buffer_size,
            "store_queue": [ctx.uop_ref(u) for u in self.store_queue],
            "pc": self.pc,
            "fetch_priv": self.fetch_priv,
            "fetch_stall_until": self.fetch_stall_until,
            "fetch_wait_uop": ctx.uop_ref(self.fetch_wait_uop),
            "fetch_done": self.fetch_done,
            "overfetch_after_reti": self.overfetch_after_reti,
            "halted": self.halted,
            "priv_regs": list(self.priv_regs),
            "master_tid": self.master_tid,
            "master_uop": ctx.uop_ref(self.master_uop),
            "exc_instance": ctx.instance_ref(self.exc_instance),
            "retired_user": self.retired_user,
            "retired_handler": self.retired_handler,
        }

    def restore_state(self, state: dict, ctx) -> None:
        if state["tid"] != self.tid:
            raise ValueError(
                f"thread snapshot tid {state['tid']} != context tid {self.tid}"
            )
        self.state = ThreadState(state["state"])
        self.program = ctx.program_at(state["prog"])
        self.arch.restore_state(state["arch"], ctx)
        self.int_map = [ctx.resolve_uop(s) for s in state["int_map"]]
        self.fp_map = [ctx.resolve_uop(s) for s in state["fp_map"]]
        self.rob = deque(ctx.resolve_uop(s) for s in state["rob"])
        self.fetch_buffer = deque(
            ctx.resolve_uop(s) for s in state["fetch_buffer"]
        )
        self.fetch_buffer_size = state["fetch_buffer_size"]
        self.store_queue = [ctx.resolve_uop(s) for s in state["store_queue"]]
        self.pc = state["pc"]
        self.fetch_priv = state["fetch_priv"]
        self.fetch_stall_until = state["fetch_stall_until"]
        self.fetch_wait_uop = ctx.resolve_uop(state["fetch_wait_uop"])
        self.fetch_done = state["fetch_done"]
        self.overfetch_after_reti = state["overfetch_after_reti"]
        self.halted = state["halted"]
        self.priv_regs = list(state["priv_regs"])
        self.master_tid = state["master_tid"]
        self.master_uop = ctx.resolve_uop(state["master_uop"])
        self.exc_instance = ctx.resolve_instance(state["exc_instance"])
        self.retired_user = state["retired_user"]
        self.retired_handler = state["retired_handler"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Thread {self.tid} {self.state.value} pc={self.pc} rob={len(self.rob)}>"
