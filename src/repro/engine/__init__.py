"""Pluggable simulation engine backends (``REPRO_ENGINE``).

The engine registry is the seam between *what* a sweep cell computes
(the machine model in ``repro.pipeline`` / ``repro.sim``) and *how*
batches of cells are advanced:

``reference``
    The unmodified :class:`~repro.pipeline.core.SMTCore` kernel, one
    cell at a time.  The default, and the oracle every other backend is
    differentially verified against.
``batched``
    The structure-of-arrays lockstep driver over dispatch-fused cores
    (:mod:`repro.engine.batched`); bit-identical results, ~2x sweep
    throughput (see ``docs/PERFORMANCE.md`` and ``BENCH_batched.json``).

Select a backend per process with ``REPRO_ENGINE=reference|batched``
(experiment CLIs expose it as ``--engine``); the choice propagates to
pool workers and is part of every result-cache key, so results from
different backends can never be served for one another.
"""

from __future__ import annotations

import os

from repro.engine.base import EngineBackend
from repro.engine.batched import BatchedEngine, SweepBatch
from repro.engine.core import BatchedSMTCore
from repro.engine.reference import ReferenceEngine

__all__ = [
    "BatchedEngine",
    "BatchedSMTCore",
    "ENGINES",
    "EngineBackend",
    "ReferenceEngine",
    "SweepBatch",
    "core_class",
    "get_backend",
    "resolve_engine",
]

_REGISTRY: dict[str, type[EngineBackend]] = {
    ReferenceEngine.name: ReferenceEngine,
    BatchedEngine.name: BatchedEngine,
}

#: Registered backend names, reference first.
ENGINES = tuple(_REGISTRY)

DEFAULT_ENGINE = ReferenceEngine.name


def resolve_engine(name: str | None = None) -> str:
    """Normalize an engine selection: explicit ``name`` wins, else
    ``REPRO_ENGINE``, else the reference backend.  Unknown names raise
    :class:`ValueError` here, at configuration time."""
    if name is None or name == "":
        name = os.environ.get("REPRO_ENGINE", "").strip() or DEFAULT_ENGINE
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown engine {name!r}; pick one of {ENGINES}"
        )
    return name


def get_backend(name: str | None = None) -> EngineBackend:
    """A fresh backend instance for ``name`` (resolved per
    :func:`resolve_engine`)."""
    return _REGISTRY[resolve_engine(name)]()


def core_class(name: str | None = None):
    """The ``SMTCore`` subclass a backend injects into single-cell
    :class:`~repro.sim.simulator.Simulator` construction, or ``None``
    for the reference kernel.  This is how non-batch surfaces
    (``perfbench``, one-off runs) honour the engine selection."""
    return _REGISTRY[resolve_engine(name)].core_cls
