"""A dispatch-fused :class:`SMTCore` for the batched sweep engine.

:class:`BatchedSMTCore` is the per-cell execution kernel behind
``repro.engine.batched``.  It is the *same machine* as
:class:`repro.pipeline.core.SMTCore` -- same stages, same budgets, same
event scheduler, same stats -- with the per-cycle Python dispatch
overhead fused away.  :meth:`run_to` is one flat loop whose body is a
line-for-line transcription of the reference stage bodies (retire,
execute, decode, fetch, in that order) with:

* every loop-invariant object -- bound methods, config knobs, cache
  internals, FU capacities -- hoisted into locals *once per run*
  instead of re-bound every cycle / every stage call;
* the watch predicate re-evaluated only when a retirement counter
  moved (it depends solely on ``halted`` / ``retired_user`` /
  ``state`` of the watched threads, all of which change only inside
  ``_do_retire``, which always bumps the retirement counters -- the
  gate is exact, not heuristic);
* one ``_fetch_priority`` computation per cycle shared by decode and
  fetch, recomputed between them iff decode squashed or discarded
  something (the only decode-time paths that move thread states or ROB
  depths, and both bump a stats counter);
* the issue fast paths (integer ALU, branch, memory) dispatched
  directly on ``exec_kind`` with operands read inline -- everything
  else falls back to the reference ``_issue``;
* the L1-I clean-hit path inlined (stats, LRU clock, and last-use
  updates transcribed from ``Cache.access``; any miss or outstanding
  MSHR falls back to the full access method);
* the cyclic garbage collector paused for the duration of the loop
  (uops allocate in bursts; collection is pure memory management with
  zero simulated-state footprint, so deferring it cannot change
  results).

Every state transition, counter update, and stall decision matches the
reference paths bit-for-bit, which is what the batch-of-1 equivalence
suite and ``repro-fuzz --engine-diff`` hold it to: identical
``arch_digest`` and ``SimStats`` for every mechanism on every workload.

When an observability bus is attached the kernel falls back to the
reference stage bodies: bus listeners fire mid-stage and may observe
``thread.pc`` / ``stats.fetched`` / issue events, which the fused loop
holds in locals or elides.  (The sanitizer needs no fallback -- its
hooks fire at window insert and retire, which the fused loop reaches
through the same shared helpers.)
"""

from __future__ import annotations

import gc
from heapq import heapify, heappop

from repro.isa.instructions import (
    EK_BRANCH,
    EK_INT_ALU,
    SRC_FP,
    SRC_IMM,
    SRC_INT,
    Opcode,
)
from repro.isa.registers import PrivReg
from repro.isa.semantics import compute_int
from repro.memory.address import vpn_of
from repro.pipeline.core import _FAR_FUTURE, SMTCore
from repro.pipeline.thread import ThreadState
from repro.pipeline.uop import Uop, UopState

__all__ = ["BatchedSMTCore"]

_FU_GROUPS = ("alu", "muldiv", "fp", "fpdiv", "mem")


class BatchedSMTCore(SMTCore):
    """Reference core with the per-cycle dispatch overhead fused away."""

    # The fused loops never emit bus-listener events: every entry point
    # (run_to, step's _decode_fetch, squash_from) falls back to the
    # reference stages whenever ``self.listeners is not None``, so the
    # emission sites are provably unreachable from fused code.  The
    # parity pass (repro-lint parity) verifies each elision below still
    # corresponds to a real reference-only fact.
    # parity: elided(listeners.fetch, fused paths bail to reference stages when listeners attached)
    # parity: elided(listeners.issue, fused paths bail to reference stages when listeners attached)
    # parity: elided(listeners.retire, fused paths bail to reference stages when listeners attached)
    # parity: elided(listeners.squash, fused paths bail to reference stages when listeners attached)

    def step(self) -> None:
        now = self.cycle
        self._activity = False
        if self._mech_tick is not None:
            self._mech_tick(now)
        self._retire(now)
        self._execute(now)
        self._decode_fetch(now)
        self.cycle = now + 1
        self.stats.cycles = now + 1

    # ------------------------------------------------------------------
    # Stage pair used by step(); run_to() inlines all of this.
    # ------------------------------------------------------------------
    def _decode_fetch(self, now: int) -> None:
        if self.listeners is not None:
            # Bus listeners fire mid-stage and may read state the fused
            # loops keep in locals; give them the reference stages.
            self._decode(now)
            self._fetch(now)
            return
        stats = self.stats
        squashed0 = stats.squashed
        discarded0 = stats.overfetch_discarded
        prio = self._fetch_priority()
        self._decode_prio(now, prio)
        if (
            stats.squashed != squashed0
            or stats.overfetch_discarded != discarded0
        ):
            # Decode squashed or discarded something: thread states /
            # ROB depths may have moved, so the fetch order must too.
            prio = self._fetch_priority()
        self._fetch_prio(now, prio)

    def _decode_prio(self, now: int, prio) -> None:
        """``_decode`` against a precomputed priority order."""
        config = self.config
        budget = config.width
        limits = config.limits
        free_handler_decode = limits.no_fetch_bandwidth
        no_window_overhead = limits.no_window_overhead
        sched_delay = config.decode_latency + config.post_insert_delay
        window = self.window
        stats = self.stats
        admit = self._admit
        rename = self._rename
        insert = window.insert
        schedule = self._schedule_uop
        reti = Opcode.RETI
        squashed_state = UopState.SQUASHED
        window_state = UopState.WINDOW
        for thread in prio:
            buf = thread.fetch_buffer
            is_exc = thread.is_exception_thread
            handler_free = free_handler_decode and is_exc
            exc_id = None
            if is_exc and thread.exc_instance is not None:
                exc_id = thread.exc_instance.id
            while buf and (budget > 0 or handler_free):
                uop = buf[0]
                if uop.avail_cycle > now:
                    break
                if uop.discard:
                    buf.popleft()
                    thread.rob.remove(uop)
                    uop.state = squashed_state
                    stats.overfetch_discarded += 1
                    self._activity = True
                    if not handler_free:
                        budget -= 1
                    continue
                if not uop.is_handler:
                    if (
                        window._occupancy + window._reserved_total
                        >= window.capacity
                    ):
                        break
                elif not admit(thread, uop, now):
                    break
                buf.popleft()
                if uop.inst.op is reti and is_exc:
                    thread.fetch_done = True
                    thread.overfetch_after_reti = False
                rename(thread, uop)
                if no_window_overhead and uop.is_handler:
                    uop.free_slot = True
                insert(uop, exc_id)
                uop.insert_cycle = now
                uop.min_sched_cycle = now + sched_delay
                uop.state = window_state
                schedule(uop)
                self._activity = True
                if not handler_free:
                    budget -= 1
            if budget <= 0 and not free_handler_decode:
                break

    def _fetch_prio(self, now: int, prio) -> None:
        """``_fetch`` with ``_fetch_one`` inlined, against ``prio``."""
        config = self.config
        width = config.width
        budget = width
        free_handler_fetch = config.limits.no_fetch_bandwidth
        predict_handler_length = config.predict_handler_length
        ifetch = self._ifetch
        l1_limit = now + self._l1_latency
        fetch_latency = self._fetch_latency
        bpu_predict = self.bpu.predict
        faults = self.faults
        stats = self.stats
        itlb = self.itlb
        mechanism = self.mechanism
        halt = Opcode.HALT
        reti = Opcode.RETI
        exception = ThreadState.EXCEPTION
        seq = self._next_seq
        for thread in prio:
            handler_free = free_handler_fetch and thread.state is exception
            if budget <= 0 and not handler_free:
                continue
            if not thread.can_fetch(now):
                continue
            buf = thread.fetch_buffer
            cap = thread.fetch_buffer_size
            per_thread = width
            tid = thread.tid
            rob = thread.rob
            insts = thread.program.insts
            n_insts = len(insts)
            # Loop-invariant thread fields (nothing inside a thread's own
            # fetch loop mutates them except the RETI-overfetch path,
            # which updates both the local and the field).
            fetch_priv = thread.fetch_priv
            is_exc = thread.state is exception
            overfetch = thread.overfetch_after_reti
            pc = thread.pc
            while per_thread > 0 and (budget > 0 or handler_free) and len(buf) < cap:
                if pc < 0 or pc >= n_insts:
                    thread.fetch_stall_until = _FAR_FUTURE
                    break
                inst = insts[pc]
                if inst.privileged and not fetch_priv:
                    thread.fetch_stall_until = _FAR_FUTURE
                    break
                if (
                    itlb is not None
                    and not fetch_priv
                    and itlb.lookup(vpn_of(pc * 4)) is None
                ):
                    stats.itlb_miss_events += 1
                    self._activity = True
                    # The mechanism may redirect this thread (traditional
                    # trap) and may allocate uops of its own (quickstart
                    # materializes a prefetched handler image): sync the
                    # cached pc AND seq counter around the hook.
                    thread.pc = pc
                    if mechanism is not None:
                        self._next_seq = seq
                        mechanism.on_itlb_miss(thread, pc, now)
                        seq = self._next_seq
                    pc = thread.pc
                    break
                ready = ifetch(pc * 4, now)
                if ready > l1_limit:
                    thread.fetch_stall_until = ready
                    break
                uop = Uop(seq, tid, pc, inst)
                seq += 1
                uop.fetch_cycle = now
                uop.avail_cycle = now + fetch_latency
                uop.is_handler = inst.privileged
                if overfetch:
                    uop.discard = True
                rob.append(uop)
                buf.append(uop)
                stats.fetched += 1
                self._activity = True
                op = inst.op
                if op is halt:
                    thread.fetch_wait_uop = uop
                    break
                if inst.is_branch:
                    pred = bpu_predict(pc, inst)
                    uop.checkpoint = pred.checkpoint
                    uop.pred_taken = pred.taken
                    uop.pred_target = pred.target
                    if faults is not None and inst.is_cond_branch:
                        faults.poison_branch(uop, now)
                    if op is reti:
                        if is_exc:
                            if predict_handler_length:
                                thread.fetch_done = True
                                break
                            thread.overfetch_after_reti = True
                            overfetch = True
                            pc += 1
                            per_thread -= 1
                            if not handler_free:
                                budget -= 1
                            continue
                        thread.fetch_wait_uop = uop
                        break
                    pc = uop.pred_target if uop.pred_taken else pc + 1
                else:
                    pc += 1
                per_thread -= 1
                if not handler_free:
                    budget -= 1
            thread.pc = pc
        self._next_seq = seq
        if budget > 0 and self._mech_fetch_idle is not None:
            used = self._mech_fetch_idle(now, budget)
            if used:
                budget -= used
                self._activity = True

    # ------------------------------------------------------------------
    # Squash (reference squash_from with _squash_uop inlined; squashes
    # walk the ROB tail youngest-first, so this is the recovery hot
    # path on mispredict-heavy workloads).
    # ------------------------------------------------------------------
    def squash_from(self, thread, boundary_seq, now):
        if self.listeners is not None:
            return super().squash_from(thread, boundary_seq, now)
        rob = thread.rob
        if not rob or rob[-1].seq <= boundary_seq:
            # Nothing younger than the boundary; only the wait-uop
            # release below can apply.
            squashed = 0
        else:
            window_remove = self.window.remove
            mechanism = self.mechanism
            window_state = UopState.WINDOW
            fetch_buf_state = UopState.FETCH_BUF
            squashed_state = UopState.SQUASHED
            buf = thread.fetch_buffer
            store_queue = thread.store_queue
            squashed = 0
            while rob and rob[-1].seq > boundary_seq:
                victim = rob.pop()
                state = victim.state
                if state == window_state:
                    window_remove(victim)
                elif state == fetch_buf_state:
                    if buf:
                        if buf[-1] is victim:
                            buf.pop()
                        else:
                            try:
                                buf.remove(victim)
                            except ValueError:
                                pass
                victim.state = squashed_state
                if victim.inst.is_store:
                    if store_queue:
                        if store_queue[-1] is victim:
                            store_queue.pop()
                        elif victim in store_queue:
                            store_queue.remove(victim)
                if mechanism is not None:
                    mechanism.on_uop_squashed(victim, now)
                squashed += 1
            thread.rebuild_rename_maps()
            self.stats.squashed += squashed
            self._activity = True
        if thread.fetch_wait_uop is not None and (
            thread.fetch_wait_uop.state == UopState.SQUASHED
        ):
            thread.fetch_wait_uop = None
        return squashed

    # ------------------------------------------------------------------
    # The fused cycle loop.
    # ------------------------------------------------------------------
    def run_to(self, watch, stop_cycle):
        if self.listeners is not None:
            return super().run_to(watch, stop_cycle)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            # Uops allocate in bursts; collection is pure memory
            # management with no simulated-state footprint, so pausing
            # it for the loop cannot change results.
            gc.disable()
        try:
            return self._run_to_fused(watch, stop_cycle)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_to_fused(self, watch, stop_cycle):
        # ---- loop-invariant hoists (one binding per *run*, not per
        # cycle): anything rebound here is construction-time wiring.
        config = self.config
        fast_forward = config.fast_forward
        width = config.width
        limits = config.limits
        free_handler_band = limits.no_fetch_bandwidth
        no_window_overhead = limits.no_window_overhead
        free_handler_exec = limits.no_execute_bandwidth
        handler_fetch_priority = config.handler_fetch_priority
        predict_handler_length = config.predict_handler_length
        sched_delay = config.decode_latency + config.post_insert_delay
        icount = self._icount_chooser
        fetch_latency = self._fetch_latency
        l1_latency = self._l1_latency
        stats = self.stats
        threads = self.threads
        window = self.window
        bpu_predict = self.bpu.predict
        faults = self.faults
        mech_tick = self._mech_tick
        mech_ports = self._mech_ports
        mech_fetch_idle = self._mech_fetch_idle
        pool = config.fu_pool
        pool_mem = pool.mem
        fu_caps = {group: pool.capacity(group) for group in _FU_GROUPS}
        admit = self._admit
        schedule_uop = self._schedule_uop
        issue = self._issue
        issue_mem = self._issue_mem
        issue_branch = self._issue_branch
        load_ordering_ok = self._load_ordering_ok
        older_all_issued = self._older_all_issued
        next_event = self._next_event
        wake_buckets = self._wake_buckets
        wake_pop = wake_buckets.pop
        retry = self._retry
        retry_append = retry.append
        # L1-I clean-hit fast path internals (see Cache.access).
        l1i = self.hierarchy.l1i
        l1i_sets = l1i._sets
        l1i_mshrs = l1i._mshrs
        l1i_stats = l1i.stats
        l1i_shift = l1i.line_shift
        l1i_mask = l1i.set_mask
        ifetch = self._ifetch
        itlb = self.itlb
        rob_icount_key = _rob_icount_key
        # Retire / rename internals (see _do_retire / _rename / the
        # window and scheduler helpers this loop transcribes).
        sanitizer = self._sanitizer
        mechanism = self.mechanism
        pt_base = self._pt_base
        write_word = self.memory.write_word
        bpu_train = self.bpu.train
        win_sanitizer = window.sanitizer
        win_uops = window._uops
        win_reservations = window._reservations
        uop_new = Uop.__new__
        halt_op = Opcode.HALT
        reti_op = Opcode.RETI
        mtdst_op = Opcode.MTDST
        hardexc_op = Opcode.HARDEXC
        exc_dst_reg = PrivReg.EXC_DST
        src_int = SRC_INT
        src_fp = SRC_FP
        src_imm = SRC_IMM
        ek_int_alu = EK_INT_ALU
        ek_branch = EK_BRANCH
        idle = ThreadState.IDLE
        normal = ThreadState.NORMAL
        exception = ThreadState.EXCEPTION
        fetch_buf_state = UopState.FETCH_BUF
        window_state = UopState.WINDOW
        squashed_state = UopState.SQUASHED
        retired_state = UopState.RETIRED

        # Force the first iteration to evaluate the watch (seed
        # semantics: targets are checked before any step runs).
        last_retired = -1
        while self.cycle < stop_cycle:
            retired = stats.retired_user + stats.retired_handler
            if retired != last_retired:
                last_retired = retired
                for thread, target in watch:
                    if (
                        not thread.halted
                        and thread.retired_user < target
                        and thread.state is normal
                    ):
                        break
                else:
                    return True
            now = self.cycle
            self._activity = False
            if mech_tick is not None:
                mech_tick(now)

            # ---- retire (reference _retire with _do_retire and
            # window.remove inlined; listeners are None on this path,
            # the sanitizer hook stays) ----
            progress = True
            while progress:
                progress = False
                for thread in threads:
                    state = thread.state
                    if state is idle:
                        continue
                    rob = thread.rob
                    if not rob:
                        continue
                    head = rob[0]
                    if not head.issued or head.finish_cycle > now:
                        continue
                    if head.state != window_state:
                        continue
                    if state is exception:
                        master_uop = thread.master_uop
                        if master_uop is not None:
                            master = threads[thread.master_tid]
                            if not master.rob or master.rob[0] is not master_uop:
                                continue
                    elif head.linked_handler is not None:
                        continue
                    if sanitizer is not None:
                        sanitizer.on_retire(thread, head, now)
                    rob.popleft()
                    if head in win_uops:
                        win_uops.remove(head)
                        if not head.free_slot:
                            window._occupancy -= 1
                    head.state = retired_state
                    self._activity = True
                    inst = head.inst
                    op = inst.op
                    kind = inst.dest_kind
                    if kind == src_fp:
                        reg = inst.dest_idx
                        if head.value is not None:
                            thread.arch.write_fp(reg, head.value)
                        if thread.fp_map[reg] is head:
                            thread.fp_map[reg] = None
                    elif kind == src_int:
                        reg = inst.dest_idx
                        if head.value is not None:
                            thread.arch.write_int(reg, int(head.value))
                        if thread.int_map[reg] is head:
                            thread.int_map[reg] = None
                    elif head.dyn_dest is not None:
                        thread.arch.write_int(head.dyn_dest, int(head.value))
                        if thread.int_map[head.dyn_dest] is head:
                            thread.int_map[head.dyn_dest] = None
                    if inst.is_store:
                        write_word(head.eff_addr, head.value)
                        queue = thread.store_queue
                        if queue:
                            if queue[0] is head:
                                del queue[0]
                            elif head in queue:
                                queue.remove(head)
                        if mechanism is not None and head.eff_addr >= pt_base:
                            mechanism.on_store_retired(head.eff_addr, now)
                    elif inst.is_branch and op is not reti_op:
                        bpu_train(
                            head.pc,
                            inst,
                            head.checkpoint,
                            head.actual_taken,
                            head.actual_target,
                            head.pred_taken,
                            head.pred_target,
                        )
                    elif op is reti_op:
                        if mechanism is not None:
                            mechanism.on_reti_retired(head, now)
                    elif op is hardexc_op:
                        if mechanism is not None:
                            mechanism.on_hardexc(head, now)
                    elif op is halt_op:
                        thread.halted = True
                    if head.is_handler:
                        thread.retired_handler += 1
                        stats.retired_handler += 1
                    else:
                        thread.retired_user += 1
                        stats.retired_user += 1
                    if faults is not None:
                        faults.on_retire(thread, head, now)
                    progress = True

            # ---- execute (reference _execute; issue fast paths
            # dispatched inline on exec_kind) ----
            entries = wake_pop(now, None)
            if retry:
                if entries is None:
                    entries = []
                entries.extend(retry)
                retry.clear()
            if not entries:
                if mech_ports is not None and pool_mem > 0:
                    if mech_ports(now, pool_mem):
                        self._activity = True
            else:
                budget = width
                fu_used = {"alu": 0, "muldiv": 0, "fp": 0, "fpdiv": 0, "mem": 0}
                heap = entries
                if len(heap) > 1:
                    heapify(heap)
                self._exec_heap = heap
                while heap:
                    uop = heappop(heap)
                    if budget <= 0 and not free_handler_exec:
                        retry_append(uop)
                        while heap:
                            retry_append(heappop(heap))
                        break
                    self._exec_seq = uop.seq
                    uop.scheduled = False
                    if uop.state != window_state or uop.issued:
                        continue
                    if uop.waiting_fill is not None:
                        continue
                    if uop.min_sched_cycle > now:
                        schedule_uop(uop)
                        continue
                    # Inline src_ready(now).
                    p = uop.src_a_uop
                    if p is not None and not (p.issued and p.finish_cycle <= now):
                        schedule_uop(uop)
                        continue
                    p = uop.src_b_uop
                    if p is not None and not (p.issued and p.finish_cycle <= now):
                        schedule_uop(uop)
                        continue
                    inst = uop.inst
                    if inst.is_load and not load_ordering_ok(uop, now):
                        retry_append(uop)
                        uop.scheduled = True
                        continue
                    if inst.op is reti_op and not older_all_issued(uop):
                        retry_append(uop)
                        uop.scheduled = True
                        continue
                    handler_free = free_handler_exec and uop.is_handler
                    group = inst.fu_group
                    if not handler_free and (
                        budget <= 0 or fu_used[group] >= fu_caps[group]
                    ):
                        retry_append(uop)
                        uop.scheduled = True
                        continue
                    self._activity = True
                    # Inline _issue's operand read + common dispatches;
                    # everything else takes the reference slow path.
                    kind = inst.exec_kind
                    if kind == ek_int_alu and not inst.is_mem:
                        p = uop.src_a_uop
                        a = p.value if p is not None else uop.src_a_value
                        p = uop.src_b_uop
                        b = p.value if p is not None else uop.src_b_value
                        uop.value = compute_int(
                            inst,
                            int(a) if a is not None else 0,
                            int(b) if b is not None else 0,
                        )
                        uop.issued = True
                        uop.issue_cycle = now
                        fin = now + inst.fu_latency0
                        uop.finish_cycle = fin
                        consumers = uop.consumers
                        if consumers is not None:
                            # producer_issued inlined.
                            uop.consumers = None
                            for c in consumers:
                                if fin > c.src_wake:
                                    c.src_wake = fin
                                c.wait_count -= 1
                                if (
                                    c.wait_count == 0
                                    and not c.scheduled
                                    and c.state == window_state
                                ):
                                    c.scheduled = True
                                    wake = c.src_wake
                                    if wake in wake_buckets:
                                        wake_buckets[wake].append(c)
                                    else:
                                        wake_buckets[wake] = [c]
                        ok = True
                    elif inst.is_mem:
                        p = uop.src_a_uop
                        a = p.value if p is not None else uop.src_a_value
                        p = uop.src_b_uop
                        b = p.value if p is not None else uop.src_b_value
                        ok = issue_mem(
                            uop,
                            threads[uop.thread_id],
                            inst,
                            a if a is not None else 0,
                            b if b is not None else 0,
                            now,
                        )
                    elif kind == ek_branch:
                        p = uop.src_a_uop
                        a = p.value if p is not None else uop.src_a_value
                        p = uop.src_b_uop
                        b = p.value if p is not None else uop.src_b_value
                        ok = issue_branch(
                            uop,
                            threads[uop.thread_id],
                            inst,
                            a if a is not None else 0,
                            b if b is not None else 0,
                            now,
                        )
                    else:
                        ok = issue(uop, now)
                    if ok and not handler_free:
                        fu_used[group] += 1
                        budget -= 1
                self._exec_heap = None
                self._exec_seq = -1
                if mech_ports is not None:
                    free_mem = pool_mem - fu_used["mem"]
                    if free_mem > 0:
                        if mech_ports(now, free_mem):
                            self._activity = True

            # ---- fetch priority (reference _fetch_priority) ----
            handlers = None
            apps = []
            for t in threads:
                s = t.state
                if s is normal:
                    apps.append(t)
                elif s is exception:
                    if handlers is None:
                        handlers = [t]
                    else:
                        handlers.append(t)
            if icount:
                if len(apps) > 1:
                    apps.sort(key=rob_icount_key)
            elif apps:
                offset = now % len(apps)
                apps = apps[offset:] + apps[:offset]
            if handlers is None:
                prio = apps
            elif not handler_fetch_priority:
                prio = apps + handlers
            else:
                prio = handlers + apps

            # ---- decode (reference _decode over the shared order) ----
            squashed0 = stats.squashed
            discarded0 = stats.overfetch_discarded
            budget = width
            for thread in prio:
                buf = thread.fetch_buffer
                is_exc = thread.state is exception
                handler_free = free_handler_band and is_exc
                exc_id = None
                if is_exc and thread.exc_instance is not None:
                    exc_id = thread.exc_instance.id
                while buf and (budget > 0 or handler_free):
                    uop = buf[0]
                    if uop.avail_cycle > now:
                        break
                    if uop.discard:
                        buf.popleft()
                        thread.rob.remove(uop)
                        uop.state = squashed_state
                        stats.overfetch_discarded += 1
                        self._activity = True
                        if not handler_free:
                            budget -= 1
                        continue
                    if not uop.is_handler:
                        if (
                            window._occupancy + window._reserved_total
                            >= window.capacity
                        ):
                            break
                    elif not admit(thread, uop, now):
                        break
                    buf.popleft()
                    inst = uop.inst
                    if inst.op is reti_op and is_exc:
                        thread.fetch_done = True
                        thread.overfetch_after_reti = False
                    # _rename inlined.  The maps are re-read per uop:
                    # _admit can squash (rebuild_rename_maps reassigns
                    # them), so they are not loop-invariant here.
                    int_map = thread.int_map
                    fp_map = thread.fp_map
                    arch = thread.arch
                    kind = inst.src_a_kind
                    if kind == src_int:
                        reg = inst.src_a_idx
                        producer = int_map[reg]
                        if producer is not None:
                            uop.src_a_uop = producer
                        else:
                            uop.src_a_value = arch.read_int(reg)
                    elif kind == src_fp:
                        reg = inst.src_a_idx
                        producer = fp_map[reg]
                        if producer is not None:
                            uop.src_a_uop = producer
                        else:
                            uop.src_a_value = arch.read_fp(reg)
                    kind = inst.src_b_kind
                    if kind == src_int:
                        reg = inst.src_b_idx
                        producer = int_map[reg]
                        if producer is not None:
                            uop.src_b_uop = producer
                        else:
                            uop.src_b_value = arch.read_int(reg)
                    elif kind == src_imm:
                        uop.src_b_value = inst.imm0
                    elif kind == src_fp:
                        reg = inst.src_b_idx
                        producer = fp_map[reg]
                        if producer is not None:
                            uop.src_b_uop = producer
                        else:
                            uop.src_b_value = arch.read_fp(reg)
                    kind = inst.dest_kind
                    if kind == src_fp:
                        fp_map[inst.dest_idx] = uop
                    elif kind == src_int:
                        int_map[inst.dest_idx] = uop
                    elif inst.op is mtdst_op and thread.state is not exception:
                        dest = thread.priv_regs[exc_dst_reg]
                        if 0 < dest < 32:
                            uop.dyn_dest = dest
                            int_map[dest] = uop
                    if inst.is_store:
                        thread.store_queue.append(uop)
                    uop.renamed = True
                    if no_window_overhead and uop.is_handler:
                        uop.free_slot = True
                    # window.insert inlined.
                    if win_sanitizer is not None:
                        win_sanitizer.on_insert(window, uop)
                    win_uops.add(uop)
                    if not uop.free_slot:
                        occ = window._occupancy + 1
                        window._occupancy = occ
                        if occ > window.peak_occupancy:
                            window.peak_occupancy = occ
                    if exc_id is not None and win_reservations.get(exc_id, 0) > 0:
                        win_reservations[exc_id] -= 1
                        window._reserved_total -= 1
                    uop.insert_cycle = now
                    wake = now + sched_delay
                    uop.min_sched_cycle = wake
                    uop.state = window_state
                    # _schedule_uop inlined.
                    wait = 0
                    p = uop.src_a_uop
                    if p is not None:
                        if p.issued:
                            if p.finish_cycle > wake:
                                wake = p.finish_cycle
                        else:
                            if p.consumers is None:
                                p.consumers = [uop]
                            else:
                                p.consumers.append(uop)
                            wait += 1
                    p = uop.src_b_uop
                    if p is not None:
                        if p.issued:
                            if p.finish_cycle > wake:
                                wake = p.finish_cycle
                        else:
                            if p.consumers is None:
                                p.consumers = [uop]
                            else:
                                p.consumers.append(uop)
                            wait += 1
                    uop.wait_count = wait
                    uop.src_wake = wake
                    if wait == 0:
                        uop.scheduled = True
                        if wake in wake_buckets:
                            wake_buckets[wake].append(uop)
                        else:
                            wake_buckets[wake] = [uop]
                    self._activity = True
                    if not handler_free:
                        budget -= 1
                if budget <= 0 and not free_handler_band:
                    break
            if (
                stats.squashed != squashed0
                or stats.overfetch_discarded != discarded0
            ):
                # Decode squashed or discarded something: thread states
                # or ROB depths may have moved, so the fetch order must
                # be recomputed (reference _fetch computes its own).
                handlers = None
                apps = []
                for t in threads:
                    s = t.state
                    if s is normal:
                        apps.append(t)
                    elif s is exception:
                        if handlers is None:
                            handlers = [t]
                        else:
                            handlers.append(t)
                if icount:
                    if len(apps) > 1:
                        apps.sort(key=rob_icount_key)
                elif apps:
                    offset = now % len(apps)
                    apps = apps[offset:] + apps[:offset]
                if handlers is None:
                    prio = apps
                elif not handler_fetch_priority:
                    prio = apps + handlers
                else:
                    prio = handlers + apps

            # ---- fetch (reference _fetch with _fetch_one inlined) ----
            budget = width
            l1_limit = now + l1_latency
            seq = self._next_seq
            for thread in prio:
                state = thread.state
                handler_free = free_handler_band and state is exception
                if budget <= 0 and not handler_free:
                    continue
                # can_fetch(now) inlined (prio holds only NORMAL /
                # EXCEPTION threads, but a mid-cycle reclaim can idle
                # one, so the state check stays).
                if (
                    state is idle
                    or thread.halted
                    or thread.fetch_done
                    or thread.fetch_wait_uop is not None
                    or thread.fetch_stall_until > now
                    or thread.program is None
                ):
                    continue
                buf = thread.fetch_buffer
                cap = thread.fetch_buffer_size
                if len(buf) >= cap:
                    continue
                per_thread = width
                tid = thread.tid
                rob = thread.rob
                insts = thread.program.insts
                n_insts = len(insts)
                fetch_priv = thread.fetch_priv
                is_exc = state is exception
                overfetch = thread.overfetch_after_reti
                pc = thread.pc
                while (
                    per_thread > 0
                    and (budget > 0 or handler_free)
                    and len(buf) < cap
                ):
                    if pc < 0 or pc >= n_insts:
                        thread.fetch_stall_until = _FAR_FUTURE
                        break
                    inst = insts[pc]
                    if inst.privileged and not fetch_priv:
                        thread.fetch_stall_until = _FAR_FUTURE
                        break
                    if (
                        itlb is not None
                        and not fetch_priv
                        and itlb.lookup(vpn_of(pc * 4)) is None
                    ):
                        stats.itlb_miss_events += 1
                        self._activity = True
                        # The mechanism may redirect this thread
                        # (traditional trap) and may allocate uops of its
                        # own (quickstart materializes a prefetched
                        # handler image): sync the cached pc AND seq
                        # counter around the hook.
                        thread.pc = pc
                        if mechanism is not None:
                            self._next_seq = seq
                            mechanism.on_itlb_miss(thread, pc, now)
                            seq = self._next_seq
                        pc = thread.pc
                        break
                    # L1-I probe: hit fast path transcribed from
                    # Cache.access (stats, LRU clock, last-use, and the
                    # hit-under-miss MSHR merge); a miss takes the full
                    # method.  A clean hit completes at now + l1_latency
                    # (l1i is built with config.l1_latency, the same
                    # knob behind l1_limit), so it can never stall.
                    line_addr = (pc * 4) >> l1i_shift
                    line = l1i_sets[line_addr & l1i_mask].get(line_addr)
                    if line is not None:
                        l1i_stats.accesses += 1
                        l1i_stats.hits += 1
                        clock = l1i._use_clock + 1
                        l1i._use_clock = clock
                        line.last_use = clock
                        if l1i_mshrs:
                            # A hit returns now + l1_latency == l1_limit,
                            # so a merge (pending beyond that) always
                            # stalls the fetch.
                            pending = l1i_mshrs.get(line_addr)
                            if pending is not None and pending > l1_limit:
                                l1i_stats.mshr_merges += 1
                                thread.fetch_stall_until = pending
                                break
                    else:
                        ready = ifetch(pc * 4, now)
                        if ready > l1_limit:
                            thread.fetch_stall_until = ready
                            break
                    # Uop(seq, tid, pc, inst) inlined (__init__'s slot
                    # initialization transcribed, with the fetch-stage
                    # stamps folded in).  A drifted slot set fails loudly:
                    # a missing slot raises AttributeError on first read.
                    uop = uop_new(Uop)
                    uop.seq = seq
                    seq += 1
                    uop.thread_id = tid
                    uop.pc = pc
                    uop.inst = inst
                    uop.state = fetch_buf_state
                    uop.renamed = False
                    uop.fetch_cycle = now
                    uop.avail_cycle = now + fetch_latency
                    uop.insert_cycle = -1
                    uop.min_sched_cycle = -1
                    uop.issue_cycle = -1
                    uop.finish_cycle = -1
                    uop.issued = False
                    uop.pred_taken = False
                    uop.pred_target = None
                    uop.checkpoint = None
                    uop.actual_taken = False
                    uop.actual_target = None
                    uop.src_a_uop = None
                    uop.src_a_value = None
                    uop.src_b_uop = None
                    uop.src_b_value = None
                    uop.value = None
                    uop.eff_addr = None
                    uop.waiting_fill = None
                    uop.exc_instance = None
                    uop.linked_handler = None
                    uop.is_handler = inst.privileged
                    uop.free_slot = False
                    uop.quickstarted = False
                    uop.discard = overfetch
                    uop.dyn_dest = None
                    uop.wait_count = 0
                    uop.src_wake = -1
                    uop.consumers = None
                    uop.scheduled = False
                    rob.append(uop)
                    buf.append(uop)
                    stats.fetched += 1
                    self._activity = True
                    op = inst.op
                    if op is halt_op:
                        thread.fetch_wait_uop = uop
                        break
                    if inst.is_branch:
                        pred = bpu_predict(pc, inst)
                        uop.checkpoint = pred.checkpoint
                        uop.pred_taken = pred.taken
                        uop.pred_target = pred.target
                        if faults is not None and inst.is_cond_branch:
                            faults.poison_branch(uop, now)
                        if op is reti_op:
                            if is_exc:
                                if predict_handler_length:
                                    thread.fetch_done = True
                                    break
                                thread.overfetch_after_reti = True
                                overfetch = True
                                pc += 1
                                per_thread -= 1
                                if not handler_free:
                                    budget -= 1
                                continue
                            thread.fetch_wait_uop = uop
                            break
                        pc = uop.pred_target if uop.pred_taken else pc + 1
                    else:
                        pc += 1
                    per_thread -= 1
                    if not handler_free:
                        budget -= 1
                thread.pc = pc
            self._next_seq = seq
            if budget > 0 and mech_fetch_idle is not None:
                used = mech_fetch_idle(now, budget)
                if used:
                    budget -= used
                    self._activity = True

            # ---- advance the clock (reference step tail + run_to
            # fast-forward) ----
            now += 1
            self.cycle = now
            stats.cycles = now
            if fast_forward and not self._activity:
                nxt = next_event(now - 1)
                if nxt > now:
                    if nxt > stop_cycle:
                        nxt = stop_cycle
                    self.cycle = nxt
                    stats.cycles = nxt
        return False


def _rob_icount_key(thread):
    """ICOUNT chooser sort key (reference ``_fetch_priority``)."""
    return (len(thread.rob), thread.tid)
