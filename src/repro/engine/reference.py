"""The reference engine backend.

The unmodified :class:`~repro.pipeline.core.SMTCore` cycle kernel
behind the same backend facade: cells advance through the identical
lockstep driver as the batched backend (chunked ``run_to`` is
bit-identical to one straight call), so backend-to-backend comparisons
isolate exactly one variable -- the cycle kernel.
"""

from __future__ import annotations

from repro.engine.batched import SweepEngine

__all__ = ["ReferenceEngine"]


class ReferenceEngine(SweepEngine):
    """Plain reference cores under the lockstep batch driver."""

    name = "reference"
    core_cls = None
