"""The engine backend seam: a first slice of the ``Machine`` facade.

An :class:`EngineBackend` owns a *batch* of independent sweep cells and
advances them behind a narrow surface::

    backend = get_backend("batched")
    backend.configure(specs)       # describe the cells (picklable specs)
    backend.load()                 # build the simulators
    while backend.step_batch():    # advance every live cell in lockstep
        ...
    results = backend.results()    # SimResult per cell, in spec order

plus ``digest()`` (the fuzzer's perfect-machine oracle over one cell's
architectural state) and ``snapshot()`` (a checkpoint of one cell).
Backends differ only in *how* they advance cells -- the reference
backend steps one plain :class:`~repro.pipeline.core.SMTCore` per cell,
the batched backend drives dispatch-fused cores over
structure-of-arrays progress columns -- never in *what* they compute:
every backend must produce bit-identical digests and stats.

A cell spec is anything shaped like :class:`repro.sim.parallel.CellSpec`
(``workload`` / ``config`` / ``user_insts`` / ``warmup_insts`` /
``max_cycles`` / ``warm_from`` plus ``build_programs()``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import SimResult, Simulator

__all__ = ["EngineBackend"]


class EngineBackend:
    """Abstract engine backend (see module docstring)."""

    #: Registry name; also what cache keys and manifests record.
    name = "abstract"

    #: Default cycles each ``step_batch()`` call advances a live cell.
    quantum = 4096

    def __init__(self) -> None:
        self._specs: list = []
        self._loaded = False

    # -- facade ---------------------------------------------------------
    def configure(self, specs: Sequence) -> None:
        """Describe the batch.  Resets any previously loaded state."""
        self._specs = list(specs)
        self._loaded = False

    def load(self) -> None:
        """Build the simulators for every configured cell."""
        raise NotImplementedError

    def step_batch(self, cycles: int | None = None) -> int:
        """Advance every unfinished cell by up to ``cycles`` cycles
        (default :attr:`quantum`); returns how many cells are still
        live.  Finished cells retire from the batch and are never
        touched again (ragged completion)."""
        raise NotImplementedError

    def simulator(self, index: int = 0) -> "Simulator":
        """The live :class:`Simulator` behind cell ``index``."""
        raise NotImplementedError

    def results(self) -> "list[SimResult]":
        """Per-cell results in spec order; every cell must be done."""
        raise NotImplementedError

    # -- conveniences built on the facade -------------------------------
    def run(self) -> "list[SimResult]":
        """Load (if needed) and drive the batch to completion."""
        if not self._loaded:
            self.load()
        while self.step_batch():
            pass
        return self.results()

    def digest(self, index: int = 0) -> str:
        """Architectural digest of cell ``index`` (the differential
        oracle from :func:`repro.faults.fuzz.arch_digest`)."""
        from repro.faults.fuzz import arch_digest

        return arch_digest(self.simulator(index))

    def snapshot(self, path, index: int = 0, kind: str = "exact") -> str:
        """Checkpoint cell ``index`` to ``path``; returns the hash."""
        return self.simulator(index).save_checkpoint(path, kind=kind)
