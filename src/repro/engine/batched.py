"""The batched structure-of-arrays sweep engine.

:class:`SweepBatch` advances many independent sweep cells in lockstep:
one :meth:`SweepBatch.step` call walks the *batch* and moves every live
cell forward by a quantum of cycles, so a single Python-level driver
iteration advances N machines -- the in-process analogue of how
``repro.sim.parallel`` amortizes interpreter overhead across worker
processes.  Per-cell progress state lives in structure-of-arrays
columns (``array('q')`` integer columns for phase / stop-cycle / the
measurement-window anchors, parallel lists for the object-typed
columns), with :class:`_CellView` providing a ``__slots__`` row view
for inspection and tests.

Cells complete *raggedly*: a cell whose watch targets are met retires
from the live list immediately and is never stepped again, without
perturbing the surviving cells (each cell is a fully isolated machine;
the columns are append-only per batch).

Equivalence to the one-cell-at-a-time path is exact, not approximate:
the driver advances each cell through the very same
``SMTCore.run_to(watch, stop)`` loop that :meth:`Simulator.run` uses,
merely in bounded chunks -- and chunking is bit-identical to one
straight call (the invariant documented on ``run_to`` that the
checkpoint autosave runner already relies on).  The batched backend
swaps in :class:`repro.engine.core.BatchedSMTCore`, whose fused cycle
kernel is itself a line-for-line transcription of the reference stages.
"""

from __future__ import annotations

from array import array

from repro.engine.base import EngineBackend
from repro.engine.core import BatchedSMTCore
from repro.pipeline.thread import ThreadState
from repro.sim.simulator import SimResult, Simulator

__all__ = ["SweepBatch", "SweepEngine", "BatchedEngine"]

#: Phase column values.
PHASE_WARMUP = 0
PHASE_MEASURE = 1
PHASE_DONE = 2


class _CellView:
    """A ``__slots__`` row view over one cell's batch columns."""

    __slots__ = ("_batch", "index")

    def __init__(self, batch: "SweepBatch", index: int) -> None:
        self._batch = batch
        self.index = index

    @property
    def phase(self) -> int:
        return self._batch.phase[self.index]

    @property
    def stop_cycle(self) -> int:
        return self._batch.stop_cycle[self.index]

    @property
    def start_cycle(self) -> int:
        return self._batch.start_cycle[self.index]

    @property
    def cycle(self) -> int:
        return self._batch.cores[self.index].cycle

    @property
    def live(self) -> bool:
        return self.index in self._batch.live

    @property
    def spec(self):
        return self._batch.specs[self.index]

    @property
    def sim(self) -> Simulator:
        return self._batch.sims[self.index]

    @property
    def result(self) -> SimResult | None:
        return self._batch.cell_results[self.index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<cell {self.index} phase={self.phase} cycle={self.cycle}"
            f" live={self.live}>"
        )


class SweepBatch:
    """N independent sweep cells advanced in lockstep (see module doc)."""

    #: Every per-cell structure-of-arrays column, declared for the
    #: snapshot/digest surface.  The parity pass (repro-lint parity)
    #: checks that __init__ allocates exactly these columns and that
    #: each is consumed outside __init__ — an undeclared or unread
    #: column is state the digest oracle could never compare.
    _SOA_COLUMNS = (
        "specs",
        "phase",
        "stop_cycle",
        "start_cycle",
        "start_fills",
        "start_user",
        "sims",
        "cores",
        "watches",
        "cell_results",
        "live",
    )

    def __init__(self, specs, core_cls=None, quantum: int = 4096) -> None:
        if quantum < 1:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.specs = list(specs)
        self.core_cls = core_cls
        self.quantum = quantum
        n = len(self.specs)
        # Structure-of-arrays progress columns: one entry per cell.
        self.phase = array("q", [PHASE_WARMUP] * n)
        self.stop_cycle = array("q", [0] * n)
        self.start_cycle = array("q", [0] * n)
        self.start_fills = array("q", [0] * n)
        self.start_user = array("q", [0] * n)
        # Object-typed columns, parallel to the arrays above.
        self.sims: list[Simulator] = []
        self.cores: list = []
        self.watches: list[list] = []
        self.cell_results: list[SimResult | None] = [None] * n
        #: Indices of unfinished cells, in spec order (ragged completion
        #: removes an index the moment its cell's measurement is done).
        self.live: list[int] = []
        self._loaded = False

    def row(self, index: int) -> _CellView:
        return _CellView(self, index)

    # ------------------------------------------------------------------
    def load(self) -> None:
        """Build one simulator per cell and anchor its first phase."""
        if self._loaded:
            raise RuntimeError("batch already loaded")
        normal = ThreadState.NORMAL
        for i, spec in enumerate(self.specs):
            sim = Simulator(
                spec.build_programs(), spec.config, core_cls=self.core_cls
            )
            core = sim.core
            self.sims.append(sim)
            self.cores.append(core)
            self.stop_cycle[i] = spec.max_cycles
            warm_from = getattr(spec, "warm_from", None)
            if warm_from is not None:
                # Attach the shared warm state and measure from there
                # (exactly the run_cell warm path).
                from repro.checkpoint.warm import attach_warm

                attach_warm(sim, warm_from)
                self._anchor_measurement(i)
            elif spec.warmup_insts:
                self.phase[i] = PHASE_WARMUP
                self.watches.append(
                    [
                        (t, t.retired_user + spec.warmup_insts)
                        for t in core.threads
                        if t.state is normal
                    ]
                )
                self.live.append(i)
                continue
            else:
                self._anchor_measurement(i)
            self.live.append(i)
        self._loaded = True

    def _anchor_measurement(self, i: int) -> None:
        """Record the measurement-window anchors and arm the measure
        watch for cell ``i`` (what ``Simulator.run`` does between its
        warmup and measurement calls)."""
        sim = self.sims[i]
        core = self.cores[i]
        self.start_cycle[i] = core.cycle
        self.start_fills[i] = (
            sim.mechanism.stats.committed_fills if sim.mechanism else 0
        )
        self.start_user[i] = core.stats.retired_user
        self.phase[i] = PHASE_MEASURE
        watch = [
            (t, t.retired_user + self.specs[i].user_insts)
            for t in core.threads
            if t.state is ThreadState.NORMAL
        ]
        if i < len(self.watches):
            self.watches[i] = watch
        else:
            self.watches.append(watch)

    # ------------------------------------------------------------------
    def step(self, cycles: int | None = None) -> int:
        """Advance every live cell by up to ``cycles`` cycles; returns
        the number of cells still live afterwards."""
        if not self._loaded:
            raise RuntimeError("load() the batch before stepping it")
        quantum = self.quantum if cycles is None else cycles
        if quantum < 1:
            raise ValueError(f"cycles must be positive, got {quantum}")
        cores = self.cores
        watches = self.watches
        phase = self.phase
        stop_col = self.stop_cycle
        survivors = []
        for i in self.live:
            core = cores[i]
            stop = stop_col[i]
            target = core.cycle + quantum
            if target > stop:
                target = stop
            done = core.run_to(watches[i], target)
            if done:
                if phase[i] == PHASE_WARMUP:
                    self._anchor_measurement(i)
                    survivors.append(i)
                else:
                    phase[i] = PHASE_DONE
                    sim = self.sims[i]
                    self.cell_results[i] = sim.result(
                        since=(
                            self.start_cycle[i],
                            self.start_fills[i],
                            self.start_user[i],
                        )
                    )
                continue
            if core.cycle >= stop:
                # Same failure surface as SMTCore.run on the single-cell
                # path, so callers see one error shape per outcome.
                raise RuntimeError(
                    f"simulation exceeded {stop} cycles "
                    f"(retired: {[t.retired_user for t in core.threads]})"
                )
            survivors.append(i)
        self.live = survivors
        return len(survivors)

    def results(self) -> list[SimResult]:
        if any(p != PHASE_DONE for p in self.phase):
            unfinished = [i for i, p in enumerate(self.phase) if p != PHASE_DONE]
            raise RuntimeError(f"batch cells not finished: {unfinished}")
        return list(self.cell_results)  # type: ignore[arg-type]


class SweepEngine(EngineBackend):
    """Driver-backed backend: :class:`SweepBatch` over a core class."""

    #: ``SMTCore`` subclass injected into each cell's Simulator
    #: (``None`` selects the reference cycle kernel).
    core_cls = None

    def __init__(self) -> None:
        super().__init__()
        self._batch: SweepBatch | None = None

    def load(self) -> None:
        self._batch = SweepBatch(
            self._specs, core_cls=self.core_cls, quantum=self.quantum
        )
        self._batch.load()
        self._loaded = True

    def _live_batch(self) -> SweepBatch:
        if self._batch is None:
            raise RuntimeError("configure() and load() the backend first")
        return self._batch

    def step_batch(self, cycles: int | None = None) -> int:
        return self._live_batch().step(cycles)

    def simulator(self, index: int = 0) -> Simulator:
        return self._live_batch().sims[index]

    def results(self) -> list[SimResult]:
        return self._live_batch().results()


class BatchedEngine(SweepEngine):
    """The batched SoA backend: fused cores under the lockstep driver."""

    name = "batched"
    core_cls = BatchedSMTCore
