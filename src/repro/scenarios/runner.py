"""Run scenario specs: every mechanism, both engine kernels, one digest.

For each :class:`~repro.scenarios.spec.ScenarioSpec` the runner:

1. runs the *perfect* machine once to define the reference
   architectural digest (:func:`repro.faults.fuzz.arch_digest`);
2. runs every requested mechanism under both engine backends (the
   reference cycle kernel and the batched fused kernel), sanitizer
   attached;
3. checks every run's digest against the reference and the two kernels
   against each other (digest, cycles, and every pipeline counter must
   match exactly);
4. folds the per-cause counters (``cause_taken`` / ``cause_squashes`` /
   ``cause_handler_cycles``) into a Table-3-style attribution: for each
   mechanism and cause, how many exceptions were taken and how many
   cycles their handling consumed.

Scenario programs halt by construction, so a run exceeding the cycle
bound is reported as a hang.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.analysis.sanitizer import SanitizerError
from repro.faults.fuzz import MECHANISMS, arch_digest
from repro.scenarios.spec import ScenarioSpec, build_scenario_program
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import make_program

__all__ = ["EngineRun", "ScenarioResult", "run_scenario", "run_matrix"]

#: Per-run cycle bound; scenario programs finish in a few thousand.
DEFAULT_MAX_CYCLES = 2_000_000

ENGINES = ("reference", "batched")


@dataclass
class EngineRun:
    """One (mechanism, engine) simulation of a scenario."""

    mechanism: str
    engine: str
    ok: bool = True
    reason: str = ""  # "", "sanitizer", "hang", "digest"
    detail: str = ""
    cycles: int = 0
    digest: tuple | None = None
    #: cause -> (taken, squashes, handler_cycles) from SimStats.
    attribution: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)


@dataclass
class ScenarioResult:
    """Everything one scenario produced, plus pass/fail verdicts."""

    spec: ScenarioSpec
    runs: list[EngineRun] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    source: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict:
        return {
            "name": self.spec.name,
            "seed": self.spec.seed,
            "causes": list(self.spec.causes),
            "mix": self.spec.mix,
            "config_overrides": dict(self.spec.config_overrides),
            "ok": self.ok,
            "failures": list(self.failures),
            "runs": [
                {
                    "mechanism": r.mechanism,
                    "engine": r.engine,
                    "ok": r.ok,
                    "reason": r.reason,
                    "cycles": r.cycles,
                    "attribution": {
                        cause: {
                            "taken": taken,
                            "squashes": squashes,
                            "handler_cycles": cycles,
                        }
                        for cause, (taken, squashes, cycles) in sorted(
                            r.attribution.items()
                        )
                    },
                }
                for r in self.runs
            ],
        }


def _attribution(sim: Simulator) -> dict:
    stats = sim.core.stats
    causes = (
        set(stats.cause_taken)
        | set(stats.cause_squashes)
        | set(stats.cause_handler_cycles)
    )
    return {
        cause: (
            stats.cause_taken.get(cause, 0),
            stats.cause_squashes.get(cause, 0),
            stats.cause_handler_cycles.get(cause, 0),
        )
        for cause in causes
    }


def _run_one(
    spec: ScenarioSpec,
    program_source: str,
    regions: list,
    mechanism: str,
    engine: str,
    max_cycles: int,
) -> EngineRun:
    core_cls = None
    if engine != "reference":
        from repro.engine import core_class

        core_cls = core_class(engine)
    program = make_program(program_source, regions=regions, scenario_causes=True)
    config = MachineConfig(
        mechanism=mechanism, sanitize=True, **spec.config_overrides
    )
    sim = Simulator(program, config, core_cls=core_cls)
    core = sim.core
    run = EngineRun(mechanism=mechanism, engine=engine)
    user = [
        t
        for t in core.threads
        if t.program is not None and not t.is_exception_thread
    ]
    watch = [(t, max_cycles + 1) for t in user]
    try:
        while core.cycle < max_cycles and not all(t.halted for t in user):
            before = core.cycle
            core.run_to(watch, max_cycles)
            if core.cycle == before and not all(t.halted for t in user):
                core.step()
        if not all(t.halted for t in user):
            run.ok = False
            run.reason = "hang"
            run.detail = f"no halt within {max_cycles} cycles"
    except SanitizerError as exc:
        run.ok = False
        run.reason = "sanitizer"
        run.detail = str(exc)
    run.cycles = core.cycle
    if run.ok:
        run.digest = arch_digest(sim)
        run.attribution = _attribution(sim)
        run.stats = {
            "sim": core.stats.as_dict(),
            "mech": (
                dataclasses.asdict(sim.mechanism.stats) if sim.mechanism else None
            ),
        }
    return run


def run_scenario(
    spec: ScenarioSpec,
    mechanisms: tuple = MECHANISMS,
    engines: tuple = ENGINES,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> ScenarioResult:
    """Run one spec across the mechanism x engine matrix."""
    program = build_scenario_program(spec)
    result = ScenarioResult(spec=spec, source=program.source)

    reference = _run_one(
        spec, program.source, program.regions, "perfect", "reference", max_cycles
    )
    result.runs.append(reference)
    if not reference.ok:
        result.failures.append(
            f"perfect/reference {reference.reason}: {reference.detail}"
        )
        return result

    for mechanism in mechanisms:
        per_engine: dict[str, EngineRun] = {}
        for engine in engines:
            run = _run_one(
                spec, program.source, program.regions, mechanism, engine,
                max_cycles,
            )
            result.runs.append(run)
            per_engine[engine] = run
            if not run.ok:
                result.failures.append(
                    f"{mechanism}/{engine} {run.reason}: {run.detail[:200]}"
                )
            elif run.digest != reference.digest:
                run.ok = False
                run.reason = "digest"
                result.failures.append(
                    f"{mechanism}/{engine} digest mismatch vs perfect"
                )
        if len(per_engine) == len(ENGINES) and all(
            r.ok for r in per_engine.values()
        ):
            ref, bat = per_engine["reference"], per_engine["batched"]
            if (ref.cycles, ref.digest, ref.stats) != (
                bat.cycles,
                bat.digest,
                bat.stats,
            ):
                bad = [
                    k
                    for k in ref.stats.get("sim", {})
                    if ref.stats["sim"][k] != bat.stats.get("sim", {}).get(k)
                ]
                result.failures.append(
                    f"{mechanism} engine mismatch: cycles "
                    f"{ref.cycles} vs {bat.cycles}, counters {bad[:4]}"
                )
    return result


def run_matrix(
    specs: list[ScenarioSpec],
    mechanisms: tuple = MECHANISMS,
    engines: tuple = ENGINES,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    log=None,
) -> list[ScenarioResult]:
    """Run every spec; returns all results (never stops early)."""
    results = []
    for spec in specs:
        result = run_scenario(
            spec, mechanisms=mechanisms, engines=engines, max_cycles=max_cycles
        )
        results.append(result)
        if log is not None:
            status = "ok" if result.ok else "FAIL"
            log(f"{spec.describe()} ... {status}")
    return results
