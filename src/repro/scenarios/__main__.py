"""``python -m repro.scenarios`` runs the scenario-matrix CLI."""

import sys

from repro.scenarios.cli import main

sys.exit(main())
