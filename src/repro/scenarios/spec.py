"""Seeded scenario specs: cause mixes, config variants, program layout.

A *scenario* is one reproducible stress recipe for the restartable-
exception machinery: a generated guest program targeting a set of
exception causes (:data:`repro.faults.progen.CAUSES`), the machine
configuration those causes need to actually fire (ITLB size, alignment
checking), and a *mix style* shaping how cause triggers interleave:

``uniform``
    Cause ops are blended into the regular seeded op stream (the
    :func:`repro.faults.progen.generate_ops` default).
``back_to_back``
    Cause ops additionally appear in consecutive clusters, so a second
    exception is raised while the previous handler is still in flight
    (the paper's multiple-outstanding-exception case).
``nested``
    Cause clusters are wrapped in forward-skip branches, nesting the
    triggers inside speculative control flow so handlers overlap
    mispredict squashes.

:func:`generate_matrix` expands a seed into the standard scenario
matrix: every cause in isolation, seeded pairs, and all-cause sweeps in
every mix style, each with seeded config variants (ITLB sizes, idle
thread counts).  Specs are pure data -- :mod:`repro.scenarios.runner`
turns them into simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.progen import (
    CAUSES,
    ITLB_STRIDE,
    GenOp,
    GeneratedProgram,
    Rng,
    _CAUSE_MAKERS,
    _emul,
    _mem,
    _skip,
    generate_ops,
    render_program,
)
from repro.faults.progen import (
    DATA_BASE,
    LOAD_BASE,
    LOAD_REGION_BYTES,
    REGION_BYTES,
)

__all__ = [
    "MIX_STYLES",
    "SCENARIO_CAUSES",
    "ScenarioSpec",
    "build_scenario_program",
    "generate_matrix",
]

#: The causes beyond the seed machine's DTLB story (tentpole set).
SCENARIO_CAUSES = ("itlb_miss", "unaligned", "brev", "swint")

MIX_STYLES = ("uniform", "back_to_back", "nested")

#: Ops per back-to-back / nested cause cluster.
_CLUSTER = 3


@dataclass(frozen=True)
class ScenarioSpec:
    """One runnable scenario: program recipe + machine configuration."""

    name: str
    seed: int
    causes: tuple
    mix: str = "uniform"
    length: int = 36
    iters: int = 24
    #: MachineConfig overrides every run of the scenario uses (applied
    #: to the perfect reference too, so digests stay comparable).
    config_overrides: dict = field(default_factory=dict)

    def describe(self) -> str:
        knobs = ",".join(f"{k}={v}" for k, v in sorted(self.config_overrides.items()))
        return (
            f"{self.name}: causes={'+'.join(self.causes) or 'dtlb-only'} "
            f"mix={self.mix} seed={self.seed}"
            + (f" [{knobs}]" if knobs else "")
        )


def _cause_op(cause: str, rng: Rng) -> GenOp | None:
    """One trigger op for ``cause`` (None: layout-driven, e.g. ITLB)."""
    maker = _CAUSE_MAKERS.get(cause)
    if maker is None:
        maker = {"emul": _emul, "dtlb_miss": _mem}.get(cause)
    return maker(rng) if maker else None


def _cluster_ops(causes: tuple, rng: Rng, nested: bool) -> list[GenOp]:
    """A consecutive run of cause triggers, optionally skip-wrapped."""
    ops: list[GenOp] = []
    if nested:
        # The skip guards the cluster: the triggers sit inside
        # speculative forward control flow, so a mispredict can squash
        # mid-handler.  Clamp the skip span to the cluster size.
        guard = _skip(rng)
        ops.append(GenOp(guard.kind, guard.lines, skip=_CLUSTER))
    burst = [op for op in (_cause_op(c, rng) for c in causes) if op is not None]
    if not burst:
        return []
    while len(ops) < _CLUSTER + (1 if nested else 0):
        ops.append(burst[rng.below(len(burst))])
    return ops


def scenario_ops(spec: ScenarioSpec) -> list[GenOp]:
    """The op IR for a spec: base stream plus mix-style cause clusters."""
    base = generate_ops(spec.seed, spec.length, causes=spec.causes)
    if spec.mix == "uniform":
        return base
    rng = Rng(spec.seed ^ 0x5CE4A210)
    nested = spec.mix == "nested"
    clusters = 2 + rng.below(2)
    out = list(base)
    for _ in range(clusters):
        cluster = _cluster_ops(spec.causes, rng, nested)
        if not cluster:
            break
        at = rng.below(len(out) + 1)
        out[at:at] = cluster
    return out


def build_scenario_program(spec: ScenarioSpec) -> GeneratedProgram:
    """Render a spec into a generated program (IR + source + regions)."""
    itlb_stride = ITLB_STRIDE if "itlb_miss" in spec.causes else 0
    ops = scenario_ops(spec)
    source = render_program(ops, spec.seed, spec.iters, itlb_stride=itlb_stride)
    regions = [(DATA_BASE, REGION_BYTES)]
    if any(op.kind == "unaligned" for op in ops):
        regions.append((LOAD_BASE, LOAD_REGION_BYTES))
    return GeneratedProgram(
        seed=spec.seed,
        iters=spec.iters,
        ops=ops,
        source=source,
        regions=regions,
        causes=tuple(spec.causes),
        itlb_stride=itlb_stride,
    )


def overrides_for(causes: tuple, rng: Rng | None = None) -> dict:
    """Config knobs a cause set needs, with seeded variation."""
    overrides: dict = {}
    if "itlb_miss" in causes:
        overrides["itlb_entries"] = (1, 2, 4)[rng.below(3)] if rng else 1
    if "unaligned" in causes:
        overrides["align_check"] = True
    return overrides


def generate_matrix(seed: int = 0, quick: bool = False) -> list[ScenarioSpec]:
    """The standard scenario matrix for one base seed.

    Singles cover each scenario cause in isolation; pairs and the
    all-cause sweeps compose them, with the ``back_to_back`` and
    ``nested`` mixes exercising overlapping and speculatively-nested
    handlers.  ``quick`` trims to one spec per shape for smoke/CI runs.
    """
    rng = Rng(seed ^ 0x3A7E11CE)
    specs: list[ScenarioSpec] = []
    for cause in SCENARIO_CAUSES:
        specs.append(
            ScenarioSpec(
                name=f"single-{cause}",
                seed=seed + len(specs),
                causes=(cause,),
                config_overrides=overrides_for((cause,), rng),
            )
        )
    pair_pool = [
        (a, b)
        for i, a in enumerate(SCENARIO_CAUSES)
        for b in SCENARIO_CAUSES[i + 1:]
    ]
    pairs = pair_pool if not quick else [pair_pool[rng.below(len(pair_pool))]]
    if quick:
        specs = [specs[rng.below(len(specs))]]
    for pair in pairs:
        specs.append(
            ScenarioSpec(
                name=f"pair-{pair[0]}+{pair[1]}",
                seed=seed + 100 + len(specs),
                causes=pair,
                mix="back_to_back",
                config_overrides=overrides_for(pair, rng),
            )
        )
    all_causes = tuple(c for c in CAUSES if c in SCENARIO_CAUSES or c == "emul")
    for mix in MIX_STYLES if not quick else ("back_to_back", "nested"):
        specs.append(
            ScenarioSpec(
                name=f"all-{mix.replace('_', '-')}",
                seed=seed + 200 + len(specs),
                causes=all_causes,
                mix=mix,
                config_overrides={
                    **overrides_for(all_causes, rng),
                    # Environment variant: vary the handler-context pool.
                    "idle_threads": 1 + rng.below(2),
                },
            )
        )
    return specs
