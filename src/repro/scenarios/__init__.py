"""Randomized restartable-exception scenarios beyond DTLB misses.

The seed machine's exception story is built around one cause (the DTLB
miss) plus instruction emulation.  This package composes *all* the
restartable causes -- ITLB misses, unaligned-access fixups, emulated
instructions (``brev``/``swint``), software interrupts -- into seeded,
reproducible stress scenarios and runs them across every exception
mechanism and both engine kernels with a digest oracle and Table-3-style
per-cause cycle attribution.  See ``docs/SCENARIOS.md``.
"""

from repro.scenarios.runner import (
    ENGINES,
    EngineRun,
    ScenarioResult,
    run_matrix,
    run_scenario,
)
from repro.scenarios.spec import (
    MIX_STYLES,
    SCENARIO_CAUSES,
    ScenarioSpec,
    build_scenario_program,
    generate_matrix,
)

__all__ = [
    "ENGINES",
    "EngineRun",
    "MIX_STYLES",
    "SCENARIO_CAUSES",
    "ScenarioResult",
    "ScenarioSpec",
    "build_scenario_program",
    "generate_matrix",
    "run_matrix",
    "run_scenario",
]
