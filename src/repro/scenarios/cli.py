"""``repro-scenarios``: run the randomized scenario matrix.

Expands a base seed into the standard scenario matrix (every scenario
cause alone, seeded pairs back-to-back, all-cause sweeps in every mix
style), runs each scenario under the requested mechanisms and engine
kernels, checks every digest against the perfect reference (and the two
kernels against each other), and prints a Table-3-style per-cause cycle
attribution.

Exit codes: 0 -- every run agreed; 1 -- at least one scenario failed
(its program source is written to ``--artifacts`` when set); 2 -- bad
usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.faults.fuzz import MECHANISMS
from repro.scenarios.runner import ENGINES, run_matrix
from repro.scenarios.spec import generate_matrix

#: Attribution table column order (stable for diffs and tests).
_CAUSE_ORDER = ("dtlb_miss", "itlb_miss", "unaligned", "emul", "brev", "swint")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scenarios",
        description="Run randomized restartable-exception scenarios "
        "across every mechanism and engine kernel.",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the scenario matrix (default: 0)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="trim the matrix to one spec per shape (CI smoke)",
    )
    parser.add_argument(
        "--mechanisms", default=None, metavar="LIST",
        help="comma-separated mechanisms to run "
        f"(default: {','.join(MECHANISMS)})",
    )
    parser.add_argument(
        "--engines", default=None, metavar="LIST",
        help="comma-separated engine kernels (default: "
        f"{','.join(ENGINES)}; both enables the bit-identity check)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=None, metavar="N",
        help="per-run hang bound in cycles (default: 2000000)",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None, metavar="FILE",
        help="write the full result matrix (JSON) here, pass or fail",
    )
    parser.add_argument(
        "--artifacts", type=Path, default=None, metavar="DIR",
        help="directory for failing scenarios' program sources",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-scenario progress"
    )
    return parser


def _attribution_table(results) -> str:
    """Per-cause cycle attribution in the style of the paper's Table 3."""
    lines = []
    for result in results:
        lines.append(f"\n{result.spec.describe()}")
        lines.append(
            f"  {'mechanism':14s} {'engine':9s} {'cycles':>8s}  "
            + "  ".join(f"{c:>18s}" for c in _CAUSE_ORDER)
        )
        for run in result.runs:
            if not run.ok or not run.attribution:
                continue
            cells = []
            for cause in _CAUSE_ORDER:
                taken, _, handler_cycles = run.attribution.get(cause, (0, 0, 0))
                cells.append(
                    f"{taken:>6d}/{handler_cycles:<8d}" if taken else f"{'-':>15s}"
                )
            lines.append(
                f"  {run.mechanism:14s} {run.engine:9s} {run.cycles:>8d}  "
                + "  ".join(f"{c:>18s}" for c in cells)
            )
        lines.append("  (cells: exceptions taken / handler cycles)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    mechanisms = tuple(MECHANISMS)
    if args.mechanisms is not None:
        mechanisms = tuple(
            m.strip() for m in args.mechanisms.split(",") if m.strip()
        )
        unknown = sorted(set(mechanisms) - set(MECHANISMS))
        if unknown:
            print(
                f"error: unknown mechanisms {', '.join(unknown)} "
                f"(known: {', '.join(MECHANISMS)})",
                file=sys.stderr,
            )
            return 2
    engines = tuple(ENGINES)
    if args.engines is not None:
        engines = tuple(e.strip() for e in args.engines.split(",") if e.strip())
        unknown = sorted(set(engines) - set(ENGINES))
        if unknown:
            print(
                f"error: unknown engines {', '.join(unknown)} "
                f"(known: {', '.join(ENGINES)})",
                file=sys.stderr,
            )
            return 2

    log = (lambda msg: None) if args.quiet else (
        lambda msg: print(msg, flush=True)
    )
    kwargs = {}
    if args.max_cycles is not None:
        kwargs["max_cycles"] = args.max_cycles
    specs = generate_matrix(seed=args.seed, quick=args.quick)
    results = run_matrix(
        specs, mechanisms=mechanisms, engines=engines, log=log, **kwargs
    )

    failed = [r for r in results if not r.ok]
    if args.artifacts is not None and failed:
        args.artifacts.mkdir(parents=True, exist_ok=True)
        for result in failed:
            stem = args.artifacts / f"{result.spec.name}_{result.spec.seed}"
            stem.with_suffix(".s").write_text(result.source)
            stem.with_suffix(".json").write_text(
                json.dumps(result.to_json(), indent=2) + "\n"
            )
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(
            json.dumps([r.to_json() for r in results], indent=2) + "\n"
        )

    print(_attribution_table(results))
    print(
        f"\nrepro-scenarios: {len(results)} scenarios, "
        f"{sum(len(r.runs) for r in results)} runs, "
        f"{len(failed)} failure(s)"
    )
    for result in failed:
        for failure in result.failures:
            print(f"  {result.spec.name}: {failure}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
