"""Architectural registers.

The ISA has three register spaces:

* 32 integer registers ``r0``-``r31``.  ``r0`` is hardwired to zero, as on
  MIPS/Alpha.  By convention ``r29`` is the stack pointer and ``r30`` the
  return-address register (used implicitly by ``call``/``ret``).
* 32 floating-point registers ``f0``-``f31``.
* A small privileged (PAL) register space, used only by exception
  handlers: the faulting virtual address, the page-table base, the
  exception return PC, and the processor status word.

Register operands are plain integers in the instruction encoding; the two
spaces are disambiguated by the opcode (FP opcodes name FP registers).
"""

from __future__ import annotations

import enum

#: 32 user registers plus 8 PAL shadow registers (see :func:`pal_reg`).
INT_REG_COUNT = 40
FP_REG_COUNT = 32

#: First PAL shadow register index.
SHADOW_BASE = 32

#: Integer register hardwired to zero.
ZERO_REG = 0
#: Conventional stack pointer.
SP_REG = 29
#: Return-address register written by ``call``/``calli`` and read by ``ret``.
RA_REG = 30

_INT_MASK = (1 << 64) - 1


def pal_reg(reg: int) -> int:
    """Map a handler-named integer register onto the PAL shadow bank.

    Alpha PALcode executes with shadow registers so the trap handler does
    not clobber application state.  Handler source names ``r1``-``r7``;
    at rename time those resolve to shadow indices 33-39.  ``r0`` stays
    the hardwired zero and registers >= 8 pass through (handlers never
    use them).
    """
    if 0 < reg < 8:
        return reg + SHADOW_BASE
    return reg


class PrivReg(enum.IntEnum):
    """Privileged (PAL) register indices.

    These model the handful of internal processor registers a software TLB
    miss handler needs, mirroring the Alpha 21164 PALcode environment the
    paper simulates (``VA``/``MM_STAT``-style fault information plus a
    page-table base register).
    """

    #: Faulting virtual address, latched by hardware when a DTLB miss traps.
    VA = 0
    #: Page-table base physical address.
    PTBR = 1
    #: PC of the excepting instruction (the ``reti`` target).
    EXC_PC = 2
    #: Processor status (bit 0: privileged mode).
    PS = 3
    #: Scratch register available to PALcode.
    SCRATCH = 4
    #: Source-operand value of the excepting instruction (Section 6 of
    #: the paper: register read access for generalized handlers).
    EXC_SRC = 5
    #: Destination logical register index of the excepting instruction.
    EXC_DST = 6


class RegisterFile:
    """The architectural (committed) register state for one thread.

    The pipeline keeps speculative values inside in-flight instructions;
    this class holds only *retired* state, which squash recovery rebuilds
    the rename map from.

    Integer values are stored as unsigned 64-bit Python ints; helpers are
    provided for signed interpretation.  Floating-point registers hold
    Python floats.
    """

    __slots__ = ("ints", "fps", "privs")

    def __init__(self) -> None:
        self.ints: list[int] = [0] * INT_REG_COUNT
        self.fps: list[float] = [0.0] * FP_REG_COUNT
        self.privs: list[int] = [0] * len(PrivReg)

    def read_int(self, idx: int) -> int:
        """Return the unsigned 64-bit value of integer register ``idx``."""
        return self.ints[idx]

    def write_int(self, idx: int, value: int) -> None:
        """Write integer register ``idx``; writes to ``r0`` are discarded."""
        if idx != ZERO_REG:
            self.ints[idx] = value & _INT_MASK

    def read_fp(self, idx: int) -> float:
        """Return the value of floating-point register ``idx``."""
        return self.fps[idx]

    def write_fp(self, idx: int, value: float) -> None:
        """Write floating-point register ``idx``."""
        self.fps[idx] = float(value)

    def read_priv(self, reg: int) -> int:
        """Return the value of privileged register ``reg``."""
        return self.privs[reg]

    def write_priv(self, reg: int, value: int) -> None:
        """Write privileged register ``reg``."""
        self.privs[reg] = value & _INT_MASK

    def snapshot(self) -> "RegisterFile":
        """Return an independent copy of the full architectural state."""
        copy = RegisterFile()
        copy.ints = list(self.ints)
        copy.fps = list(self.fps)
        copy.privs = list(self.privs)
        return copy

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        return {
            "ints": list(self.ints),
            "fps": list(self.fps),
            "privs": list(self.privs),
        }

    def restore_state(self, state: dict, ctx) -> None:
        self.ints = list(state["ints"])
        self.fps = list(state["fps"])
        self.privs = list(state["privs"])


def to_signed(value: int) -> int:
    """Interpret an unsigned 64-bit integer as two's-complement signed."""
    value &= _INT_MASK
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def to_unsigned(value: int) -> int:
    """Wrap a Python integer into the unsigned 64-bit domain."""
    return value & _INT_MASK
