"""Static instructions: opcodes, functional-unit classes, operand record.

A :class:`Instruction` is the *static* form -- what the assembler emits and
what lives in the program's text segment.  The pipeline wraps each fetched
occurrence in a dynamic record (:class:`repro.pipeline.uop.Uop`).

Operand conventions (fields unused by an opcode are ``None``):

========  =======================================================
pattern   meaning
========  =======================================================
``rd``    destination register (int or FP space per opcode)
``ra``    first source register
``rb``    second source register (``None`` when ``imm`` is used)
``imm``   immediate operand / memory displacement
``target``  label name, resolved to an instruction index by the
          assembler (direct branches and calls)
========  =======================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FUClass(enum.Enum):
    """Functional-unit class an opcode executes on (Table 1 of the paper)."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    FP_SQRT = "fp_sqrt"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NONE = "none"


class Opcode(enum.Enum):
    """Every operation in the ISA."""

    # Integer ALU (rb or imm as second operand).
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    CMPLT = "cmplt"  # signed less-than -> 0/1
    CMPULT = "cmpult"  # unsigned less-than -> 0/1
    CMPEQ = "cmpeq"
    MUL = "mul"
    DIV = "div"  # signed; divide-by-zero yields 0 (wrong-path safe)
    LI = "li"  # rd <- imm (assembler-level, executes on INT_ALU)

    # Memory (8-byte, naturally aligned; effective address ra + imm).
    LD = "ld"
    ST = "st"
    FLD = "fld"
    FST = "fst"

    # Control.  Conditional branches compare ra against rb (or r0).
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"  # direct unconditional
    CALL = "call"  # direct; writes return address to r30, pushes RAS
    CALLI = "calli"  # indirect call through ra; writes r30, pushes RAS
    RET = "ret"  # indirect jump through r30, pops RAS
    JMPI = "jmpi"  # indirect jump through ra (computed goto / switch)

    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    ITOF = "itof"  # rd(fp) <- float(ra(int))
    FTOI = "ftoi"  # rd(int) <- trunc(ra(fp))

    # Privileged / PAL (legal only in privileged mode).
    MFPR = "mfpr"  # rd <- priv[imm]
    MTPR = "mtpr"  # priv[imm] <- ra
    TLBWR = "tlbwr"  # install translation: va in ra, PTE in rb
    RETI = "reti"  # return from exception to the excepting instruction
    HARDEXC = "hardexc"  # request reversion to the traditional mechanism
    MTDST = "mtdst"  # write ra to the excepting instruction's destination

    # Software-emulated operation (Section 6): rd <- popcount(ra).
    # Raises an emulation exception; only the perfect machine (and the
    # handler) compute it directly.
    EMUL = "emul"

    # Misc.
    NOP = "nop"
    HALT = "halt"


#: Opcode -> functional-unit class.
OPCODE_FU: dict[Opcode, FUClass] = {
    Opcode.ADD: FUClass.INT_ALU,
    Opcode.SUB: FUClass.INT_ALU,
    Opcode.AND: FUClass.INT_ALU,
    Opcode.OR: FUClass.INT_ALU,
    Opcode.XOR: FUClass.INT_ALU,
    Opcode.SLL: FUClass.INT_ALU,
    Opcode.SRL: FUClass.INT_ALU,
    Opcode.SRA: FUClass.INT_ALU,
    Opcode.CMPLT: FUClass.INT_ALU,
    Opcode.CMPULT: FUClass.INT_ALU,
    Opcode.CMPEQ: FUClass.INT_ALU,
    Opcode.LI: FUClass.INT_ALU,
    Opcode.MUL: FUClass.INT_MUL,
    Opcode.DIV: FUClass.INT_DIV,
    Opcode.LD: FUClass.LOAD,
    Opcode.FLD: FUClass.LOAD,
    Opcode.ST: FUClass.STORE,
    Opcode.FST: FUClass.STORE,
    Opcode.BEQ: FUClass.BRANCH,
    Opcode.BNE: FUClass.BRANCH,
    Opcode.BLT: FUClass.BRANCH,
    Opcode.BGE: FUClass.BRANCH,
    Opcode.JMP: FUClass.BRANCH,
    Opcode.CALL: FUClass.BRANCH,
    Opcode.CALLI: FUClass.BRANCH,
    Opcode.RET: FUClass.BRANCH,
    Opcode.JMPI: FUClass.BRANCH,
    Opcode.FADD: FUClass.FP_ADD,
    Opcode.FSUB: FUClass.FP_ADD,
    Opcode.FMUL: FUClass.FP_MUL,
    Opcode.FDIV: FUClass.FP_DIV,
    Opcode.FSQRT: FUClass.FP_SQRT,
    Opcode.ITOF: FUClass.FP_ADD,
    Opcode.FTOI: FUClass.FP_ADD,
    Opcode.MFPR: FUClass.INT_ALU,
    Opcode.MTPR: FUClass.INT_ALU,
    Opcode.TLBWR: FUClass.INT_ALU,
    Opcode.RETI: FUClass.BRANCH,
    Opcode.HARDEXC: FUClass.INT_ALU,
    Opcode.MTDST: FUClass.INT_ALU,
    Opcode.EMUL: FUClass.INT_ALU,
    Opcode.NOP: FUClass.INT_ALU,
    Opcode.HALT: FUClass.INT_ALU,
}

#: Opcodes that end execution of conditional/unconditional control flow.
BRANCH_OPS = frozenset(
    {
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.JMP,
        Opcode.CALL,
        Opcode.CALLI,
        Opcode.RET,
        Opcode.JMPI,
        Opcode.RETI,
    }
)

#: Conditional subset of :data:`BRANCH_OPS`.
COND_BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})

#: Indirect control flow (the target comes from a register).
INDIRECT_OPS = frozenset({Opcode.CALLI, Opcode.RET, Opcode.JMPI, Opcode.RETI})

#: Memory operations.
MEM_OPS = frozenset({Opcode.LD, Opcode.ST, Opcode.FLD, Opcode.FST})
LOAD_OPS = frozenset({Opcode.LD, Opcode.FLD})
STORE_OPS = frozenset({Opcode.ST, Opcode.FST})

#: Opcodes legal only at elevated privilege.
PRIV_OPS = frozenset(
    {
        Opcode.MFPR,
        Opcode.MTPR,
        Opcode.TLBWR,
        Opcode.RETI,
        Opcode.HARDEXC,
        Opcode.MTDST,
    }
)

#: Opcodes whose destination is a floating-point register.
FP_DEST_OPS = frozenset(
    {
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FSQRT,
        Opcode.ITOF,
        Opcode.FLD,
    }
)

#: Opcodes whose ra source is a floating-point register.
FP_SRC_A_OPS = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT, Opcode.FTOI}
)

#: Opcodes whose rb source is a floating-point register.
FP_SRC_B_OPS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FST})


@dataclass(frozen=True)
class Instruction:
    """A static instruction as assembled into the text segment.

    ``target`` holds the *resolved* instruction index for direct control
    flow after assembly.  ``label`` preserves the symbolic name purely for
    disassembly and debugging.
    """

    op: Opcode
    rd: int | None = None
    ra: int | None = None
    rb: int | None = None
    imm: int | None = None
    target: int | None = None
    label: str | None = None
    #: True for PAL/handler code; checked against the thread's privilege.
    privileged: bool = field(default=False, compare=False)

    @property
    def fu_class(self) -> FUClass:
        """Functional-unit class this instruction executes on."""
        return OPCODE_FU[self.op]

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_cond_branch(self) -> bool:
        return self.op in COND_BRANCH_OPS

    @property
    def is_indirect(self) -> bool:
        return self.op in INDIRECT_OPS

    @property
    def is_mem(self) -> bool:
        return self.op in MEM_OPS

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.op in STORE_OPS

    @property
    def is_priv(self) -> bool:
        return self.op in PRIV_OPS

    def __str__(self) -> str:
        parts = [self.op.value]
        operands = []
        if self.rd is not None:
            prefix = "f" if self.op in FP_DEST_OPS else "r"
            operands.append(f"{prefix}{self.rd}")
        if self.ra is not None:
            prefix = "f" if self.op in FP_SRC_A_OPS else "r"
            operands.append(f"{prefix}{self.ra}")
        if self.rb is not None:
            prefix = "f" if self.op in FP_SRC_B_OPS else "r"
            operands.append(f"{prefix}{self.rb}")
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.label is not None:
            operands.append(self.label)
        elif self.target is not None:
            operands.append(f"@{self.target}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
