"""Static instructions: opcodes, functional-unit classes, operand record.

A :class:`Instruction` is the *static* form -- what the assembler emits and
what lives in the program's text segment.  The pipeline wraps each fetched
occurrence in a dynamic record (:class:`repro.pipeline.uop.Uop`).

Operand conventions (fields unused by an opcode are ``None``):

========  =======================================================
pattern   meaning
========  =======================================================
``rd``    destination register (int or FP space per opcode)
``ra``    first source register
``rb``    second source register (``None`` when ``imm`` is used)
``imm``   immediate operand / memory displacement
``target``  label name, resolved to an instruction index by the
          assembler (direct branches and calls)
========  =======================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.registers import pal_reg


class FUClass(enum.Enum):
    """Functional-unit class an opcode executes on (Table 1 of the paper)."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    FP_SQRT = "fp_sqrt"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NONE = "none"


class Opcode(enum.Enum):
    """Every operation in the ISA."""

    # Integer ALU (rb or imm as second operand).
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    CMPLT = "cmplt"  # signed less-than -> 0/1
    CMPULT = "cmpult"  # unsigned less-than -> 0/1
    CMPEQ = "cmpeq"
    MUL = "mul"
    DIV = "div"  # signed; divide-by-zero yields 0 (wrong-path safe)
    LI = "li"  # rd <- imm (assembler-level, executes on INT_ALU)

    # Memory (8-byte, naturally aligned; effective address ra + imm).
    LD = "ld"
    ST = "st"
    FLD = "fld"
    FST = "fst"

    # Control.  Conditional branches compare ra against rb (or r0).
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"  # direct unconditional
    CALL = "call"  # direct; writes return address to r30, pushes RAS
    CALLI = "calli"  # indirect call through ra; writes r30, pushes RAS
    RET = "ret"  # indirect jump through r30, pops RAS
    JMPI = "jmpi"  # indirect jump through ra (computed goto / switch)

    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    ITOF = "itof"  # rd(fp) <- float(ra(int))
    FTOI = "ftoi"  # rd(int) <- trunc(ra(fp))

    # Privileged / PAL (legal only in privileged mode).
    MFPR = "mfpr"  # rd <- priv[imm]
    MTPR = "mtpr"  # priv[imm] <- ra
    TLBWR = "tlbwr"  # install translation: va in ra, PTE in rb
    ITLBWR = "itlbwr"  # install *instruction* translation: va in ra, PTE in rb
    RETI = "reti"  # return from exception to the excepting instruction
    HARDEXC = "hardexc"  # request reversion to the traditional mechanism
    MTDST = "mtdst"  # write ra to the excepting instruction's destination

    # Software-emulated operation (Section 6): rd <- popcount(ra).
    # Raises an emulation exception; only the perfect machine (and the
    # handler) compute it directly.
    EMUL = "emul"

    # Additional restartable-exception causes (repro.scenarios).  Each
    # traps like EMUL and is completed by its own PAL handler via mtdst;
    # the perfect machine computes them directly.
    BREV = "brev"  # rd <- bswap64(ra); emulated-instruction trap
    SWINT = "swint"  # rd <- mix64(ra); software interrupt

    # Misc.
    NOP = "nop"
    HALT = "halt"


#: Opcode -> functional-unit class.
OPCODE_FU: dict[Opcode, FUClass] = {
    Opcode.ADD: FUClass.INT_ALU,
    Opcode.SUB: FUClass.INT_ALU,
    Opcode.AND: FUClass.INT_ALU,
    Opcode.OR: FUClass.INT_ALU,
    Opcode.XOR: FUClass.INT_ALU,
    Opcode.SLL: FUClass.INT_ALU,
    Opcode.SRL: FUClass.INT_ALU,
    Opcode.SRA: FUClass.INT_ALU,
    Opcode.CMPLT: FUClass.INT_ALU,
    Opcode.CMPULT: FUClass.INT_ALU,
    Opcode.CMPEQ: FUClass.INT_ALU,
    Opcode.LI: FUClass.INT_ALU,
    Opcode.MUL: FUClass.INT_MUL,
    Opcode.DIV: FUClass.INT_DIV,
    Opcode.LD: FUClass.LOAD,
    Opcode.FLD: FUClass.LOAD,
    Opcode.ST: FUClass.STORE,
    Opcode.FST: FUClass.STORE,
    Opcode.BEQ: FUClass.BRANCH,
    Opcode.BNE: FUClass.BRANCH,
    Opcode.BLT: FUClass.BRANCH,
    Opcode.BGE: FUClass.BRANCH,
    Opcode.JMP: FUClass.BRANCH,
    Opcode.CALL: FUClass.BRANCH,
    Opcode.CALLI: FUClass.BRANCH,
    Opcode.RET: FUClass.BRANCH,
    Opcode.JMPI: FUClass.BRANCH,
    Opcode.FADD: FUClass.FP_ADD,
    Opcode.FSUB: FUClass.FP_ADD,
    Opcode.FMUL: FUClass.FP_MUL,
    Opcode.FDIV: FUClass.FP_DIV,
    Opcode.FSQRT: FUClass.FP_SQRT,
    Opcode.ITOF: FUClass.FP_ADD,
    Opcode.FTOI: FUClass.FP_ADD,
    Opcode.MFPR: FUClass.INT_ALU,
    Opcode.MTPR: FUClass.INT_ALU,
    Opcode.TLBWR: FUClass.INT_ALU,
    Opcode.ITLBWR: FUClass.INT_ALU,
    Opcode.RETI: FUClass.BRANCH,
    Opcode.HARDEXC: FUClass.INT_ALU,
    Opcode.MTDST: FUClass.INT_ALU,
    Opcode.EMUL: FUClass.INT_ALU,
    Opcode.BREV: FUClass.INT_ALU,
    Opcode.SWINT: FUClass.INT_ALU,
    Opcode.NOP: FUClass.INT_ALU,
    Opcode.HALT: FUClass.INT_ALU,
}

#: Opcodes that end execution of conditional/unconditional control flow.
BRANCH_OPS = frozenset(
    {
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.JMP,
        Opcode.CALL,
        Opcode.CALLI,
        Opcode.RET,
        Opcode.JMPI,
        Opcode.RETI,
    }
)

#: Conditional subset of :data:`BRANCH_OPS`.
COND_BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})

#: Indirect control flow (the target comes from a register).
INDIRECT_OPS = frozenset({Opcode.CALLI, Opcode.RET, Opcode.JMPI, Opcode.RETI})

#: Memory operations.
MEM_OPS = frozenset({Opcode.LD, Opcode.ST, Opcode.FLD, Opcode.FST})
LOAD_OPS = frozenset({Opcode.LD, Opcode.FLD})
STORE_OPS = frozenset({Opcode.ST, Opcode.FST})

#: Opcodes legal only at elevated privilege.
PRIV_OPS = frozenset(
    {
        Opcode.MFPR,
        Opcode.MTPR,
        Opcode.TLBWR,
        Opcode.ITLBWR,
        Opcode.RETI,
        Opcode.HARDEXC,
        Opcode.MTDST,
    }
)

#: Opcodes whose destination is a floating-point register.
FP_DEST_OPS = frozenset(
    {
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FSQRT,
        Opcode.ITOF,
        Opcode.FLD,
    }
)

#: Opcodes whose ra source is a floating-point register.
FP_SRC_A_OPS = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT, Opcode.FTOI}
)

#: Opcodes whose rb source is a floating-point register.
FP_SRC_B_OPS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FST})


# ---------------------------------------------------------------------------
# Precomputed per-instruction metadata (the engine fast path).
#
# The pipeline resolves everything it can about an opcode *once*, when the
# static :class:`Instruction` is constructed, instead of consulting opcode
# dicts/frozensets on every fetch.  The tables below are the single source
# of truth; ``Instruction.__post_init__`` bakes them into plain attributes.
# ---------------------------------------------------------------------------

#: Source-operand kinds (``src_a_kind`` / ``src_b_kind`` / ``dest_kind``).
SRC_NONE = 0
SRC_INT = 1
SRC_FP = 2
SRC_IMM = 3

#: Source operand register spaces per opcode: (space_a, space_b) where a
#: space is "int", "fp", or None.  Immediates are bound when rb is absent.
SRC_SPACES: dict[Opcode, tuple[str | None, str | None]] = {
    Opcode.ADD: ("int", "int"),
    Opcode.SUB: ("int", "int"),
    Opcode.AND: ("int", "int"),
    Opcode.OR: ("int", "int"),
    Opcode.XOR: ("int", "int"),
    Opcode.SLL: ("int", "int"),
    Opcode.SRL: ("int", "int"),
    Opcode.SRA: ("int", "int"),
    Opcode.CMPLT: ("int", "int"),
    Opcode.CMPULT: ("int", "int"),
    Opcode.CMPEQ: ("int", "int"),
    Opcode.MUL: ("int", "int"),
    Opcode.DIV: ("int", "int"),
    Opcode.LI: (None, None),
    Opcode.LD: ("int", None),
    Opcode.FLD: ("int", None),
    Opcode.ST: ("int", "int"),
    Opcode.FST: ("int", "fp"),
    Opcode.BEQ: ("int", "int"),
    Opcode.BNE: ("int", "int"),
    Opcode.BLT: ("int", "int"),
    Opcode.BGE: ("int", "int"),
    Opcode.JMP: (None, None),
    Opcode.CALL: (None, None),
    Opcode.CALLI: ("int", None),
    Opcode.JMPI: ("int", None),
    Opcode.RET: ("int", None),
    Opcode.FADD: ("fp", "fp"),
    Opcode.FSUB: ("fp", "fp"),
    Opcode.FMUL: ("fp", "fp"),
    Opcode.FDIV: ("fp", "fp"),
    Opcode.FSQRT: ("fp", None),
    Opcode.ITOF: ("int", None),
    Opcode.FTOI: ("fp", None),
    Opcode.MFPR: (None, None),
    Opcode.MTPR: ("int", None),
    Opcode.TLBWR: ("int", "int"),
    Opcode.ITLBWR: ("int", "int"),
    Opcode.RETI: (None, None),
    Opcode.HARDEXC: (None, None),
    Opcode.MTDST: ("int", None),
    Opcode.EMUL: ("int", None),
    Opcode.BREV: ("int", None),
    Opcode.SWINT: ("int", None),
    Opcode.NOP: (None, None),
    Opcode.HALT: (None, None),
}

#: FU class -> (pool group, execution latency).  Load latency comes from
#: the memory hierarchy; store latency from the machine config; the
#: values here are unused for memory operations.
FU_GROUPS: dict[FUClass, tuple[str, int]] = {
    FUClass.INT_ALU: ("alu", 1),
    FUClass.BRANCH: ("alu", 1),
    FUClass.INT_MUL: ("muldiv", 3),
    FUClass.INT_DIV: ("muldiv", 12),
    FUClass.FP_ADD: ("fp", 2),
    FUClass.FP_MUL: ("fp", 4),
    FUClass.FP_DIV: ("fpdiv", 12),
    FUClass.FP_SQRT: ("fpdiv", 26),
    FUClass.LOAD: ("mem", 3),
    FUClass.STORE: ("mem", 2),
}

#: Execute-stage dispatch kinds (``Instruction.exec_kind``).  The issue
#: logic switches on these ints instead of walking an ``op is ...`` chain.
EK_INT_ALU = 0
EK_FP_ALU = 1
EK_CONVERT = 2
EK_MFPR = 3
EK_MTPR = 4
EK_TLBWR = 5
EK_EMUL = 6
EK_MTDST = 7
EK_HARDEXC = 8
EK_NOP = 9
EK_BRANCH = 10
EK_MEM = 11

INT_ALU_OPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.CMPLT, Opcode.CMPULT,
        Opcode.CMPEQ, Opcode.MUL, Opcode.DIV, Opcode.LI,
    }
)
FP_ALU_OPS = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT}
)


def _exec_kind(op: Opcode) -> int:
    if op in MEM_OPS:
        return EK_MEM
    if op in INT_ALU_OPS:
        return EK_INT_ALU
    if op in FP_ALU_OPS:
        return EK_FP_ALU
    if op in (Opcode.ITOF, Opcode.FTOI):
        return EK_CONVERT
    if op in BRANCH_OPS:
        return EK_BRANCH
    return {
        Opcode.MFPR: EK_MFPR,
        Opcode.MTPR: EK_MTPR,
        Opcode.TLBWR: EK_TLBWR,
        Opcode.ITLBWR: EK_TLBWR,
        Opcode.EMUL: EK_EMUL,
        Opcode.BREV: EK_EMUL,
        Opcode.SWINT: EK_EMUL,
        Opcode.MTDST: EK_MTDST,
        Opcode.HARDEXC: EK_HARDEXC,
    }.get(op, EK_NOP)


_EK_BY_OP: dict[Opcode, int] = {op: _exec_kind(op) for op in Opcode}


@dataclass(frozen=True)
class Instruction:
    """A static instruction as assembled into the text segment.

    ``target`` holds the *resolved* instruction index for direct control
    flow after assembly.  ``label`` preserves the symbolic name purely for
    disassembly and debugging.
    """

    op: Opcode
    rd: int | None = None
    ra: int | None = None
    rb: int | None = None
    imm: int | None = None
    target: int | None = None
    label: str | None = None
    #: True for PAL/handler code; checked against the thread's privilege.
    privileged: bool = field(default=False, compare=False)

    # __post_init__ precomputes hot-path metadata as plain instance
    # attributes (NOT dataclass fields, so eq/hash/repr are untouched):
    # fu_class, fu_group, fu_latency0, exec_kind, is_branch,
    # is_cond_branch, is_indirect, is_mem, is_load, is_store, is_priv,
    # src_a_kind/idx, src_b_kind/idx, imm0, dest_kind/idx.
    def __post_init__(self) -> None:
        op = self.op
        priv = self.privileged
        _set = object.__setattr__
        fu = OPCODE_FU[op]
        group, latency = FU_GROUPS[fu]
        _set(self, "fu_class", fu)
        _set(self, "fu_group", group)
        _set(self, "fu_latency0", latency)
        _set(self, "exec_kind", _EK_BY_OP[op])
        _set(self, "is_branch", op in BRANCH_OPS)
        _set(self, "is_cond_branch", op in COND_BRANCH_OPS)
        _set(self, "is_indirect", op in INDIRECT_OPS)
        _set(self, "is_mem", op in MEM_OPS)
        _set(self, "is_load", op in LOAD_OPS)
        _set(self, "is_store", op in STORE_OPS)
        _set(self, "is_priv", op in PRIV_OPS)
        _set(self, "imm0", self.imm if self.imm is not None else 0)

        # Rename-time operand metadata: register space plus the physical
        # index (PAL shadow bank already resolved for privileged code).
        space_a, space_b = SRC_SPACES[op]
        if space_a == "int" and self.ra is not None:
            _set(self, "src_a_kind", SRC_INT)
            _set(self, "src_a_idx", pal_reg(self.ra) if priv else self.ra)
        elif space_a == "fp" and self.ra is not None:
            _set(self, "src_a_kind", SRC_FP)
            _set(self, "src_a_idx", self.ra)
        else:
            _set(self, "src_a_kind", SRC_NONE)
            _set(self, "src_a_idx", 0)
        if space_b == "int":
            if self.rb is not None:
                _set(self, "src_b_kind", SRC_INT)
                _set(self, "src_b_idx", pal_reg(self.rb) if priv else self.rb)
            else:
                _set(self, "src_b_kind", SRC_IMM)
                _set(self, "src_b_idx", 0)
        elif space_b == "fp" and self.rb is not None:
            _set(self, "src_b_kind", SRC_FP)
            _set(self, "src_b_idx", self.rb)
        elif op is Opcode.LI:
            _set(self, "src_b_kind", SRC_IMM)
            _set(self, "src_b_idx", 0)
        else:
            _set(self, "src_b_kind", SRC_NONE)
            _set(self, "src_b_idx", 0)

        if self.rd is not None:
            if op in FP_DEST_OPS:
                _set(self, "dest_kind", SRC_FP)
                _set(self, "dest_idx", self.rd)
            else:
                _set(self, "dest_kind", SRC_INT)
                _set(self, "dest_idx", pal_reg(self.rd) if priv else self.rd)
        else:
            _set(self, "dest_kind", SRC_NONE)
            _set(self, "dest_idx", 0)

    def __str__(self) -> str:
        parts = [self.op.value]
        operands = []
        if self.rd is not None:
            prefix = "f" if self.op in FP_DEST_OPS else "r"
            operands.append(f"{prefix}{self.rd}")
        if self.ra is not None:
            prefix = "f" if self.op in FP_SRC_A_OPS else "r"
            operands.append(f"{prefix}{self.ra}")
        if self.rb is not None:
            prefix = "f" if self.op in FP_SRC_B_OPS else "r"
            operands.append(f"{prefix}{self.rb}")
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.label is not None:
            operands.append(self.label)
        elif self.target is not None:
            operands.append(f"@{self.target}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
