"""Program images: text segment, data segments, and entry point.

A :class:`Program` owns everything a simulated thread needs to run: the
assembled instruction list (indexed by PC -- one instruction per PC), the
label table, and the initial contents of data memory.  PAL (handler) code
is appended to the same text segment at :attr:`Program.pal_base`; the
instructions carry a ``privileged`` flag and the hardware transfers
control there on exceptions.

Memory is word-granular: all data is 8-byte words at 8-byte-aligned
virtual addresses.  :meth:`Program.build_memory_words` produces the
initial functional memory image consumed by
:class:`repro.memory.main_memory.MainMemory`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.isa.instructions import Instruction


@dataclass
class DataSegment:
    """Initialised data: ``words[i]`` lives at ``base + 8*i``.

    ``base`` must be 8-byte aligned.  Integer words are stored as unsigned
    64-bit values; floats are stored as Python floats (the functional
    memory keeps native Python values -- the timing model never looks at
    data, only addresses).
    """

    base: int
    words: Sequence[int | float]
    name: str = ""

    def __post_init__(self) -> None:
        if self.base % 8 != 0:
            raise ValueError(f"data segment base {self.base:#x} not 8-byte aligned")

    @property
    def size_bytes(self) -> int:
        return 8 * len(self.words)

    @property
    def end(self) -> int:
        """One past the last byte of the segment."""
        return self.base + self.size_bytes


@dataclass
class Program:
    """An executable image for the simulated machine."""

    insts: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data_segments: list[DataSegment] = field(default_factory=list)
    entry: int = 0
    #: First PC of PAL (privileged handler) code, or ``None`` if absent.
    pal_base: int | None = None
    #: Entry PCs of installed PAL handlers, keyed by handler name
    #: (e.g. ``"dtlb_miss"``).
    pal_entries: dict[str, int] = field(default_factory=dict)
    #: Uninitialised address ranges (base, size) the program will touch;
    #: the simulator maps their pages (contents read as zero).
    regions: list[tuple[int, int]] = field(default_factory=list)
    #: Ranges to pre-install in the L2 cache (checkpoint-warm data).
    warm_ranges: list[tuple[int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.insts)

    def fetch(self, pc: int) -> Instruction | None:
        """Return the instruction at ``pc``, or ``None`` past the end.

        Wrong-path fetch can run off the end of the text segment; callers
        treat ``None`` as an implicit stall until the misprediction is
        repaired.
        """
        if 0 <= pc < len(self.insts):
            return self.insts[pc]
        return None

    def label_of(self, pc: int) -> str | None:
        """Return a label naming ``pc`` if one exists (for diagnostics)."""
        for name, where in self.labels.items():
            if where == pc:
                return name
        return None

    def add_data(self, segment: DataSegment) -> DataSegment:
        """Attach a data segment, rejecting overlap with existing ones."""
        for existing in self.data_segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise ValueError(
                    f"data segment {segment.name!r} at "
                    f"[{segment.base:#x}, {segment.end:#x}) overlaps "
                    f"{existing.name!r} at [{existing.base:#x}, {existing.end:#x})"
                )
        self.data_segments.append(segment)
        return segment

    def add_region(self, base: int, size_bytes: int, name: str = "") -> None:
        """Declare an uninitialised data range (mapped, zero-filled)."""
        if base % 8 != 0:
            raise ValueError(f"region base {base:#x} not 8-byte aligned")
        self.regions.append((base, size_bytes))

    def append_text(
        self,
        insts: Iterable[Instruction],
        labels: dict[str, int] | None = None,
    ) -> int:
        """Append an assembled unit, rebasing its branch targets.

        Returns the base PC the unit was placed at.  Unit-relative label
        values are rebased into :attr:`labels`.
        """
        base = len(self.insts)
        for inst in insts:
            if inst.target is not None:
                inst = dataclasses.replace(inst, target=inst.target + base)
            self.insts.append(inst)
        if labels:
            for label, offset in labels.items():
                if label in self.labels:
                    raise ValueError(f"duplicate label {label!r}")
                self.labels[label] = base + offset
        return base

    def append_pal(
        self,
        insts: Iterable[Instruction],
        labels: dict[str, int] | None = None,
        name: str = "dtlb_miss",
    ) -> int:
        """Append privileged handler code to the text segment.

        Returns the handler's entry PC and records it in
        :attr:`pal_entries`.  ``labels`` are handler-local label offsets
        (relative to the handler's first instruction) and are rebased.
        """
        base = len(self.insts)
        if self.pal_base is None:
            self.pal_base = base
        for inst in insts:
            if inst.target is not None:
                inst = dataclasses.replace(inst, target=inst.target + base)
            self.insts.append(inst)
        if labels:
            for label, offset in labels.items():
                self.labels[f"pal_{name}_{label}"] = base + offset
        self.pal_entries[name] = base
        return base

    def build_memory_words(self) -> dict[int, int | float]:
        """Initial functional memory: word address (``va >> 3``) -> value."""
        image: dict[int, int | float] = {}
        for segment in self.data_segments:
            word_base = segment.base >> 3
            for offset, value in enumerate(segment.words):
                image[word_base + offset] = value
        return image

    def disassemble(self, start: int = 0, count: int | None = None) -> str:
        """Human-readable listing of ``count`` instructions from ``start``."""
        end = len(self.insts) if count is None else min(len(self.insts), start + count)
        lines = []
        for pc in range(start, end):
            label = self.label_of(pc)
            if label:
                lines.append(f"{label}:")
            priv = " [pal]" if self.insts[pc].privileged else ""
            lines.append(f"  {pc:5d}: {self.insts[pc]}{priv}")
        return "\n".join(lines)
