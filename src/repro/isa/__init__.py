"""A small Alpha-flavoured 64-bit RISC ISA.

This package provides the instruction set the simulated machine executes:

* :mod:`repro.isa.registers` -- logical register names and the
  architectural register file (integer, floating point, and privileged).
* :mod:`repro.isa.instructions` -- opcodes, functional-unit classes, and
  the :class:`~repro.isa.instructions.Instruction` static-instruction
  record.
* :mod:`repro.isa.semantics` -- pure functions giving each opcode its
  functional meaning (used by the pipeline's execute stage).
* :mod:`repro.isa.assembler` -- a two-pass textual assembler with labels.
* :mod:`repro.isa.program` -- the :class:`~repro.isa.program.Program`
  image: text segment, data segments, and entry point.

The ISA is deliberately simple (fixed operand fields, 8-byte memory
operations) but rich enough to express the paper's PAL-style TLB miss
handler and the eight synthetic workloads.
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import FUClass, Instruction, Opcode
from repro.isa.program import DataSegment, Program
from repro.isa.registers import (
    FP_REG_COUNT,
    INT_REG_COUNT,
    PrivReg,
    RegisterFile,
)

__all__ = [
    "AssemblerError",
    "assemble",
    "FUClass",
    "Instruction",
    "Opcode",
    "DataSegment",
    "Program",
    "FP_REG_COUNT",
    "INT_REG_COUNT",
    "PrivReg",
    "RegisterFile",
]
