"""A two-pass textual assembler for the repro ISA.

Syntax (one instruction or label per line; ``;`` and ``#`` start comments)::

    start:
        li    r1, 64
        li    r2, 0
    loop:
        ld    r3, 0(r4)        ; displacement(base) addressing
        add   r2, r2, r3
        add   r4, r4, 8        ; immediate second operand auto-detected
        sub   r1, r1, 1
        bne   r1, r0, loop
        call  helper
        halt

Register names: ``r0``-``r31``, ``f0``-``f31``, and the aliases ``zero``
(r0), ``sp`` (r29), ``lr`` (r30).  Privileged register names (``VA``,
``PTBR``, ``EXC_PC``, ``PS``, ``SCRATCH``) appear as the operand of
``mfpr``/``mtpr``.

Pass 1 collects label positions, pass 2 emits
:class:`~repro.isa.instructions.Instruction` records with resolved targets.
"""

from __future__ import annotations

import re

from repro.isa.instructions import (
    FP_DEST_OPS,
    Instruction,
    Opcode,
)
from repro.isa.registers import PrivReg, RA_REG, SP_REG

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\((\w+)\)$")

_REG_ALIASES = {"zero": 0, "sp": SP_REG, "lr": RA_REG}

_PRIV_NAMES = {reg.name: int(reg) for reg in PrivReg}

_OPCODES_BY_NAME = {op.value: op for op in Opcode}


class AssemblerError(ValueError):
    """Raised for any syntax or semantic error, with the offending line."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


def _parse_reg(token: str, space: str) -> int:
    """Parse a register token; ``space`` is ``"int"`` or ``"fp"``."""
    token = token.lower()
    if space == "int" and token in _REG_ALIASES:
        return _REG_ALIASES[token]
    prefix = "f" if space == "fp" else "r"
    if token.startswith(prefix) and token[1:].isdigit():
        idx = int(token[1:])
        if 0 <= idx < 32:
            return idx
    raise ValueError(f"bad {space} register {token!r}")


def _parse_imm(token: str) -> int:
    return int(token, 0)


def _split_operands(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def assemble(
    text: str,
    privileged: bool = False,
    extern_labels: dict[str, int] | None = None,
) -> tuple[list[Instruction], dict[str, int]]:
    """Assemble ``text`` into instructions plus a label table.

    ``extern_labels`` resolves branch targets defined outside this unit
    (labels defined locally shadow them).  When ``privileged`` is true
    every emitted instruction carries the PAL privilege flag.

    Returns ``(instructions, labels)`` where label values are instruction
    indices relative to the start of this unit.
    """
    raw_lines = text.splitlines()
    labels: dict[str, int] = {}
    parsed: list[tuple[int, str, str, list[str]]] = []

    # Pass 1: strip comments, record labels, tokenize.
    for line_no, raw in enumerate(raw_lines, start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            name = match.group(1)
            if name in labels:
                raise AssemblerError(f"duplicate label {name!r}", line_no, raw)
            labels[name] = len(parsed)
            continue
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        if mnemonic not in _OPCODES_BY_NAME:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no, raw)
        parsed.append((line_no, raw, mnemonic, _split_operands(rest)))

    def resolve(label: str, line_no: int, raw: str) -> int:
        if label in labels:
            return labels[label]
        if extern_labels and label in extern_labels:
            return extern_labels[label]
        raise AssemblerError(f"undefined label {label!r}", line_no, raw)

    # Pass 2: emit instructions.
    insts: list[Instruction] = []
    for line_no, raw, mnemonic, ops in parsed:
        op = _OPCODES_BY_NAME[mnemonic]
        try:
            inst = _emit(op, ops, lambda lbl: resolve(lbl, line_no, raw), privileged)
        except AssemblerError:
            raise
        except ValueError as exc:
            raise AssemblerError(str(exc), line_no, raw) from exc
        insts.append(inst)
    return insts, labels


def _reg_or_imm(token: str):
    """Classify an ALU second operand as register or immediate."""
    try:
        return ("reg", _parse_reg(token, "int"))
    except ValueError:
        return ("imm", _parse_imm(token))


def _emit(op: Opcode, ops: list[str], resolve, privileged: bool) -> Instruction:
    """Emit one instruction; ``resolve`` maps a label name to a PC."""
    kwargs: dict = {"privileged": privileged}

    def need(count: int) -> None:
        if len(ops) != count:
            raise ValueError(f"{op.value} expects {count} operand(s), got {len(ops)}")

    three_op_alu = {
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.CMPLT, Opcode.CMPULT,
        Opcode.CMPEQ, Opcode.MUL, Opcode.DIV,
    }
    if op in three_op_alu:
        need(3)
        kind, value = _reg_or_imm(ops[2])
        kwargs.update(rd=_parse_reg(ops[0], "int"), ra=_parse_reg(ops[1], "int"))
        kwargs["rb" if kind == "reg" else "imm"] = value
    elif op is Opcode.LI:
        need(2)
        kwargs.update(rd=_parse_reg(ops[0], "int"), imm=_parse_imm(ops[1]))
    elif op in (Opcode.LD, Opcode.ST, Opcode.FLD, Opcode.FST):
        need(2)
        match = _MEM_OPERAND_RE.match(ops[1].replace(" ", ""))
        if not match:
            raise ValueError(f"bad memory operand {ops[1]!r}")
        disp, base = match.groups()
        data_space = "fp" if op in (Opcode.FLD, Opcode.FST) else "int"
        data_reg = _parse_reg(ops[0], data_space)
        kwargs.update(ra=_parse_reg(base, "int"), imm=_parse_imm(disp))
        if op in (Opcode.LD, Opcode.FLD):
            kwargs["rd"] = data_reg
        else:
            kwargs["rb"] = data_reg
    elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        need(3)
        kwargs.update(
            ra=_parse_reg(ops[0], "int"),
            rb=_parse_reg(ops[1], "int"),
            target=resolve(ops[2]),
            label=ops[2],
        )
    elif op in (Opcode.JMP, Opcode.CALL):
        need(1)
        kwargs.update(target=resolve(ops[0]), label=ops[0])
        if op is Opcode.CALL:
            kwargs["rd"] = RA_REG
    elif op in (Opcode.CALLI, Opcode.JMPI):
        need(1)
        kwargs["ra"] = _parse_reg(ops[0], "int")
        if op is Opcode.CALLI:
            kwargs["rd"] = RA_REG
    elif op is Opcode.RET:
        need(0)
        kwargs["ra"] = RA_REG
    elif op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
        need(3)
        kwargs.update(
            rd=_parse_reg(ops[0], "fp"),
            ra=_parse_reg(ops[1], "fp"),
            rb=_parse_reg(ops[2], "fp"),
        )
    elif op is Opcode.FSQRT:
        need(2)
        kwargs.update(rd=_parse_reg(ops[0], "fp"), ra=_parse_reg(ops[1], "fp"))
    elif op is Opcode.ITOF:
        need(2)
        kwargs.update(rd=_parse_reg(ops[0], "fp"), ra=_parse_reg(ops[1], "int"))
    elif op is Opcode.FTOI:
        need(2)
        kwargs.update(rd=_parse_reg(ops[0], "int"), ra=_parse_reg(ops[1], "fp"))
    elif op is Opcode.MFPR:
        need(2)
        if ops[1].upper() not in _PRIV_NAMES:
            raise ValueError(f"unknown privileged register {ops[1]!r}")
        kwargs.update(rd=_parse_reg(ops[0], "int"), imm=_PRIV_NAMES[ops[1].upper()])
    elif op is Opcode.MTPR:
        need(2)
        if ops[0].upper() not in _PRIV_NAMES:
            raise ValueError(f"unknown privileged register {ops[0]!r}")
        kwargs.update(imm=_PRIV_NAMES[ops[0].upper()], ra=_parse_reg(ops[1], "int"))
    elif op in (Opcode.TLBWR, Opcode.ITLBWR):
        need(2)
        kwargs.update(ra=_parse_reg(ops[0], "int"), rb=_parse_reg(ops[1], "int"))
    elif op is Opcode.MTDST:
        need(1)
        kwargs["ra"] = _parse_reg(ops[0], "int")
    elif op in (Opcode.EMUL, Opcode.BREV, Opcode.SWINT):
        need(2)
        kwargs.update(rd=_parse_reg(ops[0], "int"), ra=_parse_reg(ops[1], "int"))
    elif op in (Opcode.RETI, Opcode.HARDEXC, Opcode.NOP, Opcode.HALT):
        need(0)
    else:  # pragma: no cover - every opcode is handled above
        raise ValueError(f"unhandled opcode {op}")

    if op in PRIV_REQUIRED and not privileged:
        raise ValueError(f"{op.value} is a privileged instruction")
    if kwargs.get("rd") is not None and op in FP_DEST_OPS:
        pass  # FP destination indices share the 0-31 range; nothing to adjust.
    return Instruction(op=op, **kwargs)


#: Opcodes the assembler refuses to emit outside privileged units.
PRIV_REQUIRED = frozenset(
    {
        Opcode.MFPR,
        Opcode.MTPR,
        Opcode.TLBWR,
        Opcode.ITLBWR,
        Opcode.RETI,
        Opcode.HARDEXC,
        Opcode.MTDST,
    }
)
