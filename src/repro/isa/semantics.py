"""Functional semantics of each opcode.

These are *pure* helpers used by the pipeline's execute stage.  They take
already-read operand values and return result values; they never touch
memory or machine state themselves, which keeps wrong-path execution safe:
a speculative instruction fed garbage operands still produces a
well-defined (if meaningless) value instead of crashing the simulator.
"""

from __future__ import annotations

import math

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import to_signed, to_unsigned

_INT_MASK = (1 << 64) - 1


def compute_int(inst: Instruction, a: int, b: int) -> int:
    """Evaluate an integer ALU/mul/div opcode.

    ``a`` and ``b`` are the unsigned-64 source values (``b`` is the
    immediate when the instruction has no ``rb``).  Division by zero and
    shift amounts are clamped so wrong-path execution never raises.
    """
    op = inst.op
    if op is Opcode.ADD:
        return (a + b) & _INT_MASK
    if op is Opcode.SUB:
        return (a - b) & _INT_MASK
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.SLL:
        return (a << (b & 63)) & _INT_MASK
    if op is Opcode.SRL:
        return (a & _INT_MASK) >> (b & 63)
    if op is Opcode.SRA:
        return to_unsigned(to_signed(a) >> (b & 63))
    if op is Opcode.CMPLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op is Opcode.CMPULT:
        return 1 if (a & _INT_MASK) < (b & _INT_MASK) else 0
    if op is Opcode.CMPEQ:
        return 1 if (a & _INT_MASK) == (b & _INT_MASK) else 0
    if op is Opcode.MUL:
        return (a * b) & _INT_MASK
    if op is Opcode.DIV:
        sb = to_signed(b)
        if sb == 0:
            return 0
        sa = to_signed(a)
        # Truncating division, like hardware.
        return to_unsigned(int(sa / sb))
    if op is Opcode.LI:
        return to_unsigned(b)
    if op is Opcode.EMUL:
        return popcount(a)
    if op is Opcode.BREV:
        return bswap64(a)
    if op is Opcode.SWINT:
        return mix64(a)
    raise ValueError(f"not an integer compute opcode: {op}")


def popcount(value: int) -> int:
    """Bit count of an unsigned 64-bit value (the ``emul`` operation)."""
    return bin(value & _INT_MASK).count("1")


def bswap64(value: int) -> int:
    """Byte-swap of an unsigned 64-bit value (the ``brev`` operation)."""
    v = value & _INT_MASK
    v = ((v & 0x00FF00FF00FF00FF) << 8) | ((v >> 8) & 0x00FF00FF00FF00FF)
    v = ((v & 0x0000FFFF0000FFFF) << 16) | ((v >> 16) & 0x0000FFFF0000FFFF)
    return ((v & 0x00000000FFFFFFFF) << 32) | (v >> 32)


def mix64(value: int) -> int:
    """Splitmix-style finalizer (the ``swint`` software-interrupt service):
    multiply by the golden-ratio constant, then xor-fold the high bits."""
    x = (value * 0x9E3779B97F4A7C15) & _INT_MASK
    return x ^ (x >> 29)


def compute_fp(inst: Instruction, a: float, b: float) -> float:
    """Evaluate a floating-point opcode on operand values ``a`` and ``b``.

    Undefined inputs (negative sqrt, divide by zero) are clamped to 0.0 so
    wrong-path execution is total.
    """
    op = inst.op
    if op is Opcode.FADD:
        return a + b
    if op is Opcode.FSUB:
        return a - b
    if op is Opcode.FMUL:
        return a * b
    if op is Opcode.FDIV:
        return a / b if b != 0.0 else 0.0
    if op is Opcode.FSQRT:
        return math.sqrt(a) if a >= 0.0 else 0.0
    raise ValueError(f"not an FP compute opcode: {op}")


def convert(inst: Instruction, a: int | float) -> int | float:
    """Evaluate a conversion opcode (``itof``/``ftoi``)."""
    if inst.op is Opcode.ITOF:
        return float(to_signed(int(a)))
    if inst.op is Opcode.FTOI:
        value = float(a)
        if math.isnan(value) or math.isinf(value):
            return 0
        return to_unsigned(int(value))
    raise ValueError(f"not a conversion opcode: {inst.op}")


def effective_address(inst: Instruction, base: int) -> int:
    """Effective address of a memory instruction: ``base + imm``."""
    return (base + (inst.imm or 0)) & _INT_MASK


def branch_taken(inst: Instruction, a: int, b: int) -> bool:
    """Resolve a conditional branch's direction from its operand values."""
    op = inst.op
    if op is Opcode.BEQ:
        return a == b
    if op is Opcode.BNE:
        return a != b
    if op is Opcode.BLT:
        return to_signed(a) < to_signed(b)
    if op is Opcode.BGE:
        return to_signed(a) >= to_signed(b)
    raise ValueError(f"not a conditional branch: {op}")
