"""``gcc`` stand-in: branchy traversal with speculative wrong-path loads.

The paper's gcc is its most interesting data point: hard-to-predict
branches send the machine down wrong paths whose *speculative loads miss
the TLB*.  With a hardware walker those wrong-path misses are serviced
and pollute the TLB and caches; with a perfect TLB the speculative loads
go straight to the caches and pollute *them*; the software mechanisms'
speculative fills are rolled back at the squash.  That asymmetry is why
gcc is the one benchmark where the multithreaded handler beats the
hardware walker (Figure 5).

The kernel chases an IR-like pointer ring and branches on a
payload-parity condition that is essentially random to YAGS.  The
rarely-executed-but-often-misfetched side of the branch loads from a
*far, cold* region, so wrong paths issue loads to pages the correct
path never touches.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.builder import DEFAULT_BASE, make_program, pointer_ring

NODE_WORDS = 4
RING_PAGES = 40
NODE_COUNT = RING_PAGES * 8192 // (NODE_WORDS * 8)
#: Two symbol/rtx pools, one per branch side: wrong paths speculatively
#: load from the pool the correct path was not going to touch.  A power
#: of two, so offset masking is exact.
POOL_PAGES = 32
POOL_BYTES = POOL_PAGES * 8192


def build(base: int = DEFAULT_BASE) -> Program:
    """Build the gcc stand-in in the address slice at ``base``."""
    ring_base = base
    pool_a = base + NODE_COUNT * NODE_WORDS * 8
    pool_b = pool_a + POOL_BYTES

    source = f"""
main:
    li    r1, {ring_base}
    li    r7, {pool_a}
    li    r9, {pool_b}
    li    r8, {POOL_BYTES - 8}
    li    r16, 0
    li    r17, 0
loop:
    ld    r2, 0(r1)           ; next IR node (dependent load)
    ld    r3, 8(r1)           ; node payload
    and   r5, r3, r8          ; pool-A offset: ready *early*
    and   r5, r5, -8
    add   r5, r7, r5
    srl   r6, r3, 16          ; pool-B offset: also ready early
    and   r6, r6, r8
    and   r6, r6, -8
    add   r6, r9, r6
    mul   r4, r3, 2654435761  ; slow condition: branch resolves *after*
    srl   r4, r4, 63          ; the wrong-path load already issued
    bne   r4, r0, rtx_path
sym_path:
    ld    r10, 0(r5)          ; symbol-pool load
    add   r16, r16, r10
    or    r1, r2, r0
    jmp   loop
rtx_path:
    ld    r11, 0(r6)          ; rtx-pool load
    xor   r17, r17, r11
    or    r1, r2, r0
    jmp   loop
"""
    program = make_program(
        source,
        segments=[pointer_ring(ring_base, NODE_COUNT, NODE_WORDS)],
        regions=[(pool_a, POOL_BYTES), (pool_b, POOL_BYTES)],
    )
    return program
