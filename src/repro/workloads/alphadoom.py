"""``alphadoom`` stand-in: column rendering driven by level geometry.

Doom's renderer walks level data (BSP nodes, seg/linedef records --
spread across the map's memory) to decide what each screen column shows,
then draws the column from hot texture tables into the framebuffer.
Table 2 gives alphadoom the *lowest* TLB miss count of the suite and
Table 4 a high base IPC (4.3).

The kernel reproduces that structure: one geometry record read per
column (a random page in a multi-hundred-KB level image -- the only TLB
pressure), whose value determines the column's texture and framebuffer
placement (so the column's pixel work *depends* on the geometry read),
while the framebuffer and textures themselves stay TLB- and
cache-resident.  Successive columns' geometry reads are independent, so
a dynamically scheduled machine overlaps them -- unless a trap squashes
them, which is exactly the effect the paper measures.
"""

from __future__ import annotations

from repro.isa.program import DataSegment, Program
from repro.workloads.builder import DEFAULT_BASE, LCG_ADD, LCG_MUL, make_program

LEVEL_PAGES = 72  # 576 KB of level geometry: the TLB-pressure region
LEVEL_WORDS = LEVEL_PAGES * 1024
FB_PAGES = 24  # 192 KB framebuffer: TLB/cache resident
FB_BYTES = FB_PAGES * 8192
TEXTURE_WORDS = 2048  # 16 KB hot texture
COLUMN_PIXELS = 4


def build(base: int = DEFAULT_BASE) -> Program:
    """Build the alphadoom stand-in in the address slice at ``base``."""
    level_base = base
    fb_base = base + LEVEL_WORDS * 8
    tex_base = fb_base + FB_BYTES

    source = f"""
main:
    li    r1, {level_base}
    li    r2, {fb_base}
    li    r7, {tex_base}
    li    r10, 20177
    li    r20, {LCG_MUL}
    li    r21, {LCG_ADD}
    li    r22, {LEVEL_WORDS}
    li    r16, 1
column:
    mul   r10, r10, r20       ; next BSP lookup
    add   r10, r10, r21
    srl   r11, r10, 32
    mul   r12, r11, r22
    srl   r12, r12, 32
    sll   r12, r12, 3
    add   r12, r1, r12        ; &geometry record
    ld    r13, 0(r12)         ; geometry read: the TLB-pressure access
    and   r14, r13, {FB_BYTES - 8}
    and   r14, r14, -8
    add   r4, r2, r14         ; framebuffer column base (from geometry)
    and   r15, r13, 2046
    li    r3, 0               ; pixel row counter
pixel:
    sll   r5, r15, 3
    add   r5, r7, r5
    ld    r6, 0(r5)           ; texture lookup (hot)
    mul   r8, r6, r16
    srl   r8, r8, 7           ; shading math
    add   r8, r8, r3
    st    r8, 0(r4)           ; pixel write
    add   r4, r4, 64          ; next row (framebuffer stays resident)
    add   r15, r15, 1
    and   r15, r15, 2046
    add   r16, r16, r6        ; lighting state (loop-carried)
    add   r3, r3, 1
    li    r9, {COLUMN_PIXELS}
    blt   r3, r9, pixel
    add   r16, r16, r13       ; column state consumes the geometry value
    jmp   column
"""
    return make_program(
        source,
        segments=[
            DataSegment(
                base=tex_base,
                words=[(i * 2654435761) & 0xFFFF for i in range(TEXTURE_WORDS)],
                name="texture",
            )
        ],
        regions=[(level_base, LEVEL_WORDS * 8), (fb_base, FB_BYTES)],
    )
