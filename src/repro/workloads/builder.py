"""Program-construction helpers shared by the benchmark kernels.

Every workload program is laid out identically:

* PC 0: the PAL DTLB miss handler (:mod:`repro.exceptions.handler_code`)
  -- giving all programs the same "kernel" instruction addresses, like a
  shared OS image;
* user code after it, entered at the ``main`` label;
* data segments / reserved regions in the thread's address-space slice.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions.handler_code import install_handlers
from repro.isa.assembler import assemble
from repro.isa.program import DataSegment, Program

#: Default base of a single program's data slice.
DEFAULT_BASE = 0x1000_0000

#: Spacing between address-space slices for SMT mixes: far larger than
#: any workload footprint, so co-scheduled threads never share pages.
SLICE_STRIDE = 1 << 32

LCG_MUL = 6364136223846793005
LCG_ADD = 1442695040888963407
_MASK = (1 << 64) - 1


def make_program(
    source: str,
    segments: Sequence[DataSegment] = (),
    regions: Sequence[tuple[int, int]] = (),
    entry_label: str = "main",
    cold_regions: Sequence[tuple[int, int]] = (),
    scenario_causes: bool = False,
) -> Program:
    """Assemble a user kernel into a runnable program with PAL installed.

    ``segments`` and ``regions`` are treated as checkpoint-warm (the
    simulator pre-installs them in L2); ``cold_regions`` are mapped but
    start cache-cold (e.g. gcc's wrong-path-only far region).
    ``scenario_causes`` additionally installs the repro.scenarios cause
    handlers (itlb_miss/unaligned/brev/swint); the default PAL image is
    byte-identical to the seed layout.
    """
    program = Program()
    install_handlers(program, scenario_causes=scenario_causes)
    insts, labels = assemble(source)
    base = program.append_text(insts, labels)
    program.entry = program.labels.get(entry_label, base)
    for segment in segments:
        program.add_data(segment)
        program.warm_ranges.append((segment.base, segment.size_bytes))
    for region_base, size in regions:
        program.add_region(region_base, size)
        program.warm_ranges.append((region_base, size))
    for region_base, size in cold_regions:
        program.add_region(region_base, size)
    return program


def lcg_next(state: int) -> int:
    """One step of the 64-bit LCG the kernels also compute in registers."""
    return (state * LCG_MUL + LCG_ADD) & _MASK


def lcg_stream(seed: int, count: int) -> list[int]:
    """``count`` successive LCG values starting from ``seed``."""
    values = []
    state = seed & _MASK
    for _ in range(count):
        state = lcg_next(state)
        values.append(state)
    return values


def pointer_ring(
    base: int,
    node_count: int,
    node_words: int,
    seed: int = 0x9E3779B97F4A7C15,
) -> DataSegment:
    """A random-permutation pointer ring for dependent-load chasing.

    Node ``i`` occupies ``node_words`` 8-byte words at
    ``base + i * node_words * 8``; word 0 holds the address of the next
    node in a single random cycle over all nodes, so a chase visits every
    node before repeating, with no exploitable locality.
    """
    order = list(range(node_count))
    # Fisher-Yates with the deterministic LCG (no wall-clock randomness).
    state = seed & _MASK
    for i in range(node_count - 1, 0, -1):
        state = lcg_next(state)
        j = (state >> 33) % (i + 1)
        order[i], order[j] = order[j], order[i]
    words = [0] * (node_count * node_words)
    for idx in range(node_count):
        src = order[idx]
        dst = order[(idx + 1) % node_count]
        words[src * node_words] = base + dst * node_words * 8
        if node_words > 1:
            # A payload word the kernel can read/update.
            words[src * node_words + 1] = (src * 2654435761) & _MASK
    return DataSegment(base=base, words=words, name="pointer_ring")


def jump_table(base: int, targets: Sequence[int]) -> DataSegment:
    """A table of code addresses for indirect-branch kernels."""
    return DataSegment(base=base, words=list(targets), name="jump_table")
