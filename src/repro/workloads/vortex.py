"""``vortex`` stand-in: random record lookups in an object database.

SpecInt 95 ``vortex`` is a single-user OO transactional database with
the second-highest TLB miss count in Table 2 and the highest base IPC
(4.9): lookups land on random records (new page, TLB pressure) but the
fields *within* a record are co-located, and successive transactions are
independent, so the machine extracts lots of ILP.  The kernel runs two
interleaved, independent transaction streams, each picking a random
record in a multi-megabyte store, reading three fields, and writing one
back.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.builder import DEFAULT_BASE, LCG_ADD, LCG_MUL, make_program

DB_PAGES = 88  # 704 KB record store
RECORD_WORDS = 8  # 64-byte records
RECORD_COUNT = DB_PAGES * 1024 // RECORD_WORDS


def build(base: int = DEFAULT_BASE) -> Program:
    """Build the vortex stand-in in the address slice at ``base``."""
    db_base = base

    source = f"""
main:
    li    r1, {db_base}
    li    r10, 424242424242
    li    r11, 171717171717
    li    r20, {LCG_MUL}
    li    r21, {LCG_ADD}
    li    r22, {RECORD_COUNT}
    li    r16, 0
    li    r17, 0
loop:
    ; --- transaction stream A ---
    mul   r10, r10, r20
    add   r10, r10, r21
    srl   r2, r10, 32
    mul   r2, r2, r22
    srl   r2, r2, 32          ; record index
    sll   r2, r2, 6           ; * 64-byte records
    add   r2, r1, r2
    ld    r3, 0(r2)           ; field reads: same page, independent
    ld    r4, 8(r2)
    ld    r5, 16(r2)
    and   r14, r3, 24
    add   r14, r2, r14
    ld    r15, 0(r14)         ; indexed sub-field: depends on field 0
    add   r6, r3, r4
    add   r6, r6, r5
    add   r6, r6, r15
    st    r6, 24(r2)          ; field update
    xor   r10, r10, r3        ; the next lookup key comes from this
                              ; record (index traversal is serial)
    add   r16, r16, r6
    ; --- transaction stream B (independent: ILP across streams) ---
    mul   r11, r11, r20
    add   r11, r11, r21
    srl   r7, r11, 32
    mul   r7, r7, r22
    srl   r7, r7, 32
    sll   r7, r7, 6
    add   r7, r1, r7
    ld    r8, 0(r7)
    ld    r9, 8(r7)
    ld    r12, 16(r7)
    add   r13, r8, r9
    add   r13, r13, r12
    st    r13, 24(r7)
    xor   r11, r11, r8        ; stream B is serial in the same way
    add   r17, r17, r13
    jmp   loop
"""
    return make_program(source, regions=[(db_base, DB_PAGES * 8192)])
