"""``compress`` stand-in: adaptive Lempel-Ziv hash-table pressure.

SPEC95 ``compress`` builds an adaptive code dictionary with hashed
probes over a multi-megabyte table; it has by far the highest data-TLB
miss count in the paper's Table 2 (230 k per 100 M instructions).  The
kernel reproduces that: every iteration computes an LCG hash in
registers, probes a hash table spanning well beyond the 64-entry TLB's
reach (read-modify-write), and touches a small hot dictionary that stays
cache- and TLB-resident.
"""

from __future__ import annotations

from repro.isa.program import DataSegment, Program
from repro.workloads.builder import (
    DEFAULT_BASE,
    LCG_ADD,
    LCG_MUL,
    make_program,
)

#: Hash-table span in 8 KB pages.  > 64 so random probes miss the TLB.
TABLE_PAGES = 88
TABLE_WORDS = TABLE_PAGES * 1024
DICT_WORDS = 1024  # 8 KB: one hot page


def build(base: int = DEFAULT_BASE) -> Program:
    """Build the compress kernel in the address slice at ``base``."""
    table_base = base
    dict_base = base + TABLE_WORDS * 8

    source = f"""
main:
    li    r1, {table_base}
    li    r7, {dict_base}
    li    r10, 88172645463325252
    li    r11, 362436069363
    li    r20, {LCG_MUL}
    li    r21, {LCG_ADD}
    li    r22, {TABLE_WORDS}
    li    r16, 0
loop:
    ; --- hash chain A: the next code depends on the probed entry ---
    mul   r10, r10, r20
    add   r10, r10, r21
    srl   r2, r10, 32         ; 32-bit hash
    mul   r2, r2, r22
    srl   r2, r2, 32          ; scale into [0, TABLE_WORDS)
    sll   r2, r2, 3
    add   r2, r1, r2          ; &table[hash]
    ld    r3, 0(r2)           ; probe (random page: TLB pressure)
    xor   r10, r10, r3        ; adaptive: loop-carried through memory
    and   r4, r3, 1
    bne   r4, r0, hit_a       ; collision check: depends on the probe
    add   r3, r3, 1
    st    r3, 0(r2)           ; insert new code
hit_a:
    ; --- hash chain B: an independent stream (string table build) ---
    mul   r11, r11, r20
    add   r11, r11, r21
    srl   r5, r11, 32
    mul   r5, r5, r22
    srl   r5, r5, 32
    sll   r5, r5, 3
    add   r5, r1, r5
    ld    r6, 0(r5)
    xor   r11, r11, r6        ; chain B is serial in the same way
    ; --- hot dictionary work ---
    and   r8, r10, 1022
    sll   r8, r8, 3
    add   r8, r7, r8
    ld    r9, 0(r8)           ; hot dictionary access
    add   r16, r16, r9
    add   r17, r16, r3
    xor   r17, r17, r6
    jmp   loop
"""
    program = make_program(
        source,
        segments=[DataSegment(base=dict_base, words=[1] * DICT_WORDS, name="dict")],
        regions=[(table_base, TABLE_WORDS * 8)],
    )
    return program
