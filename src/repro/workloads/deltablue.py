"""``deltablue`` stand-in: pointer-chasing with virtual dispatch.

DeltaBlue is a C++ incremental dataflow constraint solver (the paper
takes it from the Driesen/Hölzle virtual-call study): traversals walk
linked constraint graphs and dispatch through vtables.  The kernel
chases a random-permutation pointer ring whose footprint modestly
exceeds the TLB reach (dependent loads: low ILP around each miss, base
IPC 2.2 in Table 4) and makes an indirect call per node, selected by
node payload -- exercising the cascaded indirect predictor.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.builder import (
    DEFAULT_BASE,
    jump_table,
    make_program,
    pointer_ring,
)

NODE_WORDS = 4  # 32-byte constraint nodes
RING_PAGES = 72
NODE_COUNT = RING_PAGES * 8192 // (NODE_WORDS * 8)


def build(base: int = DEFAULT_BASE) -> Program:
    """Build the deltablue stand-in in the address slice at ``base``."""
    ring_base = base
    table_base = base + NODE_COUNT * NODE_WORDS * 8

    chase_b_start = ring_base + (NODE_COUNT // 2) * NODE_WORDS * 8
    source = f"""
main:
    li    r1, {ring_base}     ; constraint walk A
    li    r2, {chase_b_start} ; constraint walk B (independent plan)
    li    r7, {table_base}    ; method table
    li    r16, 0
    li    r17, 0
loop:
    ld    r3, 0(r1)           ; A: next-constraint pointer (dependent)
    ld    r4, 8(r1)           ; A: payload
    ld    r5, 0(r2)           ; B: next-constraint pointer (independent of A)
    ld    r6, 8(r2)           ; B: payload
    and   r8, r4, 3           ; A: constraint kind
    sll   r8, r8, 3
    add   r8, r7, r8
    ld    r9, 0(r8)           ; vtable slot
    calli r9                  ; virtual dispatch
    add   r16, r16, r4
    xor   r17, r17, r6
    add   r17, r17, 3
    or    r1, r3, r0          ; advance walk A
    or    r2, r5, r0          ; advance walk B
    jmp   loop

method0:
    add   r16, r16, 1
    ret
method1:
    xor   r16, r16, r4
    sub   r16, r16, 1
    ret
method2:
    sll   r10, r4, 1
    add   r16, r16, r10
    ret
method3:
    srl   r10, r4, 2
    xor   r16, r16, r10
    add   r16, r16, 2
    ret
"""
    program = make_program(
        source,
        segments=[pointer_ring(ring_base, NODE_COUNT, NODE_WORDS)],
    )
    targets = [
        program.labels["method0"],
        program.labels["method1"],
        program.labels["method2"],
        program.labels["method3"],
    ]
    program.add_data(jump_table(table_base, targets))
    return program
