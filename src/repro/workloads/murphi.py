"""``murphi`` stand-in: state-space exploration (hash & expand).

Murphi is a finite-state-space verifier: generate a successor state,
hash it into a large visited table, and append unseen states to a work
queue.  Table 2 ranks it third for TLB misses; Table 4 gives it a high
base IPC (3.9, integer-heavy with predictable control).  The kernel
hashes LCG-generated states into a visited table that overflows the TLB
reach and appends to a sequential (TLB-friendly) work queue; the
seen/unseen branch is data-dependent but skewed.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.builder import DEFAULT_BASE, LCG_ADD, LCG_MUL, make_program

VISITED_PAGES = 76  # 608 KB visited-state table
VISITED_WORDS = VISITED_PAGES * 1024
QUEUE_PAGES = 16  # 128 KB work queue (sequential, TLB/L2 friendly)
QUEUE_BYTES = QUEUE_PAGES * 8192


def build(base: int = DEFAULT_BASE) -> Program:
    """Build the murphi stand-in in the address slice at ``base``."""
    visited_base = base
    queue_base = base + VISITED_WORDS * 8

    source = f"""
main:
    li    r1, {visited_base}
    li    r2, {queue_base}
    li    r3, 0               ; queue offset
    li    r10, 999331
    li    r20, {LCG_MUL}
    li    r21, {LCG_ADD}
    li    r22, {VISITED_WORDS}
    li    r16, 0
    li    r9, 777000777
loop:
    ; --- expansion worker A: serial hash-and-mark ---
    mul   r10, r10, r20       ; successor state
    add   r10, r10, r21
    srl   r11, r10, 32
    mul   r12, r11, r22
    srl   r12, r12, 32        ; visited-table index
    sll   r12, r12, 3
    add   r12, r1, r12
    ld    r13, 0(r12)         ; visited probe (TLB pressure)
    xor   r10, r10, r13       ; successor generation reads the entry
    and   r14, r13, 7
    bne   r14, r0, seen       ; skewed data-dependent branch
    add   r13, r13, 1
    st    r13, 0(r12)         ; mark visited
    add   r15, r2, r3
    st    r10, 0(r15)         ; enqueue (sequential, TLB friendly)
    add   r3, r3, 8
    and   r3, r3, {QUEUE_BYTES - 8}
seen:
    ; --- expansion worker B: an independent rule firing ---
    mul   r9, r9, r20
    add   r9, r9, r21
    srl   r5, r9, 32
    mul   r6, r5, r22
    srl   r6, r6, 32
    sll   r6, r6, 3
    add   r6, r1, r6
    ld    r7, 0(r6)           ; second probe
    xor   r9, r9, r7          ; worker B is serial in the same way
    add   r16, r16, r11
    add   r17, r16, r14
    jmp   loop
"""
    return make_program(
        source,
        regions=[(visited_base, VISITED_WORDS * 8), (queue_base, QUEUE_BYTES)],
    )
