"""``hydro2d`` stand-in: FP relaxation sweeps with divide chains.

SpecFP 95 ``hydro2d`` (astrophysical Navier-Stokes) has the lowest base
IPC in the paper's Table 4 (1.3) -- long dependent FP chains including
divides -- and a moderate TLB miss rate from sweeping a working set
somewhat larger than the TLB's reach.  The kernel sweeps a ~640 KB grid
with a coarse stride (a page boundary every ~25 points, so the cyclic
sweep misses at a measured, moderate rate) computing a *dependent*
chain with an ``fdiv`` per point, which throttles ILP exactly the way
the original does.
"""

from __future__ import annotations

from repro.isa.program import DataSegment, Program
from repro.workloads.builder import DEFAULT_BASE, make_program

GRID_PAGES = 80  # 640 KB: sweeps thrash a 64-entry TLB gently
GRID_BYTES = GRID_PAGES * 8192
#: Sweep stride in bytes: a page boundary every ~25 points.
STRIDE_BYTES = 320


def build(base: int = DEFAULT_BASE) -> Program:
    """Build the hydro2d stand-in in the address slice at ``base``."""
    grid_base = base
    coeff_base = base + GRID_BYTES
    end_off = GRID_BYTES - 64

    source = f"""
main:
    li    r1, {grid_base}
    li    r2, {coeff_base}
    li    r3, 0               ; sweep offset
    li    r4, {end_off}
    fld   f10, 0(r2)          ; relaxation coefficients (hot)
    fld   f11, 8(r2)
    fadd  f12, f10, f11       ; running residual (loop-carried)
loop:
    add   r7, r1, r3
    fld   f1, 0(r7)
    fdiv  f3, f1, f11         ; per-point divide consumes the load
    fadd  f4, f3, f1
    fmul  f5, f4, f10
    fadd  f12, f12, f4        ; residual accumulates the relaxed value
    fst   f5, 0(r7)
    add   r3, r3, {STRIDE_BYTES}
    blt   r3, r4, loop
    li    r3, 0               ; wrap: next relaxation sweep
    jmp   loop
"""
    return make_program(
        source,
        segments=[
            DataSegment(base=coeff_base, words=[3.0, 7.0], name="coefficients")
        ],
        regions=[(grid_base, GRID_BYTES)],
    )
