"""The benchmark registry (the paper's Table 2 suite).

Maps benchmark names (and the paper's three-letter abbreviations) to
builder functions, and provides the Figure 7 three-benchmark SMT mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.program import Program
from repro.workloads import (
    alphadoom,
    applu,
    compress,
    deltablue,
    gcc,
    hydro2d,
    murphi,
    vortex,
)
from repro.workloads.builder import DEFAULT_BASE, SLICE_STRIDE


@dataclass(frozen=True)
class BenchmarkSpec:
    """One entry of the suite."""

    name: str
    abbrev: str
    build: Callable[[int], Program]
    description: str


BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        BenchmarkSpec(
            "alphadoom", "adm", alphadoom.build,
            "X-windows first-person shooter (column rendering)",
        ),
        BenchmarkSpec(
            "applu", "apl", applu.build,
            "parabolic/elliptic PDE solver (SpecFP 95)",
        ),
        BenchmarkSpec(
            "compress", "cmp", compress.build,
            "adaptive Lempel-Ziv text compression (SpecInt 95)",
        ),
        BenchmarkSpec(
            "deltablue", "dbl", deltablue.build,
            "object-oriented incremental dataflow constraint solver",
        ),
        BenchmarkSpec(
            "gcc", "gcc", gcc.build,
            "GNU optimizing C compiler (SpecInt 95)",
        ),
        BenchmarkSpec(
            "hydro2d", "h2d", hydro2d.build,
            "astrophysical Navier-Stokes solver (SpecFP 95)",
        ),
        BenchmarkSpec(
            "murphi", "mph", murphi.build,
            "finite state space exploration for verification",
        ),
        BenchmarkSpec(
            "vortex", "vor", vortex.build,
            "single-user object-oriented transactional database (SpecInt 95)",
        ),
    )
}

BENCHMARK_NAMES = tuple(BENCHMARKS)

_BY_ABBREV = {spec.abbrev: spec for spec in BENCHMARKS.values()}

#: The eight three-application SMT mixes of Figure 7.
FIG7_MIXES: tuple[tuple[str, str, str], ...] = (
    ("adm", "gcc", "vor"),
    ("apl", "cmp", "h2d"),
    ("apl", "dbl", "vor"),
    ("dbl", "gcc", "h2d"),
    ("adm", "cmp", "vor"),
    ("adm", "h2d", "mph"),
    ("apl", "dbl", "mph"),
    ("cmp", "gcc", "mph"),
)


def build_benchmark(name: str, base: int = DEFAULT_BASE) -> Program:
    """Build a benchmark by full name or paper abbreviation."""
    spec = BENCHMARKS.get(name) or _BY_ABBREV.get(name)
    if spec is None:
        raise KeyError(
            f"unknown benchmark {name!r}; choices: {sorted(BENCHMARKS)} "
            f"or abbreviations {sorted(_BY_ABBREV)}"
        )
    return spec.build(base)


def build_mix(names: tuple[str, ...] | list[str]) -> list[Program]:
    """Build an SMT mix: each program in its own address-space slice."""
    return [
        build_benchmark(name, DEFAULT_BASE + i * SLICE_STRIDE)
        for i, name in enumerate(names)
    ]
