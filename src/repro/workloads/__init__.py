"""Synthetic, execution-driven stand-ins for the paper's benchmarks.

The paper runs eight Alpha binaries (five from SPEC95 plus alphadoom,
deltablue, and murphi).  We cannot execute Alpha binaries, so each
benchmark here is a small assembly kernel -- built on the repro ISA --
that reproduces the *character* that drives the paper's per-benchmark
spread: data footprint vs. TLB reach (miss rate), access pattern
(strided FP sweep, hash probing, pointer chasing, random record
lookups), branch predictability, and the instruction-level parallelism
available around each miss.  See DESIGN.md section 4 for the mapping.

All kernels loop forever; the simulator runs them for a fixed number of
retired user instructions.  Each takes a ``base`` address so SMT mixes
(Figure 7) can give every thread its own address-space slice.
"""

from repro.workloads.suite import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    BenchmarkSpec,
    build_benchmark,
)

__all__ = ["BENCHMARK_NAMES", "BENCHMARKS", "BenchmarkSpec", "build_benchmark"]
