"""Figure 5: traditional vs multithreaded(1/3) vs hardware handlers.

The paper's headline comparison.  Expected shape: the hardware walker is
cheapest; multithreaded with one idle context roughly halves the
traditional penalty; extra idle contexts add only a little; gcc is the
outlier where the multithreaded mechanism beats the hardware walker
(wrong-path TLB misses fill the TLB under the hardware scheme, and the
perfect-TLB baseline absorbs extra speculative cache pollution).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Settings, penalty_table
from repro.sim.config import MachineConfig

LABELS = ("traditional", "multithreaded(1)", "multithreaded(3)", "hardware")


def configs() -> dict[str, MachineConfig]:
    """The machine configurations this figure compares."""
    return {
        "traditional": MachineConfig(mechanism="traditional", idle_threads=1),
        "multithreaded(1)": MachineConfig(mechanism="multithreaded", idle_threads=1),
        "multithreaded(3)": MachineConfig(mechanism="multithreaded", idle_threads=3),
        "hardware": MachineConfig(mechanism="hardware", idle_threads=1),
    }


def run(settings: Settings | None = None) -> ExperimentResult:
    """Measure every row of Figure 5; returns the result grid."""
    settings = settings or Settings.from_env()
    result = ExperimentResult(name="fig5_mechanisms")
    for name in settings.benchmarks:
        result.rows.extend(
            penalty_table(name, configs(), settings, reference_label="hardware")
        )
    return result


def main() -> ExperimentResult:
    """Regenerate and print Figure 5 (the CLI entry point)."""
    result = run()
    print("Figure 5: relative TLB miss performance of traditional,")
    print("multithreaded, and hardware handlers (penalty cycles per miss)\n")
    print(result.format_table())
    print("\nExpected shape: hardware < multithreaded(3) <= multithreaded(1)")
    print("<< traditional; multithreaded(1) is about half of traditional.")
    return result


if __name__ == "__main__":
    main()
