"""Table 3: limit studies of the multithreaded mechanism's overheads.

Each row removes one overhead from the multithreaded(3) configuration:
execute bandwidth, window occupancy, fetch/decode bandwidth, or the
entire handler fetch/decode latency ("instant").  The paper finds the
fetch/decode *latency* dominant -- the observation that motivates
quick-start -- with every bandwidth knob worth only a few tenths of a
cycle.  Traditional and hardware bracket the table.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions.limits import LimitKnobs
from repro.experiments.common import ExperimentResult, Settings, penalty_table
from repro.sim.config import MachineConfig

#: Idle contexts for the limit studies (the paper uses 3 to maximise
#: multithreaded performance).
IDLE_THREADS = 3


def configs() -> dict[str, MachineConfig]:
    multi = MachineConfig(mechanism="multithreaded", idle_threads=IDLE_THREADS)
    return {
        "Traditional Software": MachineConfig(mechanism="traditional"),
        "Multithreaded": multi,
        "Multi w/o execute bandwidth overhead": dataclasses.replace(
            multi, limits=LimitKnobs(no_execute_bandwidth=True)
        ),
        "Multi w/o window overhead": dataclasses.replace(
            multi, limits=LimitKnobs(no_window_overhead=True)
        ),
        "Multi w/o fetch/decode bandwidth overhead": dataclasses.replace(
            multi, limits=LimitKnobs(no_fetch_bandwidth=True)
        ),
        "Multi w/ instant handler fetch/decode": dataclasses.replace(
            multi, limits=LimitKnobs(instant_fetch=True)
        ),
        "Hardware TLB miss handler": MachineConfig(mechanism="hardware"),
    }


def run(settings: Settings | None = None) -> ExperimentResult:
    """Measure every row of Table 3; returns the rows."""
    settings = settings or Settings.from_env()
    result = ExperimentResult(name="table3_limits")
    for name in settings.benchmarks:
        result.rows.extend(
            penalty_table(
                name,
                configs(),
                settings,
                reference_label="Hardware TLB miss handler",
            )
        )
    return result


def measured_attribution(settings: Settings | None = None) -> str:
    """Where the cycles actually went, per mechanism (one benchmark).

    Complements the table's what-if rows with the direct measurement:
    a :class:`~repro.obs.attribution.CycleAttribution` run per
    mechanism, rendered side by side.  The qualitative Table-3 story is
    visible in the columns -- traditional's squash/refetch share,
    multithreaded's handler-fetch share, quick-start shrinking it.
    """
    from repro.experiments.report import format_attribution
    from repro.sim.metrics import run_pair
    from repro.workloads import build_benchmark

    settings = settings or Settings.from_env()
    bench = settings.benchmarks[0]
    tables = {}
    fills = {}
    for mech in ("traditional", "multithreaded", "quickstart", "hardware"):
        config = MachineConfig(mechanism=mech, idle_threads=IDLE_THREADS)
        mech_result, _, penalty = run_pair(
            lambda: build_benchmark(bench),
            config,
            settings.user_insts,
            attribute=True,
        )
        tables[mech] = penalty.attribution
        fills[mech] = mech_result.committed_fills
    header = f"Measured cycle attribution ({bench}):"
    return header + "\n" + format_attribution(tables, fills)


def main() -> ExperimentResult:
    """Regenerate and print Table 3 (the CLI entry point)."""
    result = run()
    print("Table 3: average penalty cycles per miss, limit studies")
    print("(multithreaded with one overhead removed at a time)\n")
    width = max(len(label) for label in result.labels())
    print(f"{'Configuration':{width}s}  Average Penalty/Miss")
    print("-" * (width + 22))
    for label in result.labels():
        print(f"{label:{width}s}  {result.average_penalty(label):10.1f}")
    print("\nExpected shape: instant fetch/decode is the only knob with a")
    print("large effect; bandwidth knobs are worth only fractions of a cycle.")
    print()
    print(measured_attribution())
    return result


if __name__ == "__main__":
    main()
