"""Figure 7: TLB miss penalties with three applications on the SMT.

The paper co-schedules three benchmarks plus one idle context and
repeats the mechanism comparison on its eight mixes.  Expected shape:
the benefit of the multithreaded mechanism shrinks to roughly a 25%
penalty reduction (30% with quick-start) because the SMT already
tolerates trap latency with the other threads' work -- but the saved
fetch/decode bandwidth still matters.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Settings, penalty_table
from repro.sim.config import MachineConfig
from repro.workloads.suite import FIG7_MIXES, build_mix


def configs() -> dict[str, MachineConfig]:
    """The machine configurations this figure compares."""
    return {
        "traditional": MachineConfig(mechanism="traditional", idle_threads=1),
        "multithreaded(1)": MachineConfig(mechanism="multithreaded", idle_threads=1),
        "quick start(1)": MachineConfig(mechanism="quickstart", idle_threads=1),
        "hardware": MachineConfig(mechanism="hardware", idle_threads=1),
    }


def run(settings: Settings | None = None) -> ExperimentResult:
    """Measure every row of Figure 7; returns the result grid."""
    settings = settings or Settings.from_env()
    result = ExperimentResult(name="fig7_multiprogram")
    for mix in FIG7_MIXES:
        label = "-".join(mix)
        result.rows.extend(
            penalty_table(
                label,
                configs(),
                settings,
                reference_label="hardware",
                workload=mix,
            )
        )
    return result


def main() -> ExperimentResult:
    """Regenerate and print Figure 7 (the CLI entry point)."""
    result = run()
    print("Figure 7: average TLB miss penalties with 3 applications")
    print("running on the SMT (penalty cycles per miss)\n")
    print(result.format_table())
    trad = result.average_penalty("traditional")
    mt = result.average_penalty("multithreaded(1)")
    qs = result.average_penalty("quick start(1)")
    if trad:
        print(f"\nMultithreading reduces the average penalty by "
              f"{100 * (trad - mt) / trad:.0f}% "
              f"({100 * (trad - qs) / trad:.0f}% with quick-start);")
        print("the paper reports 25% (30% with quick-start).")
    return result


if __name__ == "__main__":
    main()
