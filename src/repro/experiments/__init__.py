"""Experiment harnesses: one module per figure/table of the paper.

Each module exposes ``run(settings) -> ExperimentResult`` plus a
``main()`` that prints the same rows/series the paper reports.  Run them
all from the command line::

    python -m repro.experiments all          # or: fig2, fig5, table3, ...
    REPRO_SCALE=4 python -m repro.experiments fig5   # 4x longer runs

| id     | paper content                                             |
|--------|-----------------------------------------------------------|
| fig2   | penalty/miss vs pipeline depth (3/7/11), traditional      |
| fig3   | relative TLB overhead vs machine width (2/4/8)            |
| table2 | benchmark summary: miss counts per run                    |
| fig5   | traditional vs multithreaded(1/3) vs hardware             |
| table3 | limit studies (execute/window/fetch bandwidth, instant)   |
| fig6   | quick-start vs multithreaded(1) vs hardware               |
| fig7   | 3 application threads + 1 idle: the paper's eight mixes   |
| table4 | speedups over traditional, miss rates, base IPC           |
"""
