"""Rendering experiment results the way the paper presents them.

The paper's figures are grouped bar charts (benchmarks on the x-axis,
one bar per mechanism).  :func:`bar_chart` renders an
:class:`~repro.experiments.common.ExperimentResult` as a horizontal
ASCII bar chart; :func:`comparison_table` produces a compact
paper-vs-measured summary block for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.experiments.common import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.attribution import AttributionTable

#: Bar glyphs per series, cycled in label order.
_GLYPHS = "█▓▒░◆"


def bar_chart(
    result: ExperimentResult,
    value: str = "penalty_per_miss",
    width: int = 48,
    title: str | None = None,
) -> str:
    """Render a grouped horizontal bar chart of ``result``.

    One group per benchmark, one bar per label, scaled to the global
    maximum.  Deterministic, terminal-friendly, no dependencies.
    """
    labels = result.labels()
    benchmarks: list[str] = []
    for row in result.rows:
        if row.benchmark not in benchmarks:
            benchmarks.append(row.benchmark)
    values = {
        (row.benchmark, row.label): float(getattr(row, value))
        for row in result.rows
    }
    peak = max((abs(v) for v in values.values()), default=0.0)
    if peak == 0.0:
        peak = 1.0

    label_width = max((len(label) for label in labels), default=5)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    for bench in benchmarks:
        lines.append(f"{bench}")
        for i, label in enumerate(labels):
            v = values.get((bench, label))
            if v is None:
                continue
            bar = _GLYPHS[i % len(_GLYPHS)] * max(
                0, round(abs(v) / peak * width)
            )
            lines.append(f"  {label:>{label_width}s} |{bar} {v:.1f}")
        lines.append("")
    # Averages footer.
    lines.append("average")
    for i, label in enumerate(labels):
        rows = result.by_label(label)
        avg = sum(getattr(r, value) for r in rows) / len(rows) if rows else 0.0
        bar = _GLYPHS[i % len(_GLYPHS)] * max(0, round(abs(avg) / peak * width))
        lines.append(f"  {label:>{label_width}s} |{bar} {avg:.1f}")
    return "\n".join(lines)


def comparison_table(
    measured: dict[str, float],
    paper: dict[str, float],
    caption: str,
) -> str:
    """A paper-vs-measured markdown block.

    ``measured``/``paper`` map row labels to values; labels missing from
    ``paper`` render as '--' (the paper did not report them).
    """
    label_width = max(len(k) for k in measured)
    lines = [
        caption,
        "",
        f"| {'configuration':{label_width}s} | paper | measured |",
        f"|{'-' * (label_width + 2)}|-------|----------|",
    ]
    for label, value in measured.items():
        ref = paper.get(label)
        ref_text = f"{ref:5.1f}" if ref is not None else "   --"
        lines.append(f"| {label:{label_width}s} | {ref_text} | {value:8.1f} |")
    return "\n".join(lines)


def format_attribution(
    tables: dict[str, "AttributionTable"],
    fills: dict[str, int] | None = None,
    width: int = 32,
) -> str:
    """Side-by-side Table-3 category shares, one column per mechanism.

    ``tables`` maps a label (usually the mechanism name) to its
    :class:`~repro.obs.attribution.AttributionTable`; ``fills`` (same
    keys) adds a per-miss row.  This is the paper's where-do-the-cycles-
    go comparison: traditional's squash/refetch column against
    multithreaded's handler-fetch column against quick-start's shrunken
    one.
    """
    from repro.obs.attribution import ATTRIBUTION_CATEGORIES

    labels = list(tables)
    cat_width = max(len(c) for c in ATTRIBUTION_CATEGORIES)
    col = max([len(label) for label in labels] + [8])
    header = f"{'category':{cat_width}s}"
    for label in labels:
        header += f" {label:>{col}s}"
    lines = [header, "-" * len(header)]
    for cat in ATTRIBUTION_CATEGORIES:
        line = f"{cat:{cat_width}s}"
        for label in labels:
            table = tables[label]
            share = 100.0 * table.cycles.get(cat, 0) / (table.total_cycles or 1)
            line += f" {share:{col - 1}.1f}%"
        lines.append(line)
    if fills:
        line = f"{'per-miss':{cat_width}s}"
        for label in labels:
            table = tables[label]
            n = fills.get(label, 0)
            per = table.overhead_cycles / n if n else 0.0
            line += f" {per:{col}.1f}"
        lines.append(line)
    return "\n".join(lines)


def sparkline(values: list[float], width: int = 0) -> str:
    """A one-line trend (for per-depth/width sweeps)."""
    if not values:
        return ""
    glyphs = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        glyphs[min(len(glyphs) - 1, int((v - lo) / span * (len(glyphs) - 1)))]
        for v in values
    )
