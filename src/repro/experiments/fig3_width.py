"""Figure 3: relative TLB overhead vs superscalar width.

The paper runs 2-wide/32-window, 4-wide/64-window, and 8-wide/128-window
machines and reports the *relative TLB execution percentage*: the
fraction of run time spent on TLB miss handling, normalised to the
2-wide machine.  Wider machines speed the application up more than they
speed the (serial) trap path up, so the percentage grows with width.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Settings, penalty_table
from repro.sim.config import MachineConfig

WIDTHS = (2, 4, 8)


def run(settings: Settings | None = None) -> ExperimentResult:
    """Measure every row of Figure 3; returns the result grid."""
    settings = settings or Settings.from_env()
    result = ExperimentResult(name="fig3_width")
    base = MachineConfig(mechanism="traditional")
    for name in settings.benchmarks:
        for width in WIDTHS:
            config = base.with_width(width)
            label = f"{width}-wide"
            result.rows.extend(
                penalty_table(name, {label: config}, settings, base_config=config)
            )
    return result


def normalized_overheads(result: ExperimentResult, benchmark: str) -> dict[str, float]:
    """Per-width TLB overhead fraction normalised to the 2-wide machine."""
    rows = {r.label: r for r in result.rows if r.benchmark == benchmark}
    base = rows.get("2-wide")
    if base is None or base.relative_overhead == 0.0:
        return {label: 0.0 for label in rows}
    return {
        label: row.relative_overhead / base.relative_overhead
        for label, row in rows.items()
    }


def main() -> ExperimentResult:
    """Regenerate and print Figure 3 (the CLI entry point)."""
    result = run()
    print("Figure 3: relative TLB execution percentage vs machine width")
    print("(TLB overhead fraction, normalised to the 2-wide machine)\n")
    benchmarks = sorted({r.benchmark for r in result.rows})
    labels = [f"{w}-wide" for w in WIDTHS]
    width = max(10, *(len(b) for b in benchmarks))
    print(f"{'benchmark':{width}s} " + " ".join(f"{label:>10s}" for label in labels))
    sums = {label: 0.0 for label in labels}
    for bench in benchmarks:
        norm = normalized_overheads(result, bench)
        print(
            f"{bench:{width}s} "
            + " ".join(f"{norm.get(label, 0.0):10.2f}" for label in labels)
        )
        for label in labels:
            sums[label] += norm.get(label, 0.0)
    print(
        f"{'average':{width}s} "
        + " ".join(f"{sums[label] / len(benchmarks):10.2f}" for label in labels)
    )
    print("\nExpected shape: overhead fraction grows with width (TLB")
    print("handling does not benefit from issue width as much as the app).")
    return result


if __name__ == "__main__":
    main()
