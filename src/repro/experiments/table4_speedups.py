"""Table 4: speedups over the traditional software handler.

For every benchmark: base IPC, TLB miss count, and the percentage
speedup of {perfect TLB, hardware, multithreaded(1/3), quick-start(1/3)}
over the traditional software mechanism.  The paper notes these small
absolute speedups follow directly from the penalty-per-miss results and
each benchmark's miss rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import Settings
from repro.sim.config import MachineConfig
from repro.sim.parallel import CellSpec, run_cells

COLUMNS = ("Perfect", "H/W", "Multi(1)", "Multi(3)", "Quick(1)", "Quick(3)")


def configs() -> dict[str, MachineConfig]:
    """The machine configurations this table compares."""
    return {
        "Perfect": MachineConfig(mechanism="perfect"),
        "H/W": MachineConfig(mechanism="hardware"),
        "Multi(1)": MachineConfig(mechanism="multithreaded", idle_threads=1),
        "Multi(3)": MachineConfig(mechanism="multithreaded", idle_threads=3),
        "Quick(1)": MachineConfig(mechanism="quickstart", idle_threads=1),
        "Quick(3)": MachineConfig(mechanism="quickstart", idle_threads=3),
    }


@dataclass
class SpeedupRow:
    benchmark: str
    base_ipc: float
    tlb_misses: int
    #: column label -> percent speedup over traditional.
    speedups: dict[str, float] = field(default_factory=dict)


def run(settings: Settings | None = None) -> list[SpeedupRow]:
    """Measure every row of Table 4; returns the rows."""
    settings = settings or Settings.from_env()
    grid = dict(configs())
    labels = ["traditional", *grid]
    grid["traditional"] = MachineConfig(mechanism="traditional")

    # One flat batch over (benchmark x column): a single run_cells call
    # maximizes fan-out and lets the result cache share cells with the
    # other experiments.
    specs = [
        CellSpec(
            workload=name,
            config=grid[label],
            user_insts=settings.user_insts,
            warmup_insts=settings.warmup_insts,
            max_cycles=settings.max_cycles,
        )
        for name in settings.benchmarks
        for label in labels
    ]
    outcomes = run_cells(specs)

    rows = []
    for bench_idx, name in enumerate(settings.benchmarks):
        cells = dict(
            zip(labels, outcomes[bench_idx * len(labels) : (bench_idx + 1) * len(labels)])
        )
        traditional = cells.pop("traditional")
        row = SpeedupRow(benchmark=name, base_ipc=0.0, tlb_misses=0)
        for label, result in cells.items():
            row.speedups[label] = 100.0 * (
                traditional.cycles / result.cycles - 1.0
            )
            if label == "Perfect":
                row.base_ipc = result.ipc
            if label == "H/W":
                row.tlb_misses = result.committed_fills
        rows.append(row)
    return rows


def main() -> list[SpeedupRow]:
    """Regenerate and print Table 4 (the CLI entry point)."""
    rows = run()
    print("Table 4: speedups over traditional software, TLB miss counts,")
    print("and base IPC\n")
    header = f"{'benchmark':12s} {'IPC':>5s} {'misses':>7s} " + " ".join(
        f"{c:>9s}" for c in COLUMNS
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.benchmark:12s} {row.base_ipc:5.1f} {row.tlb_misses:7d} "
            + " ".join(f"{row.speedups[c]:8.1f}%" for c in COLUMNS)
        )
    print("\nExpected shape: speedups track miss rate; compress and vortex")
    print("benefit most; Perfect >= Multi/Quick >= 0 everywhere.")
    return rows


if __name__ == "__main__":
    main()
