"""Figure 6: the quick-starting multithreaded implementation.

Quick-start prefetches the predicted next handler into an idle thread's
fetch buffer, removing (most of) the handler's fetch latency -- the
dominant overhead identified by Table 3.  Expected shape: quick-start
lands between multithreaded(1) and the hardware walker, recovering most
of the gap (the paper: ~1.7 of the 2.5-cycle instant-fetch headroom).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Settings, penalty_table
from repro.sim.config import MachineConfig


def configs() -> dict[str, MachineConfig]:
    """The machine configurations this figure compares."""
    return {
        "multithreaded(1)": MachineConfig(mechanism="multithreaded", idle_threads=1),
        "quick start(1)": MachineConfig(mechanism="quickstart", idle_threads=1),
        "hardware": MachineConfig(mechanism="hardware", idle_threads=1),
    }


def run(settings: Settings | None = None) -> ExperimentResult:
    """Measure every row of Figure 6; returns the result grid."""
    settings = settings or Settings.from_env()
    result = ExperimentResult(name="fig6_quickstart")
    for name in settings.benchmarks:
        result.rows.extend(
            penalty_table(name, configs(), settings, reference_label="hardware")
        )
    return result


def main() -> ExperimentResult:
    """Regenerate and print Figure 6 (the CLI entry point)."""
    result = run()
    print("Figure 6: performance of the quick-starting multithreaded")
    print("implementation (penalty cycles per TLB miss)\n")
    print(result.format_table())
    mt = result.average_penalty("multithreaded(1)")
    qs = result.average_penalty("quick start(1)")
    hw = result.average_penalty("hardware")
    if mt > hw:
        recovered = (mt - qs) / (mt - hw)
        print(f"\nQuick-start recovers {100 * recovered:.0f}% of the")
        print("multithreaded-to-hardware gap (the paper reports ~80%/~68%).")
    return result


if __name__ == "__main__":
    main()
