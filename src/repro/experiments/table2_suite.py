"""Table 2: the benchmark suite summary.

The paper's Table 2 lists each benchmark's origin and its approximate
data-TLB miss count over a 100M-instruction run.  Our runs are shorter
with proportionally denser misses (see DESIGN.md section 3), so this
harness reports the measured miss count of the configured run length
plus the miss rate per 1000 instructions, preserving the suite's
*relative ordering* (compress and vortex highest, alphadoom lowest).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Settings, run_benchmark
from repro.sim.config import MachineConfig
from repro.workloads.suite import BENCHMARKS, build_benchmark


@dataclass
class SuiteRow:
    name: str
    abbrev: str
    description: str
    tlb_misses: int
    misses_per_kilo_inst: float
    base_ipc: float


def run(settings: Settings | None = None) -> list[SuiteRow]:
    """Measure every row of Table 2; returns the rows."""
    settings = settings or Settings.from_env()
    rows = []
    for name in settings.benchmarks:
        spec = BENCHMARKS[name]
        config = MachineConfig(mechanism="hardware")
        result = run_benchmark(lambda: build_benchmark(name), config, settings)
        perfect = run_benchmark(
            lambda: build_benchmark(name),
            config.with_mechanism("perfect"),
            settings,
        )
        rows.append(
            SuiteRow(
                name=spec.name,
                abbrev=spec.abbrev,
                description=spec.description,
                tlb_misses=result.committed_fills,
                misses_per_kilo_inst=result.miss_rate_per_kilo_inst,
                base_ipc=perfect.ipc,
            )
        )
    return rows


def main() -> list[SuiteRow]:
    """Regenerate and print Table 2 (the CLI entry point)."""
    rows = run()
    print("Table 2: benchmark summary")
    print(f"\n{'name':12s} {'abbr':5s} {'TLB misses':>10s} {'miss/kinst':>10s} "
          f"{'base IPC':>8s}  description")
    print("-" * 100)
    for row in rows:
        print(
            f"{row.name:12s} {row.abbrev:5s} {row.tlb_misses:10d} "
            f"{row.misses_per_kilo_inst:10.2f} {row.base_ipc:8.2f}  "
            f"{row.description}"
        )
    return rows


if __name__ == "__main__":
    main()
