"""Shared experiment plumbing.

The central routine is :func:`penalty_table`: for one benchmark and a set
of machine configurations it runs a perfect-TLB baseline plus each
configuration and reports **penalty cycles per TLB miss**.  Following the
paper (whose Table 2 miss counts are a property of the *benchmark*, not
the mechanism), the divisor is a single per-benchmark reference count --
the committed fills of a designated reference run -- so mechanisms are
compared on identical footing.

Run lengths scale with the ``REPRO_SCALE`` environment variable
(default 1) so the same harness serves quick smoke runs and long
measurement runs.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.isa.program import Program
from repro.sim.config import MachineConfig
from repro.sim.parallel import CellSpec, run_cells
from repro.sim.simulator import SimResult, Simulator
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark


def _scale() -> float:
    raw = os.environ.get("REPRO_SCALE", "1")
    try:
        value = float(raw)
    except ValueError:
        return 1.0
    if value < 0.1:
        warnings.warn(
            f"REPRO_SCALE={raw!r} is below the minimum; clamping to 0.1",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0.1
    return value


@dataclass
class Settings:
    """Run-length knobs for every experiment."""

    user_insts: int = 12_000
    warmup_insts: int = 3_000
    max_cycles: int = 8_000_000
    benchmarks: Sequence[str] = BENCHMARK_NAMES

    @classmethod
    def from_env(cls) -> "Settings":
        scale = _scale()
        return cls(
            user_insts=int(12_000 * scale),
            warmup_insts=int(3_000 * scale),
            max_cycles=int(8_000_000 * max(1.0, scale)),
        )


@dataclass
class Row:
    """One measured cell: a (benchmark, configuration) pair."""

    benchmark: str
    label: str
    cycles: int
    perfect_cycles: int
    reference_misses: int
    committed_fills: int
    ipc: float

    @property
    def penalty_per_miss(self) -> float:
        if not self.reference_misses:
            return 0.0
        return (self.cycles - self.perfect_cycles) / self.reference_misses

    @property
    def relative_overhead(self) -> float:
        """Fraction of run time spent on TLB handling."""
        if not self.cycles:
            return 0.0
        return (self.cycles - self.perfect_cycles) / self.cycles

    @property
    def speedup_over_perfect(self) -> float:
        return self.perfect_cycles / self.cycles if self.cycles else 0.0


@dataclass
class ExperimentResult:
    """All rows of one experiment, with helpers for printing."""

    name: str
    rows: list[Row] = field(default_factory=list)

    def by_label(self, label: str) -> list[Row]:
        return [r for r in self.rows if r.label == label]

    def labels(self) -> list[str]:
        seen: list[str] = []
        for row in self.rows:
            if row.label not in seen:
                seen.append(row.label)
        return seen

    def average_penalty(self, label: str) -> float:
        rows = self.by_label(label)
        if not rows:
            return 0.0
        return sum(r.penalty_per_miss for r in rows) / len(rows)

    def cell(self, benchmark: str, label: str) -> Row | None:
        for row in self.rows:
            if row.benchmark == benchmark and row.label == label:
                return row
        return None

    def format_table(self, value: str = "penalty_per_miss") -> str:
        """Render benchmarks x labels as an aligned text table."""
        labels = self.labels()
        benchmarks: list[str] = []
        for row in self.rows:
            if row.benchmark not in benchmarks:
                benchmarks.append(row.benchmark)
        width = max(10, *(len(b) for b in benchmarks)) if benchmarks else 10
        header = f"{'benchmark':{width}s} " + " ".join(
            f"{label:>12s}" for label in labels
        )
        lines = [header, "-" * len(header)]
        for bench in benchmarks:
            cells = []
            for label in labels:
                row = self.cell(bench, label)
                cells.append(f"{getattr(row, value):12.2f}" if row else " " * 12)
            lines.append(f"{bench:{width}s} " + " ".join(cells))
        averages = []
        for label in labels:
            rows = self.by_label(label)
            avg = sum(getattr(r, value) for r in rows) / len(rows) if rows else 0.0
            averages.append(f"{avg:12.2f}")
        lines.append("-" * len(header))
        lines.append(f"{'average':{width}s} " + " ".join(averages))
        return "\n".join(lines)


def run_benchmark(
    factory: Callable[[], Program | list[Program]],
    config: MachineConfig,
    settings: Settings,
) -> SimResult:
    """One simulation of ``factory``'s program(s) under ``config``."""
    return Simulator(factory(), config).run(
        user_insts=settings.user_insts,
        warmup_insts=settings.warmup_insts,
        max_cycles=settings.max_cycles,
    )


def penalty_table(
    name: str,
    configs: dict[str, MachineConfig],
    settings: Settings,
    base_config: MachineConfig | None = None,
    reference_label: str | None = None,
    factory: Callable[[], Program | list[Program]] | None = None,
    workload: str | tuple[str, ...] | None = None,
) -> list[Row]:
    """Measure one benchmark under several configurations.

    ``configs`` maps display labels to machine configurations (all
    non-perfect).  A perfect-TLB baseline derived from ``base_config``
    (default: the first config) is run automatically.  The reference
    miss count comes from ``reference_label``'s run (default: the first
    config's run).

    ``workload`` names the benchmark (or mix tuple) to build; it
    defaults to ``name`` and is what lets the cells run through
    :func:`repro.sim.parallel.run_cells` (fan-out + result cache).  A
    ``factory`` callable forces the serial in-process path, for callers
    with programs the worker processes cannot rebuild by name.
    """
    base = base_config or next(iter(configs.values()))
    labels = list(configs)

    if factory is not None:
        perfect = run_benchmark(factory, base.with_mechanism("perfect"), settings)
        results = {
            label: run_benchmark(factory, config, settings)
            for label, config in configs.items()
        }
    else:
        cell = lambda config: CellSpec(  # noqa: E731
            workload=workload if workload is not None else name,
            config=config,
            user_insts=settings.user_insts,
            warmup_insts=settings.warmup_insts,
            max_cycles=settings.max_cycles,
        )
        specs = [cell(base.with_mechanism("perfect"))]
        specs += [cell(config) for config in configs.values()]
        server = os.environ.get("REPRO_SERVER", "").strip()
        if server:
            # Resolve the grid against a sweep service
            # (repro-experiments --server URL; see docs/SERVICE.md).
            # Results are bit-identical to the local path: the server
            # runs the same engine batches under the same cache keys.
            from repro.serve.client import run_cells_via_server

            outcomes = run_cells_via_server(server, specs)
        else:
            outcomes = run_cells(specs)
        perfect = outcomes[0]
        results = dict(zip(labels, outcomes[1:]))

    ref_label = reference_label or labels[0]
    reference = max(1, results[ref_label].committed_fills)
    return [
        Row(
            benchmark=name,
            label=label,
            cycles=result.cycles,
            perfect_cycles=perfect.cycles,
            reference_misses=reference,
            committed_fills=result.committed_fills,
            ipc=perfect.ipc,
        )
        for label, result in results.items()
    ]
