"""Figure 2: traditional trap cost vs pipeline length.

The paper sweeps the number of stages between fetch and execute
(3/7/11) on the 8-wide machine with the traditional software handler,
and finds the penalty growing with a slope of roughly 2x the depth: one
pipeline refill at the trap, and a second one after the (unpredicted)
exception return.  Each depth gets its own perfect-TLB baseline.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Settings, penalty_table
from repro.sim.config import MachineConfig

PIPE_DEPTHS = (3, 7, 11)


def run(settings: Settings | None = None) -> ExperimentResult:
    """Measure every row of Figure 2; returns the result grid."""
    settings = settings or Settings.from_env()
    result = ExperimentResult(name="fig2_pipeline")
    base = MachineConfig(mechanism="traditional")
    for name in settings.benchmarks:
        for depth in PIPE_DEPTHS:
            config = base.with_pipe_depth(depth)
            label = f"{depth} stages"
            result.rows.extend(
                penalty_table(name, {label: config}, settings, base_config=config)
            )
    return result


def main() -> ExperimentResult:
    """Regenerate and print Figure 2 (the CLI entry point)."""
    result = run()
    print("Figure 2: software TLB miss overhead vs pipeline length")
    print("(penalty cycles per TLB miss, traditional handler)\n")
    print(result.format_table())
    print("\nExpected shape: penalty grows roughly linearly with depth;")
    print("the slope is ~2 per stage (two pipeline refills per trap).")
    return result


if __name__ == "__main__":
    main()
