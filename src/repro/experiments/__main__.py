"""``python -m repro.experiments`` dispatches to the CLI."""

import sys

from repro.experiments.cli import main

sys.exit(main())
