"""Command-line entry point: ``python -m repro.experiments <id>``.

``repro-experiments all`` regenerates every table and figure of the
paper; individual ids (``fig2`` ... ``table4``) run one experiment.
``REPRO_SCALE`` scales run lengths (1 = quick, 4+ = measurement grade).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig2_pipeline,
    fig3_width,
    fig5_mechanisms,
    fig6_quickstart,
    fig7_multiprogram,
    table2_suite,
    table3_limits,
    table4_speedups,
)

EXPERIMENTS = {
    "fig2": fig2_pipeline.main,
    "fig3": fig3_width.main,
    "table2": table2_suite.main,
    "fig5": fig5_mechanisms.main,
    "table3": table3_limits.main,
    "fig6": fig6_quickstart.main,
    "fig7": fig7_multiprogram.main,
    "table4": table4_speedups.main,
}

#: Order used by ``all`` (motivation first, like the paper).
ALL_ORDER = ("fig2", "fig3", "table2", "fig5", "table3", "fig6", "fig7", "table4")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render figure results as ASCII bar charts",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per experiment grid (default: REPRO_JOBS "
        "or the CPU count); 1 forces the serial path",
    )
    parser.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help="engine backend for every grid (default: REPRO_ENGINE or "
        "'reference'); backends are verified bit-identical, so this "
        "changes wall-clock only, never results",
    )
    parser.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="resolve experiment grids against a running repro-serve "
        "sweep service instead of local worker processes (results are "
        "bit-identical; see docs/SERVICE.md)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None:
        import os

        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.engine is not None:
        import os

        from repro.engine import resolve_engine

        # Validate up front (argparse-style error on typos), then let the
        # environment carry the choice everywhere REPRO_JOBS already goes
        # (run_cells, pool workers, the result-cache key).
        try:
            os.environ["REPRO_ENGINE"] = resolve_engine(args.engine)
        except ValueError as exc:
            parser.error(str(exc))
    if args.server is not None:
        import os

        from repro.serve.client import ServeError, SweepClient

        # Probe up front so a dead or mistyped server is an argparse
        # error, not a mid-experiment stack trace; the environment then
        # carries the URL to every grid (experiments.common).
        try:
            SweepClient(args.server).stats()
        except (ServeError, OSError) as exc:
            parser.error(f"--server {args.server}: {exc}")
        os.environ["REPRO_SERVER"] = args.server

    names = ALL_ORDER if args.experiment == "all" else (args.experiment,)
    for name in names:
        start = time.time()
        print(f"\n{'=' * 72}\n[{name}]\n{'=' * 72}")
        result = EXPERIMENTS[name]()
        if args.chart:
            from repro.experiments.common import ExperimentResult
            from repro.experiments.report import bar_chart

            if isinstance(result, ExperimentResult):
                print()
                print(bar_chart(result, title=f"{name} (bar chart)"))
        print(f"\n({name} took {time.time() - start:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
