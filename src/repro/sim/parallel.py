"""Parallel experiment runner with an on-disk result cache.

Experiment grids (Figures 2-7, Tables 2-4) are embarrassingly parallel:
every cell is an independent ``Simulator`` run.  This module fans cells
out across processes and memoises finished cells on disk so that
re-running a figure -- or running a different figure that shares cells --
costs nothing.

A cell is described by a :class:`CellSpec`, which is picklable by
construction: the workload is a benchmark *name* (or a tuple of names
for a co-scheduled mix), never a ``Program`` object or factory closure.
Workers rebuild the programs from the name, which is cheap next to the
simulation itself.

Environment knobs:

``REPRO_JOBS``
    Worker process count for :func:`run_cells`.  ``1`` (or unset on a
    single-CPU machine) runs serially in-process.  Results are returned
    in spec order either way, and are bit-identical between the serial
    and parallel paths (each simulation is deterministic and fully
    isolated in its own process).
``REPRO_JOB_TIMEOUT``
    Per-cell wall-clock budget in seconds for pool workers.  A wave of
    cells that exceeds its collective budget is treated as hung: the
    pool is killed and the unfinished cells are retried (see
    ``REPRO_RETRIES``).  ``0``/unset disables the timeout.  The serial
    path never times out -- a cell that must finish always can.
``REPRO_RETRIES``
    How many times a cell lost to a crashed or hung worker is re-run in
    a fresh pool (default ``2``) before degrading to the in-process
    serial path.  Retries back off linearly (0.25 s per attempt).
``REPRO_ENGINE``
    Engine backend for every cell (``reference`` or ``batched``, see
    :mod:`repro.engine`).  Backends are differentially verified to be
    bit-identical, but the selection still keys the cache and follows
    cells into pool workers, so a result can always be traced to the
    backend that produced it.
``REPRO_BATCH``
    Cells per worker claim on the pool path (0/unset picks a balanced
    size).  A worker runs its whole claim through the selected engine
    backend as one lockstep batch; only cache *misses* are batched --
    warm cells are served straight from the cache first.
``REPRO_CACHE``
    Set to ``0`` to disable the on-disk result cache.
``REPRO_CACHE_DIR``
    Cache location (default ``~/.cache/repro-sim``).
``REPRO_WARM_CKPT``
    Set to ``1`` to share one warmup per workload family across cells
    via warm checkpoints (see :func:`derive_warm_cells`); the checkpoint
    hash becomes part of each cell's cache key.
``REPRO_CKPT_DIR``
    Where warm checkpoints live (default ``~/.cache/repro-ckpt``); see
    :func:`repro.checkpoint.checkpoint_dir`.

Cache keys cover the machine configuration, the workload, the run
lengths, *and* a fingerprint of the installed ``repro`` sources, so a
code change can never serve stale results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path

from repro.sim.config import MachineConfig
from repro.sim.simulator import SimResult, Simulator
from repro.workloads.suite import build_benchmark, build_mix


@dataclass
class CellSpec:
    """One independent simulation: a workload under a configuration.

    ``workload`` is a benchmark name (``"compress"``) or a tuple of
    names for a multiprogrammed mix.  The whole spec must stay picklable
    and deterministic -- it is both the unit of work shipped to worker
    processes and the cache key.
    """

    workload: str | tuple[str, ...]
    config: MachineConfig
    user_insts: int
    warmup_insts: int
    max_cycles: int
    #: Path of a shared warm checkpoint to attach instead of running the
    #: in-process warmup.  A *location*, so deliberately NOT part of the
    #: cache key; ``warm_hash`` (the checkpoint's content hash) is.
    warm_from: str | None = None
    warm_hash: str | None = None

    def build_programs(self):
        """Construct the program(s) this cell simulates."""
        if isinstance(self.workload, str):
            return build_benchmark(self.workload)
        return build_mix(tuple(self.workload))

    def cache_token(self) -> str:
        """A deterministic serialization of everything that defines
        this cell's result (the engine fingerprint is added on top by
        :class:`ResultCache`)."""
        return repr(
            (
                self.workload,
                dataclasses.asdict(self.config),
                self.user_insts,
                self.warmup_insts,
                self.max_cycles,
                self.warm_hash,
            )
        )


def _test_fault_hook() -> None:
    """Test-only worker sabotage, armed via ``REPRO_TEST_WORKER_FAULT``.

    The variable holds ``kill:<latch>`` or ``hang:<latch>``, where
    ``<latch>`` is a file path acting as a one-shot claim: the first
    cell to unlink it dies (``os._exit``) or hangs (sleeps past any
    job timeout).  Robustness tests use this to crash or wedge a real
    pool worker mid-grid and assert the runner recovers with identical
    results.  Unset in normal operation; never set this outside tests.
    """
    armed = os.environ.get("REPRO_TEST_WORKER_FAULT", "")
    if not armed:
        return
    action, _, latch = armed.partition(":")
    if not latch:
        return
    try:
        os.unlink(latch)
    except OSError:
        return  # latch already claimed (or never created): run normally
    if action == "kill":
        os._exit(43)
    if action == "hang":
        time.sleep(3600)


def run_cell(spec: CellSpec, engine: str | None = None) -> SimResult:
    """Run one cell to completion (in the current process) under the
    selected engine backend's cycle kernel (``REPRO_ENGINE`` when
    ``engine`` is None)."""
    _test_fault_hook()
    from repro.engine import core_class

    sim = Simulator(
        spec.build_programs(), spec.config, core_cls=core_class(engine)
    )
    if spec.warm_from is not None:
        # Attach the shared warm state and measure from there; the
        # warmup already happened once, in the checkpoint donor.
        from repro.checkpoint.warm import attach_warm

        attach_warm(sim, spec.warm_from)
        since = (
            sim.core.cycle,
            sim.mechanism.stats.committed_fills if sim.mechanism else 0,
            sim.core.stats.retired_user,
        )
        sim.core.run(spec.user_insts, spec.max_cycles)
        return sim.result(since=since)
    return sim.run(
        user_insts=spec.user_insts,
        warmup_insts=spec.warmup_insts,
        max_cycles=spec.max_cycles,
    )


def run_cell_batch(
    specs: list[CellSpec], engine: str | None = None
) -> list[SimResult]:
    """Run ``specs`` as one engine batch, in spec order.

    This is the batch analogue of :func:`run_cell`: the selected
    backend (``REPRO_ENGINE`` when ``engine`` is None) advances every
    cell in lockstep and cells complete raggedly.  Pool workers claim
    their cells through here, so a worker's whole claim shares one
    driver loop.
    """
    _test_fault_hook()
    from repro.engine import get_backend

    backend = get_backend(engine)
    backend.configure(specs)
    return backend.run()


def derive_warm_cells(specs: list[CellSpec]) -> list[CellSpec]:
    """Rewrite cells to share warm checkpoints per workload family.

    Cells that agree on workload, warmup length, and every
    mechanism-independent configuration knob form a *family*; each
    family's warmup runs once (here, serially, before the fan-out) and
    every member attaches to the saved warm state.  The checkpoint's
    content hash lands in each cell's cache key, so cached warm results
    can never be confused with cold ones or with a different warm state.
    """
    from repro.checkpoint.warm import ensure_warm_checkpoint, warm_token

    built: dict[str, tuple[Path, str]] = {}
    out: list[CellSpec] = []
    for spec in specs:
        if spec.warm_from is not None or not spec.warmup_insts:
            out.append(spec)
            continue
        token = warm_token(spec.workload, spec.warmup_insts, spec.config)
        if token not in built:
            built[token] = ensure_warm_checkpoint(
                spec.workload,
                spec.warmup_insts,
                spec.config,
                max_cycles=spec.max_cycles,
            )
        path, digest = built[token]
        out.append(
            dataclasses.replace(spec, warm_from=str(path), warm_hash=digest)
        )
    return out


#: Source-root -> digest.  Module-level (not ``lru_cache``) so the cache
#: is keyed by the *root* being hashed and tests can reset it; filled at
#: most once per root per process.
_FINGERPRINT_CACHE: dict[Path, str] = {}

#: How many full tree-hash passes this process has actually performed.
#: ``ResultCache`` consults the fingerprint on every ``get``/``put``
#: (and the sweep service on every request), so anything above one pass
#: per source root is a per-cell O(repo) regression; the counter makes
#: that assertable (see tests/sim/test_parallel.py).
_fingerprint_passes = 0


def engine_fingerprint() -> str:
    """Hash of the installed ``repro`` sources, computed once per process.

    Part of every cache key: any source change invalidates all cached
    results, which keeps the cache trustworthy across engine work.  The
    tree walk happens exactly once per source root per process; every
    subsequent call (one per ``ResultCache.get``/``put``) is a dict hit.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    cached = _FINGERPRINT_CACHE.get(root)
    if cached is not None:
        return cached
    global _fingerprint_passes
    _fingerprint_passes += 1
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    _FINGERPRINT_CACHE[root] = digest.hexdigest()[:16]
    return _FINGERPRINT_CACHE[root]


class ResultCache:
    """Pickle-per-cell result store keyed by (spec, engine) hashes.

    ``REPRO_CACHE=0`` is enforced *here*, inside :meth:`get` and
    :meth:`put` (a disabled cache misses every get and drops every put),
    so callers never need their own ``enabled()`` guard and can hold a
    cache object unconditionally.
    """

    #: Process-wide "manifest write failed" warning latch (once is
    #: signal, once per cell is noise).
    _manifest_warned = False

    def __init__(self, directory: str | Path | None = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro-sim"
            )
        self.directory = Path(directory)

    @staticmethod
    def enabled() -> bool:
        return os.environ.get("REPRO_CACHE", "1") != "0"

    def _path(self, spec: CellSpec) -> Path:
        # REPRO_FAULTS changes results without touching the spec (the
        # core falls back to it when config.faults is empty), so it must
        # key the cache too or faulted runs would be served clean cells.
        # The engine backend keys it as well: backends are verified
        # bit-identical, but a cached result must stay traceable to the
        # kernel that produced it (and a backend bug must never hide
        # behind another backend's cached cells).
        from repro.engine import resolve_engine

        faults_env = os.environ.get("REPRO_FAULTS", "")
        token = (
            f"{engine_fingerprint()}|{faults_env}|{resolve_engine()}|"
            f"{spec.cache_token()}"
        )
        name = hashlib.sha256(token.encode()).hexdigest()[:40]
        return self.directory / f"{name}.pkl"

    def get(self, spec: CellSpec) -> SimResult | None:
        if not self.enabled():
            return None
        path = self._path(spec)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def put(self, spec: CellSpec, result: SimResult) -> None:
        """Durable atomic publish: a cell is either fully cached or
        absent.

        The pickle is written to a pid-suffixed temp file, fsynced, and
        renamed into place, so a worker killed mid-write (or mid-crash
        of the whole machine) can never leave a truncated pickle under
        the final name -- :meth:`get` would deserialize garbage as a
        result.  Temp files orphaned by dead writers are pruned here.

        The manifest is strictly an audit trail: once the pickle has
        been renamed into place the cell *is* published, so no manifest
        failure -- ``OSError`` or otherwise (say, an unserializable
        counter surfacing in ``build_manifest``) -- may escape and crash
        the worker into a pointless retry of a finished cell.
        """
        if not self.enabled():
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._prune_stale_tmps()
            path = self._path(spec)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as fh:
                pickle.dump(result, fh)
                fh.flush()
                os.fsync(fh.fileno())
            tmp.replace(path)  # atomic: concurrent writers race benignly
        except OSError:
            return  # a read-only cache dir degrades to "no cache"
        try:
            self._write_manifest(spec, result, path)
        except Exception as exc:  # noqa: BLE001 - pickle already published
            if not isinstance(exc, OSError) and not ResultCache._manifest_warned:
                ResultCache._manifest_warned = True
                warnings.warn(
                    f"result-cache manifest write failed ({exc!r}); the "
                    "cached result itself is intact and manifest warnings "
                    "are reported once per process",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _prune_stale_tmps(self) -> None:
        """Remove temp files whose writer process is gone.

        A worker killed between open and rename leaks one
        ``*.tmp.<pid>`` file; the pid suffix makes ownership checkable,
        so any tmp whose pid is dead is garbage by construction."""
        try:
            for tmp in self.directory.glob("*.tmp.*"):
                pid_text = tmp.name.rsplit(".", 1)[-1]
                if not pid_text.isdigit():
                    continue
                pid = int(pid_text)
                if pid == os.getpid() or _pid_alive(pid):
                    continue
                try:
                    tmp.unlink()
                except OSError:
                    pass
        except OSError:
            pass

    def _manifest_cache_stats(self) -> dict | None:
        """Cache counters to embed in manifests (the content-addressed
        store in :mod:`repro.serve.store` overrides this); ``None``
        omits the block."""
        return None

    def _manifest_node_info(self) -> dict | None:
        """Cluster-node identity to embed in manifests (node id and
        owned/forwarded counters; overridden by the serve store in
        cluster mode); ``None`` omits the block."""
        return None

    def _write_manifest(self, spec: CellSpec, result: SimResult, path: Path) -> None:
        """Audit trail: a human-readable manifest beside each pickle.

        Like the pickle, the manifest is published by rename, and the
        pid-suffixed ``*.json.tmp.<pid>`` intermediate falls under the
        same liveness rule as pickle temps: :meth:`_prune_stale_tmps`
        removes it only once this writer is dead.  A failure mid-build
        unlinks our own tmp immediately rather than leaving it to
        outlive the process.
        """
        from repro.obs.manifest import build_manifest, write_manifest

        tmp = path.with_suffix(f".json.tmp.{os.getpid()}")
        try:
            with tmp.open("w") as fh:
                write_manifest(
                    fh,
                    build_manifest(
                        result,
                        spec.config,
                        workload=spec.workload,
                        checkpoint=getattr(result, "checkpoint", None),
                        cache_stats=self._manifest_cache_stats(),
                        node=self._manifest_node_info(),
                    ),
                )
            tmp.replace(path.with_suffix(".json"))
        except Exception:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def manifest_path(self, spec: CellSpec) -> Path:
        """Where :meth:`put` leaves the manifest for ``spec``."""
        return self._path(spec).with_suffix(".json")


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the CPU count.

    ``REPRO_JOBS`` must be a non-negative integer; ``0`` (or unset)
    means "use the CPU count".  Anything else raises :class:`ValueError`
    here, at configuration time, instead of crashing deep inside the
    worker pool.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a non-negative integer, got {raw!r}"
        ) from None
    if jobs < 0:
        raise ValueError(f"REPRO_JOBS must be non-negative, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` currently exists (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


#: Environment the parent must reproduce inside pool workers.
_WORKER_ENV_KEYS = (
    "REPRO_SANITIZE",
    "REPRO_FAULTS",
    "REPRO_ENGINE",
    "REPRO_TEST_WORKER_FAULT",
)


def _worker_env() -> dict[str, str]:
    return {
        key: os.environ[key] for key in _WORKER_ENV_KEYS if key in os.environ
    }


def _worker_init(env: dict[str, str]) -> None:
    """Reproduce the parent's behavioural environment in a pool worker.

    Spawn-based pools on some platforms start workers without the
    parent's (post-launch) environment mutations; cells must run under
    the same sanitizer and fault-injection settings either way, or
    sanitized (or faulted) parallel runs would silently check nothing.
    """
    for key in _WORKER_ENV_KEYS:
        if key in env:
            os.environ[key] = env[key]
        else:
            os.environ.pop(key, None)


def job_timeout() -> float:
    """Per-cell timeout in seconds from ``REPRO_JOB_TIMEOUT`` (0 = off)."""
    raw = os.environ.get("REPRO_JOB_TIMEOUT", "").strip()
    if not raw:
        return 0.0
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOB_TIMEOUT must be a number of seconds, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"REPRO_JOB_TIMEOUT must be non-negative, got {value}")
    return value


def max_retries() -> int:
    """Pool retry budget from ``REPRO_RETRIES`` (default 2)."""
    raw = os.environ.get("REPRO_RETRIES", "").strip()
    if not raw:
        return 2
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_RETRIES must be a non-negative integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"REPRO_RETRIES must be non-negative, got {value}")
    return value


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, including any wedged workers.

    ``shutdown(wait=True)`` would block behind a hung cell forever, so
    the workers are terminated first; ``cancel_futures`` stops queued
    work from restarting on them."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except OSError:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def pool_batch_size(pending: int, workers: int) -> int:
    """Cells per worker claim: ``REPRO_BATCH`` if set, else balanced.

    The automatic size aims for a few claims per worker (load balance
    against stragglers) while still giving each claim several cells to
    amortize one engine driver loop over; a single cell per claim is
    the floor either way.
    """
    raw = os.environ.get("REPRO_BATCH", "").strip()
    if raw:
        try:
            size = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_BATCH must be a positive integer, got {raw!r}"
            ) from None
        if size < 1:
            raise ValueError(f"REPRO_BATCH must be positive, got {size}")
        return size
    return max(1, min(16, pending // (workers * 4) or 1))


def _run_pool_attempt(
    todo: list[CellSpec],
    pending: list[int],
    out: list[SimResult | None],
    workers: int,
    timeout: float,
) -> list[int]:
    """One pool generation: run ``pending`` cells, fill ``out``, and
    return the indices still unfinished (crashed or hung).

    Workers claim *batches* of cells (:func:`pool_batch_size` each) and
    run every claim through the engine backend as one lockstep batch
    (:func:`run_cell_batch`).  A worker crash surfaces as
    ``BrokenProcessPool`` on every outstanding future -- those claims'
    cells stay pending and the *caller* decides whether another
    generation is allowed (retries re-batch from whatever is left).
    With a timeout, each cell still contributes ``timeout`` to its
    wave's collective deadline; when it passes, whatever is still
    running is treated as hung and the whole pool is killed (there is
    no portable way to kill one worker's job without killing the
    worker).
    """
    batch_size = pool_batch_size(len(pending), workers)
    batches = [
        pending[i : i + batch_size]
        for i in range(0, len(pending), batch_size)
    ]
    deadline = None
    if timeout > 0:
        waves = (len(batches) + workers - 1) // workers
        deadline = time.monotonic() + timeout * waves * batch_size
    pool = ProcessPoolExecutor(
        max_workers=min(workers, len(batches)),
        initializer=_worker_init,
        initargs=(_worker_env(),),
    )
    try:
        futures = {
            pool.submit(run_cell_batch, [todo[i] for i in batch]): batch
            for batch in batches
        }
        not_done = set(futures)
        while not_done:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break  # hung wave: unfinished cells stay pending
            done, not_done = wait(
                not_done, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not done:
                break  # timed out inside wait()
            for future in done:
                batch = futures[future]
                try:
                    batch_results = future.result()
                except Exception:
                    # This claim's worker died (or the pool broke under
                    # it); leave its cells unfinished for the retry loop.
                    continue
                for idx, result in zip(batch, batch_results):
                    out[idx] = result
    finally:
        _kill_pool(pool)
    return [i for i in pending if out[i] is None]


def run_cells(
    specs: list[CellSpec],
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[SimResult]:
    """Run every cell, in parallel when it pays, returning results in
    spec order.

    Cached results are returned without running anything; the rest fan
    out over ``jobs`` worker processes (serially for ``jobs <= 1`` or a
    single missing cell).  The pool path is self-healing: cells lost to
    a crashed worker or a hung wave (``REPRO_JOB_TIMEOUT``) are retried
    in a fresh pool up to ``REPRO_RETRIES`` times with linear backoff,
    and whatever still isn't done -- or any failure to parallelise at
    all, e.g. exec-based platforms that cannot pickle -- degrades to
    the in-process serial path rather than failing the experiment.
    Results are bit-identical across all of these paths: every cell is
    a deterministic, isolated simulation, so *where* it runs (first
    pool, retry pool, or serial) cannot change *what* it computes.
    """
    if jobs is None:
        # Cells are pure CPU: more workers than cores is pure overhead,
        # so an ambitious REPRO_JOBS degrades gracefully on small
        # machines.  An explicit ``jobs`` argument is taken literally.
        jobs = min(default_jobs(), os.cpu_count() or 1)
    if os.environ.get("REPRO_WARM_CKPT", "").strip() == "1":
        # Opt-in: share one warmup per workload family via checkpoints
        # instead of re-warming in every cell (see derive_warm_cells).
        specs = derive_warm_cells(specs)
    # REPRO_CACHE=0 is enforced inside get/put themselves (a disabled
    # cache misses every get and drops every put), so no guard is
    # needed here or at any other call site.
    if cache is None:
        cache = ResultCache()

    results: list[SimResult | None] = [None] * len(specs)
    missing: list[int] = []
    for idx, spec in enumerate(specs):
        hit = cache.get(spec)
        if hit is not None:
            results[idx] = hit
        else:
            missing.append(idx)

    if missing:
        todo = [specs[idx] for idx in missing]
        fresh: list[SimResult | None] = [None] * len(todo)
        workers = min(jobs, len(todo))
        if workers > 1:
            pending = list(range(len(todo)))
            timeout = job_timeout()
            for attempt in range(max_retries() + 1):
                if not pending:
                    break
                if attempt:
                    time.sleep(0.25 * attempt)  # linear backoff
                try:
                    pending = _run_pool_attempt(
                        todo, pending, fresh, workers, timeout
                    )
                except Exception:
                    break  # cannot parallelise at all: go serial
        # Serial completion: anything the pool never produced (no pool,
        # retries exhausted, or an unparallelisable platform).
        for pos, spec in enumerate(todo):
            if fresh[pos] is None:
                fresh[pos] = run_cell(spec)
        for idx, spec, result in zip(missing, todo, fresh):
            results[idx] = result
            cache.put(spec, result)

    return results  # type: ignore[return-value]
