"""Simulation driver: configuration, statistics, runner, and metrics."""

from repro.sim.config import FUPool, MachineConfig
from repro.sim.metrics import PenaltyResult, penalty_per_miss, run_pair
from repro.sim.simulator import SimResult, Simulator
from repro.sim.stats import SimStats
from repro.sim.trace import (
    ExceptionEpisode,
    PipelineTracer,
    TraceEvent,
    group_handler_episodes,
)

__all__ = [
    "FUPool",
    "MachineConfig",
    "PenaltyResult",
    "penalty_per_miss",
    "run_pair",
    "SimResult",
    "Simulator",
    "SimStats",
    "PipelineTracer",
    "TraceEvent",
    "ExceptionEpisode",
    "group_handler_episodes",
]
