"""The top-level simulator: wires programs, machine, and mechanism.

Typical use::

    from repro.sim import MachineConfig, Simulator
    from repro.workloads import build_benchmark

    program = build_benchmark("compress")
    sim = Simulator(program, MachineConfig(mechanism="multithreaded"))
    result = sim.run(user_insts=20_000)
    print(result.cycles, result.committed_fills)

Multiple programs run as co-scheduled SMT application threads (each in
its own address-space slice); ``config.idle_threads`` extra contexts are
created for exception handling.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.branch.unit import BranchPredictionUnit, BranchStats
from repro.exceptions import handler_length, make_mechanism
from repro.exceptions.handler_code import CAUSE_HANDLERS, emul_handler_length
from repro.exceptions.base import MechanismStats
from repro.isa.program import Program
from repro.memory.cache import CacheStats
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.main_memory import MainMemory
from repro.memory.page_table import PageTable
from repro.memory.tlb import PerfectTLB, TLB, TLBStats
from repro.pipeline.core import SMTCore
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import EventBus


@dataclass
class SimResult:
    """Everything a run produced, for metrics and experiment tables.

    ``cycles`` / ``committed_fills`` / ``retired_user`` cover the
    *measurement window* (after any warm-up); the raw whole-run counters
    remain available in ``stats``.
    """

    cycles: int
    mechanism: str
    stats: SimStats
    tlb: TLBStats
    branch: BranchStats
    mech: MechanismStats | None
    l1d: CacheStats
    l2: CacheStats
    committed_fills: int = 0
    retired_user: int = 0
    per_thread_user: list[int] = field(default_factory=list)
    # Checkpoint lineage ({"hash", "kind", "warmup_insts"}) when this run
    # started from a restored snapshot; None for cold runs.  Excluded from
    # equality: two runs with identical architecture stats are the same
    # result regardless of how their warm state was produced.
    checkpoint: dict | None = field(default=None, compare=False)

    @property
    def ipc(self) -> float:
        """User-instruction IPC over the measurement window."""
        return self.retired_user / self.cycles if self.cycles else 0.0

    @property
    def miss_rate_per_kilo_inst(self) -> float:
        """Committed TLB fills per 1000 retired user instructions."""
        if not self.retired_user:
            return 0.0
        return 1000.0 * self.committed_fills / self.retired_user


class Simulator:
    """Build and run one simulated machine."""

    def __init__(
        self,
        programs: Program | list[Program],
        config: MachineConfig | None = None,
        listeners: "EventBus | None" = None,
        core_cls: type[SMTCore] | None = None,
    ) -> None:
        if isinstance(programs, Program):
            programs = [programs]
        if not programs:
            raise ValueError("need at least one program")
        base_config = config or MachineConfig()
        total_contexts = len(programs) + base_config.idle_threads
        self.config = dataclasses.replace(base_config, num_threads=total_contexts)
        self.programs = programs

        self.memory = MainMemory()
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.page_table = PageTable(self.memory)
        if self.config.mechanism == "perfect":
            self.dtlb: TLB | PerfectTLB = PerfectTLB()
        else:
            self.dtlb = TLB(self.config.dtlb_entries)
        # The ITLB is opt-in (repro.scenarios): itlb_entries == 0 keeps
        # the seed machine, whose fetch path performs no translation.
        self.itlb: TLB | PerfectTLB | None = None
        if self.config.itlb_entries:
            if self.config.mechanism == "perfect":
                self.itlb = PerfectTLB()
            else:
                self.itlb = TLB(self.config.itlb_entries)
        self.bpu = BranchPredictionUnit()
        self.mechanism = make_mechanism(self.config.mechanism)
        # The engine seam: backends (repro.engine) inject their own core
        # class here; the default is the reference cycle kernel.
        self.core = (core_cls or SMTCore)(
            self.config,
            self.memory,
            self.hierarchy,
            self.dtlb,
            self.page_table,
            self.bpu,
            self.mechanism,
            itlb=self.itlb,
        )
        if listeners is not None:
            self.core.listeners = listeners
        self.checkpoint_lineage: dict | None = None
        for tid, program in enumerate(programs):
            self.core.load_program(tid, program)
            for segment in program.data_segments:
                self.page_table.map_range(segment.base, segment.size_bytes)
            for base, size in program.regions:
                self.page_table.map_range(base, size)
            if self.itlb is not None:
                # Fetch translation is live: the text range (including the
                # PAL area) needs valid PTEs for the ITLB handler's walk.
                self.page_table.map_range(0, len(program) * 4)
        # Window reservations use the *common-case* handler lengths
        # (perfect handler-length prediction, Table 1).
        self.core.handler_lengths["dtlb_miss"] = handler_length()
        if "emul" in self.core.pal_entries:
            self.core.handler_lengths["emul"] = emul_handler_length()
        for cause, (_, length_fn) in CAUSE_HANDLERS.items():
            if cause in ("dtlb_miss", "emul"):
                continue
            if cause in self.core.pal_entries:
                self.core.handler_lengths[cause] = length_fn()
        self._prewarm()

    def _prewarm(self) -> None:
        """Start from a checkpoint-like warm state (paper methodology):
        hot data structures and the touched page-table lines begin in L2."""
        for program in self.programs:
            for base, size in program.warm_ranges:
                self.hierarchy.l2.prewarm(base, size)
        for vpn in sorted(self.page_table.mapped_vpns()):
            self.hierarchy.l2.prewarm(self.page_table.pte_address(vpn), 8)

    def run(
        self,
        user_insts: int = 20_000,
        max_cycles: int = 10_000_000,
        warmup_insts: int = 3_000,
    ) -> SimResult:
        """Warm up, then measure.

        First runs ``warmup_insts`` user instructions per thread (TLB,
        L1, and predictors settle), then measures until every application
        thread has retired ``warmup_insts + user_insts``.
        """
        if warmup_insts:
            self.core.run(warmup_insts, max_cycles)
        start_cycle = self.core.cycle
        start_fills = (
            self.mechanism.stats.committed_fills if self.mechanism else 0
        )
        start_user = self.core.stats.retired_user
        self.core.run(user_insts, max_cycles)
        return self.result(
            since=(start_cycle, start_fills, start_user)
        )

    def step(self, cycles: int = 1) -> None:
        """Advance the machine by ``cycles`` cycles (for tests/examples)."""
        for _ in range(cycles):
            self.core.step()

    def quiesce(self) -> None:
        """Drain every in-flight instruction, leaving only architectural
        state (memory, caches, TLB, predictors, registers, counters).
        Used before saving a warm checkpoint that a *different* exception
        mechanism will attach to."""
        self.core.drain_in_flight(self.core.cycle)

    def save_checkpoint(self, path, kind: str = "exact", extra_meta=None) -> str:
        """Snapshot the complete machine state to ``path``; returns the
        checkpoint hash.  Only legal between ``step()`` boundaries."""
        from repro.checkpoint.state import save_simulator_checkpoint

        return save_simulator_checkpoint(self, path, kind=kind, extra_meta=extra_meta)

    def restore_checkpoint(self, path, warm: bool = False) -> dict:
        """Replace this machine's state with a checkpoint's; returns the
        checkpoint header.  ``warm=True`` keeps this simulator's own
        (fresh) exception-mechanism state so any mechanism can attach to
        a shared warm snapshot."""
        from repro.checkpoint.state import restore_simulator_checkpoint

        return restore_simulator_checkpoint(self, path, warm=warm)

    def result(self, since: tuple[int, int, int] = (0, 0, 0)) -> SimResult:
        start_cycle, start_fills, start_user = since
        fills = self.mechanism.stats.committed_fills if self.mechanism else 0
        return SimResult(
            cycles=self.core.cycle - start_cycle,
            mechanism=self.config.mechanism,
            stats=self.core.stats,
            tlb=self.dtlb.stats,
            branch=self.bpu.stats,
            mech=self.mechanism.stats if self.mechanism is not None else None,
            l1d=self.hierarchy.l1d.stats,
            l2=self.hierarchy.l2.stats,
            committed_fills=fills - start_fills,
            retired_user=self.core.stats.retired_user - start_user,
            per_thread_user=[t.retired_user for t in self.core.threads],
            checkpoint=self.checkpoint_lineage,
        )
