"""Engine throughput benchmark: ``python -m repro.sim.perfbench``.

Measures simulated user-instructions per wall-clock second on the
8-benchmark suite, once per exception mechanism, and writes the results
to ``BENCH_engine.json`` (see ``benchmarks/perf/README.md`` for the
protocol and the committed reference numbers).

The protocol is deliberately modest -- short runs, best-of-N timing --
so it finishes in about a minute on one core while still being
dominated (>95%) by the cycle loop rather than setup.  Construction
(program build, page-table setup, cache prewarm) is excluded from the
timed region.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.sim.config import MECHANISMS, MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.suite import BENCHMARKS

#: Timed run lengths (per benchmark).
USER_INSTS = 4_000
WARMUP_INSTS = 1_000
MAX_CYCLES = 5_000_000

#: Pre-optimization engine throughput on the reference host (commit
#: 69ca06f, the growth seed), measured with this same protocol
#: interleaved against the optimized engine on one core.  Kept in the
#: output so every ``BENCH_engine.json`` records the speedup it claims.
BASELINE_IPS = {
    "perfect": 16596.3,
    "traditional": 13916.1,
    "multithreaded": 13797.6,
    "hardware": 16496.0,
    "quickstart": 12550.4,
}


def measure_mechanism(mechanism: str, reps: int) -> float:
    """Best-of-``reps`` suite throughput (user instrs/sec) for one
    mechanism."""
    best = 0.0
    for _ in range(reps):
        insts = 0
        seconds = 0.0
        for name in BENCHMARKS:
            config = MachineConfig(mechanism=mechanism, idle_threads=1)
            sim = Simulator([BENCHMARKS[name].build(0)], config)
            start = time.perf_counter()
            result = sim.run(
                user_insts=USER_INSTS,
                max_cycles=MAX_CYCLES,
                warmup_insts=WARMUP_INSTS,
            )
            seconds += time.perf_counter() - start
            insts += result.retired_user
        best = max(best, insts / seconds)
    return best


def aggregate(per_mechanism: dict[str, float]) -> float:
    """Harmonic mean across mechanisms (equal suite weight each)."""
    return len(per_mechanism) / sum(1.0 / v for v in per_mechanism.values())


def run(reps: int = 3) -> dict:
    per_mechanism = {}
    for mechanism in MECHANISMS:
        per_mechanism[mechanism] = round(measure_mechanism(mechanism, reps), 1)
        print(f"{mechanism:<14}{per_mechanism[mechanism]:>10.1f} instrs/sec",
              flush=True)
    agg = round(aggregate(per_mechanism), 1)
    base = round(aggregate(BASELINE_IPS), 1)
    report = {
        "protocol": {
            "suite": list(BENCHMARKS),
            "user_insts": USER_INSTS,
            "warmup_insts": WARMUP_INSTS,
            "reps_best_of": reps,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "instrs_per_sec": per_mechanism,
        "aggregate": agg,
        "baseline": {
            "note": "pre-optimization engine (growth seed), same protocol",
            "instrs_per_sec": BASELINE_IPS,
            "aggregate": base,
        },
        "speedup_vs_baseline": {
            mech: round(per_mechanism[mech] / BASELINE_IPS[mech], 2)
            for mech in per_mechanism
            if mech in BASELINE_IPS
        },
        "aggregate_speedup": round(agg / base, 2),
    }
    return report


def check_gate(
    report: dict, baseline: dict, max_drop: float
) -> tuple[list[tuple[str, float, float, float, bool]], bool]:
    """Compare a fresh report against a committed baseline.

    Returns ``(rows, ok)`` where each row is ``(name, baseline_ips,
    measured_ips, delta_fraction, within_gate)``.  The gate trips when
    any mechanism -- or the aggregate -- drops by more than ``max_drop``
    (a fraction, e.g. ``0.15``).  Improvements never trip it.
    """
    rows = []
    ok = True
    base_ips = baseline.get("instrs_per_sec", {})
    for mech, now in report["instrs_per_sec"].items():
        base = base_ips.get(mech)
        if not base:
            continue
        delta = now / base - 1.0
        within = delta >= -max_drop
        ok = ok and within
        rows.append((mech, base, now, delta, within))
    base_agg = baseline.get("aggregate")
    if base_agg:
        delta = report["aggregate"] / base_agg - 1.0
        within = delta >= -max_drop
        ok = ok and within
        rows.append(("aggregate", base_agg, report["aggregate"], delta, within))
    return rows, ok


def format_gate_summary(
    rows: list[tuple[str, float, float, float, bool]],
    ok: bool,
    max_drop: float,
) -> str:
    """Render gate rows as a GitHub-flavored markdown table."""
    lines = [
        f"### Engine perf gate ({'PASS' if ok else 'FAIL'}, "
        f"max drop {max_drop:.0%})",
        "",
        "| mechanism | baseline (instrs/s) | measured (instrs/s) | delta | gate |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base, now, delta, within in rows:
        lines.append(
            f"| {name} | {base:.1f} | {now:.1f} | {delta:+.1%} "
            f"| {'ok' if within else '**REGRESSION**'} |"
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.sim.perfbench",
        description="Measure engine throughput and write BENCH_engine.json.",
    )
    parser.add_argument(
        "--reps", type=int, default=3, help="best-of repetitions (default 3)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_engine.json",
        help="output path (default BENCH_engine.json)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="committed BENCH_engine.json to gate against; exit 1 when "
        "any mechanism (or the aggregate) regresses past --max-drop",
    )
    parser.add_argument(
        "--max-drop", type=float, default=0.15, metavar="FRACTION",
        help="largest tolerated throughput drop vs the baseline "
        "(default 0.15)",
    )
    parser.add_argument(
        "--summary", metavar="FILE", default=None,
        help="append a markdown delta table here (defaults to "
        "$GITHUB_STEP_SUMMARY when set)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.max_drop < 1:
        parser.error(f"--max-drop must be in [0, 1), got {args.max_drop}")
    report = run(reps=args.reps)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\naggregate {report['aggregate']:.1f} instrs/sec "
          f"({report['aggregate_speedup']:.2f}x baseline) -> {args.output}")
    if args.baseline is None:
        return 0
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    rows, ok = check_gate(report, baseline, args.max_drop)
    summary = format_gate_summary(rows, ok, args.max_drop)
    print("\n" + summary, end="")
    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(summary + "\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
