"""Engine throughput benchmark: ``python -m repro.sim.perfbench``.

Measures simulated user-instructions per wall-clock second on the
8-benchmark suite, once per exception mechanism, and writes the results
to ``BENCH_engine.json`` (see ``benchmarks/perf/README.md`` for the
protocol and the committed reference numbers).

The protocol is deliberately modest -- short runs, best-of-N timing --
so it finishes in about a minute on one core while still being
dominated (>95%) by the cycle loop rather than setup.  Construction
(program build, page-table setup, cache prewarm) is excluded from the
timed region, and reps are isolated (fresh simulators, collected heap)
so best-of-N compares like against like.

``--engine`` selects which backend's cycle kernel is measured
(``REPRO_ENGINE`` by default); ``--engine-compare`` measures the
reference and batched kernels interleaved and writes
``BENCH_batched.json`` with the batched-vs-reference speedup, gated by
``--min-speedup`` in CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time

from repro.sim.config import MECHANISMS, MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.suite import BENCHMARKS

#: Timed run lengths (per benchmark).
USER_INSTS = 4_000
WARMUP_INSTS = 1_000
MAX_CYCLES = 5_000_000

#: Pre-optimization engine throughput on the reference host (commit
#: 69ca06f, the growth seed), measured with this same protocol
#: interleaved against the optimized engine on one core.  Kept in the
#: output so every ``BENCH_engine.json`` records the speedup it claims.
BASELINE_IPS = {
    "perfect": 16596.3,
    "traditional": 13916.1,
    "multithreaded": 13797.6,
    "hardware": 16496.0,
    "quickstart": 12550.4,
}


def measure_mechanism(mechanism: str, reps: int, core_cls=None) -> float:
    """Best-of-``reps`` suite throughput (user instrs/sec) for one
    mechanism, optionally under an engine backend's core class.

    Reps are isolated: every rep builds fresh programs and simulators,
    and starts from a collected heap -- without the collection, garbage
    left by rep N is collector work billed to rep N+1, so best-of-N
    would quietly favour whichever rep ran first (and, when two engines
    are interleaved, whichever engine ran first).
    """
    best = 0.0
    for _ in range(reps):
        gc.collect()
        insts = 0
        seconds = 0.0
        for name in BENCHMARKS:
            config = MachineConfig(mechanism=mechanism, idle_threads=1)
            sim = Simulator(
                [BENCHMARKS[name].build(0)], config, core_cls=core_cls
            )
            start = time.perf_counter()
            result = sim.run(
                user_insts=USER_INSTS,
                max_cycles=MAX_CYCLES,
                warmup_insts=WARMUP_INSTS,
            )
            seconds += time.perf_counter() - start
            insts += result.retired_user
        best = max(best, insts / seconds)
    return best


def aggregate(per_mechanism: dict[str, float]) -> float:
    """Harmonic mean across mechanisms (equal suite weight each)."""
    return len(per_mechanism) / sum(1.0 / v for v in per_mechanism.values())


def _protocol_block(reps: int, engine: str) -> dict:
    return {
        "suite": list(BENCHMARKS),
        "user_insts": USER_INSTS,
        "warmup_insts": WARMUP_INSTS,
        "reps_best_of": reps,
        "engine": engine,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def run(reps: int = 3, engine: str | None = None) -> dict:
    from repro.engine import core_class, resolve_engine

    engine = resolve_engine(engine)
    core_cls = core_class(engine)
    per_mechanism = {}
    for mechanism in MECHANISMS:
        per_mechanism[mechanism] = round(
            measure_mechanism(mechanism, reps, core_cls), 1
        )
        print(f"{mechanism:<14}{per_mechanism[mechanism]:>10.1f} instrs/sec",
              flush=True)
    agg = round(aggregate(per_mechanism), 1)
    base = round(aggregate(BASELINE_IPS), 1)
    report = {
        "protocol": _protocol_block(reps, engine),
        "instrs_per_sec": per_mechanism,
        "aggregate": agg,
        "baseline": {
            "note": "pre-optimization engine (growth seed), same protocol",
            "instrs_per_sec": BASELINE_IPS,
            "aggregate": base,
        },
        "speedup_vs_baseline": {
            mech: round(per_mechanism[mech] / BASELINE_IPS[mech], 2)
            for mech in per_mechanism
            if mech in BASELINE_IPS
        },
        "aggregate_speedup": round(agg / base, 2),
    }
    return report


def run_compare(reps: int = 3) -> dict:
    """Measure the reference and batched engines interleaved.

    Per mechanism, the reference suite pass and the batched suite pass
    run back to back (same process, same core, reps isolated), so the
    speedup column compares equal-resource measurements rather than two
    runs taken under different machine load.  The top-level
    ``instrs_per_sec``/``aggregate`` keys hold the *batched* numbers, so
    the report can also be gated with ``--baseline`` like any other.
    """
    from repro.engine import core_class

    batched_cls = core_class("batched")
    per_ref: dict[str, float] = {}
    per_bat: dict[str, float] = {}
    for mechanism in MECHANISMS:
        per_ref[mechanism] = round(
            measure_mechanism(mechanism, reps, None), 1
        )
        per_bat[mechanism] = round(
            measure_mechanism(mechanism, reps, batched_cls), 1
        )
        print(
            f"{mechanism:<14}reference {per_ref[mechanism]:>10.1f}  "
            f"batched {per_bat[mechanism]:>10.1f} instrs/sec  "
            f"(x{per_bat[mechanism] / per_ref[mechanism]:.2f})",
            flush=True,
        )
    agg_ref = round(aggregate(per_ref), 1)
    agg_bat = round(aggregate(per_bat), 1)
    return {
        "protocol": _protocol_block(reps, "batched-vs-reference"),
        "instrs_per_sec": per_bat,
        "aggregate": agg_bat,
        "reference": {
            "instrs_per_sec": per_ref,
            "aggregate": agg_ref,
        },
        "speedup_vs_reference": {
            mech: round(per_bat[mech] / per_ref[mech], 2) for mech in per_bat
        },
        "aggregate_speedup_vs_reference": round(agg_bat / agg_ref, 3),
    }


def check_gate(
    report: dict, baseline: dict, max_drop: float
) -> tuple[list[tuple[str, float, float, float, bool]], bool]:
    """Compare a fresh report against a committed baseline.

    Returns ``(rows, ok)`` where each row is ``(name, baseline_ips,
    measured_ips, delta_fraction, within_gate)``.  The gate trips when
    any mechanism -- or the aggregate -- drops by more than ``max_drop``
    (a fraction, e.g. ``0.15``).  Improvements never trip it.
    """
    rows = []
    ok = True
    base_ips = baseline.get("instrs_per_sec", {})
    for mech, now in report["instrs_per_sec"].items():
        base = base_ips.get(mech)
        if not base:
            continue
        delta = now / base - 1.0
        within = delta >= -max_drop
        ok = ok and within
        rows.append((mech, base, now, delta, within))
    base_agg = baseline.get("aggregate")
    if base_agg:
        delta = report["aggregate"] / base_agg - 1.0
        within = delta >= -max_drop
        ok = ok and within
        rows.append(("aggregate", base_agg, report["aggregate"], delta, within))
    return rows, ok


def format_gate_summary(
    rows: list[tuple[str, float, float, float, bool]],
    ok: bool,
    max_drop: float,
) -> str:
    """Render gate rows as a GitHub-flavored markdown table."""
    lines = [
        f"### Engine perf gate ({'PASS' if ok else 'FAIL'}, "
        f"max drop {max_drop:.0%})",
        "",
        "| mechanism | baseline (instrs/s) | measured (instrs/s) | delta | gate |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base, now, delta, within in rows:
        lines.append(
            f"| {name} | {base:.1f} | {now:.1f} | {delta:+.1%} "
            f"| {'ok' if within else '**REGRESSION**'} |"
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.sim.perfbench",
        description="Measure engine throughput and write BENCH_engine.json.",
    )
    parser.add_argument(
        "--reps", type=int, default=3, help="best-of repetitions (default 3)"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="output path (default BENCH_engine.json, or "
        "BENCH_batched.json with --engine-compare)",
    )
    parser.add_argument(
        "--engine", default=None, metavar="NAME",
        help="engine backend to measure (reference|batched; default "
        "$REPRO_ENGINE, else reference)",
    )
    parser.add_argument(
        "--engine-compare", action="store_true",
        help="measure reference and batched interleaved and report the "
        "batched-vs-reference speedup",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="FACTOR",
        help="with --engine-compare: exit 1 unless the batched engine's "
        "aggregate throughput is at least FACTOR times the reference's",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="committed BENCH_engine.json to gate against; exit 1 when "
        "any mechanism (or the aggregate) regresses past --max-drop",
    )
    parser.add_argument(
        "--max-drop", type=float, default=0.15, metavar="FRACTION",
        help="largest tolerated throughput drop vs the baseline "
        "(default 0.15)",
    )
    parser.add_argument(
        "--summary", metavar="FILE", default=None,
        help="append a markdown delta table here (defaults to "
        "$GITHUB_STEP_SUMMARY when set)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.max_drop < 1:
        parser.error(f"--max-drop must be in [0, 1), got {args.max_drop}")
    if args.min_speedup is not None and not args.engine_compare:
        parser.error("--min-speedup requires --engine-compare")
    if args.engine_compare and args.engine:
        parser.error("--engine-compare measures both engines; drop --engine")
    output = args.output
    gate_failed = False
    if args.engine_compare:
        output = output or "BENCH_batched.json"
        report = run_compare(reps=args.reps)
        speedup = report["aggregate_speedup_vs_reference"]
        line = (
            f"\nbatched {report['aggregate']:.1f} vs reference "
            f"{report['reference']['aggregate']:.1f} instrs/sec "
            f"(x{speedup:.3f} aggregate)"
        )
        if args.min_speedup is not None:
            ok = speedup >= args.min_speedup
            gate_failed = not ok
            line += (
                f" -- gate >= x{args.min_speedup:.2f}: "
                f"{'PASS' if ok else 'FAIL'}"
            )
        print(line + f" -> {output}")
    else:
        output = output or "BENCH_engine.json"
        report = run(reps=args.reps, engine=args.engine)
        print(f"\naggregate {report['aggregate']:.1f} instrs/sec "
              f"({report['aggregate_speedup']:.2f}x baseline) -> {output}")
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    if args.baseline is None:
        return 1 if gate_failed else 0
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    rows, ok = check_gate(report, baseline, args.max_drop)
    summary = format_gate_summary(rows, ok, args.max_drop)
    print("\n" + summary, end="")
    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(summary + "\n")
    return 0 if ok and not gate_failed else 1


if __name__ == "__main__":
    sys.exit(main())
