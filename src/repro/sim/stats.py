"""Simulation statistics.

:class:`SimStats` collects core-level event counts during a run; the
:class:`~repro.sim.simulator.Simulator` packages it together with the
branch, cache, TLB, and mechanism counters into a
:class:`~repro.sim.simulator.SimResult` at the end.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimStats:
    """Core pipeline event counters."""

    cycles: int = 0
    fetched: int = 0
    retired_user: int = 0
    retired_handler: int = 0
    squashed: int = 0
    mispredicts: int = 0
    dtlb_miss_events: int = 0
    emulation_events: int = 0
    store_forwards: int = 0
    overfetch_discarded: int = 0

    @property
    def retired_total(self) -> int:
        return self.retired_user + self.retired_handler

    @property
    def ipc(self) -> float:
        """User-instruction IPC (handler work is overhead, not progress)."""
        return self.retired_user / self.cycles if self.cycles else 0.0

    @property
    def fetch_waste_fraction(self) -> float:
        """Fraction of fetched instructions that never retired."""
        if not self.fetched:
            return 0.0
        return self.squashed / self.fetched

    def as_dict(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "fetched": self.fetched,
            "retired_user": self.retired_user,
            "retired_handler": self.retired_handler,
            "squashed": self.squashed,
            "mispredicts": self.mispredicts,
            "dtlb_miss_events": self.dtlb_miss_events,
            "store_forwards": self.store_forwards,
            "overfetch_discarded": self.overfetch_discarded,
            "ipc": self.ipc,
        }
