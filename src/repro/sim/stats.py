"""Simulation statistics.

:class:`SimStats` collects core-level event counts during a run; the
:class:`~repro.sim.simulator.Simulator` packages it together with the
branch, cache, TLB, and mechanism counters into a
:class:`~repro.sim.simulator.SimResult` at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class SimStats:
    """Core pipeline event counters."""

    cycles: int = 0
    fetched: int = 0
    retired_user: int = 0
    retired_handler: int = 0
    squashed: int = 0
    mispredicts: int = 0
    dtlb_miss_events: int = 0
    itlb_miss_events: int = 0
    emulation_events: int = 0
    unaligned_events: int = 0
    store_forwards: int = 0
    overfetch_discarded: int = 0
    # Per-cause exception accounting (docs/SCENARIOS.md), keyed by the
    # exception-cause string ("dtlb_miss", "itlb_miss", "unaligned",
    # "emul", "brev", "swint").  Maintained by the mechanisms, which see
    # every trap regardless of which engine kernel is driving the core.
    cause_taken: dict[str, int] = field(default_factory=dict)
    cause_squashes: dict[str, int] = field(default_factory=dict)
    cause_handler_cycles: dict[str, int] = field(default_factory=dict)

    @property
    def retired_total(self) -> int:
        return self.retired_user + self.retired_handler

    @property
    def ipc(self) -> float:
        """User-instruction IPC (handler work is overhead, not progress)."""
        return self.retired_user / self.cycles if self.cycles else 0.0

    @property
    def fetch_waste_fraction(self) -> float:
        """Fraction of fetched instructions that never retired."""
        if not self.fetched:
            return 0.0
        return self.squashed / self.fetched

    def as_dict(self) -> dict[str, float]:
        """Every counter field plus every derived property.

        Built by introspection so a new field can never be silently
        dropped from reports and manifests (a hand-maintained version of
        this dict once omitted ``emulation_events`` and the derived
        totals).
        """
        out: dict[str, float] = {f.name: getattr(self, f.name) for f in fields(self)}
        for name in dir(type(self)):
            if isinstance(getattr(type(self), name), property):
                out[name] = getattr(self, name)
        return out
