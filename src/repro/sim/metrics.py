"""The paper's metrics.

The central metric is **penalty cycles per TLB miss** (Section 3): run a
workload twice -- once with the mechanism under study, once with a
perfect TLB -- and divide the cycle difference by the number of committed
TLB fills.  Unlike CPI contribution, this normalises away each
benchmark's miss *rate* and exposes the cost of each miss, which is what
the exception architecture actually changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.isa.program import Program
from repro.sim.config import MachineConfig
from repro.sim.simulator import SimResult, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.attribution import AttributionTable


@dataclass
class PenaltyResult:
    """Penalty-per-miss comparison of one mechanism against perfect."""

    mechanism: str
    cycles: int
    perfect_cycles: int
    fills: int
    retired_user: int
    #: Table-3 cycle breakdown of the mechanism run; filled only when
    #: :func:`run_pair` ran with ``attribute=True``.
    attribution: "AttributionTable | None" = None

    @property
    def penalty_cycles(self) -> int:
        return self.cycles - self.perfect_cycles

    @property
    def penalty_per_miss(self) -> float:
        if not self.fills:
            return 0.0
        return self.penalty_cycles / self.fills

    @property
    def speedup_over(self) -> Callable[["PenaltyResult"], float]:
        """``result.speedup_over(other)``: other.cycles / self.cycles."""
        return lambda other: other.cycles / self.cycles if self.cycles else 0.0

    @property
    def relative_overhead(self) -> float:
        """Fraction of execution time attributable to TLB handling."""
        if not self.cycles:
            return 0.0
        return self.penalty_cycles / self.cycles


def penalty_per_miss(result: SimResult, perfect: SimResult) -> PenaltyResult:
    """Package the paper's metric from two finished runs."""
    return PenaltyResult(
        mechanism=result.mechanism,
        cycles=result.cycles,
        perfect_cycles=perfect.cycles,
        fills=result.committed_fills,
        retired_user=result.stats.retired_user,
    )


def run_pair(
    program_factory: Callable[[], Program | list[Program]],
    config: MachineConfig,
    user_insts: int,
    max_cycles: int = 10_000_000,
    attribute: bool = False,
) -> tuple[SimResult, SimResult, PenaltyResult]:
    """Run a workload under ``config`` and under a perfect TLB.

    ``program_factory`` is invoked once per run so each simulation gets a
    fresh, identical program image (runs must not share mutable state).
    With ``attribute=True`` the mechanism run carries a
    :class:`~repro.obs.attribution.CycleAttribution` subscriber and the
    returned penalty's ``attribution`` holds its Table-3 breakdown.
    Returns ``(mechanism_result, perfect_result, penalty)``.
    """
    sim = Simulator(program_factory(), config)
    attribution = None
    if attribute:
        from repro.obs.attribution import CycleAttribution

        attribution = CycleAttribution.attach(sim.core)
    mech_result = sim.run(user_insts, max_cycles)
    perfect_config = config.with_mechanism("perfect")
    perfect_result = Simulator(program_factory(), perfect_config).run(
        user_insts, max_cycles
    )
    penalty = penalty_per_miss(mech_result, perfect_result)
    if attribution is not None:
        penalty.attribution = attribution.finalize(sim.core.cycle)
    return mech_result, perfect_result, penalty
