"""Machine configuration.

Defaults reproduce Table 1 of the paper: an 8-wide dynamically scheduled
SMT with a 128-entry shared window, 7 stages between fetch and execute
(3 fetch + 1 decode + 1 schedule + 2 register read), the Table 1
functional-unit pool, memory system, and a 64-entry DTLB.

Figure 2 sweeps the pipeline depth (3/7/11) via
:meth:`MachineConfig.with_pipe_depth`; Figure 3 sweeps width/window
(2/32, 4/64, 8/128) via :meth:`MachineConfig.with_width`, which also
scales the FU pool the way the paper scales the machine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.exceptions.limits import LimitKnobs
from repro.isa.instructions import FU_GROUPS, FUClass
from repro.memory.hierarchy import HierarchyConfig

__all__ = ["FU_GROUPS", "FUPool", "MachineConfig", "MECHANISMS"]

#: The exception-handling mechanisms a machine can be configured with.
MECHANISMS = ("perfect", "traditional", "multithreaded", "hardware", "quickstart")


@dataclass
class FUPool:
    """Per-cycle issue capacity of each functional-unit group.

    Units are fully pipelined, so capacity equals issue bandwidth per
    cycle.  The Table 1 pool for the 8-wide machine is 8 integer ALUs,
    3 integer mult/div, 3 FP add/mult, 1 FP div/sqrt, and 3 load/store
    ports.
    """

    alu: int = 8
    muldiv: int = 3
    fp: int = 3
    fpdiv: int = 1
    mem: int = 3

    @classmethod
    def for_width(cls, width: int) -> "FUPool":
        """Scale the Table 1 pool to a narrower machine (Fig. 3 sweep)."""
        if width >= 8:
            return cls()
        if width == 4:
            return cls(alu=4, muldiv=2, fp=2, fpdiv=1, mem=2)
        if width == 2:
            return cls(alu=2, muldiv=1, fp=1, fpdiv=1, mem=1)
        raise ValueError(f"unsupported width {width} (use 2, 4, or 8)")

    def capacity(self, group: str) -> int:
        return getattr(self, group)


@dataclass
class MachineConfig:
    """Every knob of the simulated machine (defaults: Table 1)."""

    # Core shape.
    width: int = 8
    window_size: int = 128
    num_threads: int = 2
    #: Cycles an instruction spends in the fetch pipeline.
    fetch_latency: int = 3
    decode_latency: int = 1
    #: Schedule (1) + register read (2) delay after window insertion.
    post_insert_delay: int = 3
    #: Per-thread fetch buffer capacity (also holds quick-start images).
    fetch_buffer_size: int = 16
    #: Fetch chooser among application threads: "icount" or "round_robin".
    chooser: str = "icount"

    fu_pool: FUPool | None = None
    store_latency: int = 2

    # Memory system.
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    dtlb_entries: int = 64
    #: Instruction-TLB entries; 0 (the default) models the seed machine's
    #: always-hit instruction fetch (no ITLB modeled, no itlb_miss cause).
    itlb_entries: int = 0
    #: Trap non-privileged 8-byte integer loads whose effective address is
    #: not 8-aligned into the ``unaligned`` fixup handler.  Off by default:
    #: the seed machine force-aligns every effective address silently.
    align_check: bool = False

    # Exception architecture.
    mechanism: str = "multithreaded"
    #: Idle thread contexts available for exception handling (the paper's
    #: multithreaded(1) vs multithreaded(3)); app threads come on top.
    idle_threads: int = 1
    #: Hardware-walker concurrency (misses walked in parallel).
    walker_entries: int = 8
    #: Hardware-walker FSM overhead per walk, on top of the PTE load's
    #: cache latency (state sequencing + the nested lookup a
    #: virtually-mapped page table needs).
    walker_latency: int = 4
    #: Give handler threads fetch priority over application threads.
    handler_fetch_priority: bool = True
    #: Learn which exception types are worth spawning for (Section 4.3:
    #: a small predictor tracks hard-exception reversions so exceptions
    #: that always revert skip the multithreaded attempt).
    use_spawn_predictor: bool = False
    #: Stop handler fetch exactly at the handler's end (perfect handler
    #: length prediction, the Table 1 assumption).  When False the handler
    #: thread overfetches past ``reti`` until it is decoded, wasting fetch
    #: bandwidth (the ~0.5 cycles/miss effect discussed in Sec. 4.4).
    predict_handler_length: bool = True
    #: Table 3 limit-study switches.
    limits: LimitKnobs = field(default_factory=LimitKnobs)
    #: Skip idle cycles by jumping the clock to the next wakeup event.
    #: Cycle accounting is bit-identical either way (see
    #: ``docs/PERFORMANCE.md``); disable only to cross-check that claim.
    fast_forward: bool = True
    #: Attach the runtime invariant checker (docs/ANALYSIS.md): splice
    #: ordering, retirement order, uop lifecycle, window occupancy.  Off
    #: by default and free when off; ``REPRO_SANITIZE=1`` also enables it.
    sanitize: bool = False
    #: Deterministic fault-injection spec (docs/ROBUSTNESS.md), e.g.
    #: ``"seed:42,force_miss:50,mem_delay:20:60"``.  Empty string means
    #: no injector is built and the machine is bit-identical to one
    #: without the faults package; ``REPRO_FAULTS`` also enables it.
    faults: str = ""

    def __post_init__(self) -> None:
        if self.fu_pool is None:
            self.fu_pool = FUPool.for_width(self.width)
        if self.mechanism not in MECHANISMS:
            raise ValueError(
                f"unknown mechanism {self.mechanism!r}; pick one of {MECHANISMS}"
            )
        if self.faults:
            # Validate eagerly so a bad spec fails at configuration time,
            # not mid-simulation (lazy import keeps layering: sim does not
            # need repro.faults unless faults are actually armed).
            from repro.faults.config import parse_faults

            parse_faults(self.faults)
        if self.chooser not in ("icount", "round_robin"):
            raise ValueError(f"unknown chooser {self.chooser!r}")
        if self.width < 1 or self.window_size < 4:
            raise ValueError("machine too narrow to run")
        if self.num_threads < 1:
            raise ValueError("need at least one thread context")

    # ------------------------------------------------------------------
    @property
    def pipe_depth(self) -> int:
        """Stages between fetch and execute (the min mispredict penalty)."""
        return self.fetch_latency + self.decode_latency + self.post_insert_delay

    def with_pipe_depth(self, depth: int) -> "MachineConfig":
        """Clone with a different fetch->execute depth (Fig. 2 sweep).

        The depth is split as in the paper's nominal machine: roughly half
        fetch, one decode, the rest schedule + register read.  Depth 3
        gives 1+1+1, depth 7 gives 3+1+3, depth 11 gives 5+1+5.
        """
        if depth < 3:
            raise ValueError("pipeline needs at least fetch+decode+schedule")
        fetch = (depth - 1) // 2
        post = depth - 1 - fetch
        return dataclasses.replace(
            self, fetch_latency=fetch, decode_latency=1, post_insert_delay=post
        )

    def with_width(self, width: int, window: int | None = None) -> "MachineConfig":
        """Clone with a different width/window (Fig. 3 sweep: 2/32, 4/64, 8/128)."""
        if window is None:
            window = {2: 32, 4: 64, 8: 128}.get(width)
            if window is None:
                raise ValueError(f"no default window for width {width}")
        return dataclasses.replace(
            self, width=width, window_size=window, fu_pool=FUPool.for_width(width)
        )

    def with_mechanism(self, mechanism: str, idle_threads: int | None = None) -> "MachineConfig":
        """Clone with a different exception mechanism."""
        kwargs: dict = {"mechanism": mechanism}
        if idle_threads is not None:
            kwargs["idle_threads"] = idle_threads
        return dataclasses.replace(self, **kwargs)

    def fu_latency(self, op_fu: FUClass) -> int:
        """Execution latency of a functional-unit class."""
        if op_fu is FUClass.STORE:
            return self.store_latency
        return FU_GROUPS[op_fu][1]

    @staticmethod
    def fu_group(op_fu: FUClass) -> str:
        """Pool group an FU class issues to."""
        return FU_GROUPS[op_fu][0]
