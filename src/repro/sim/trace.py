"""Pipeline tracing: observe what the machine does, cycle by cycle.

A :class:`PipelineTracer` subscribes to the core's observability event
bus (:mod:`repro.obs.events`) and records :class:`TraceEvent` rows for
the kinds it was asked to keep.  It powers the examples'
retirement-order dumps, debugging sessions, and the tests that assert
ordering properties without reaching into core internals.

Event kinds and the fields each populates (all events carry ``kind``,
``cycle``, ``tid``):

``fetch``      ``seq``, ``pc``, ``op``, ``is_handler``
``issue``      ``seq``, ``pc``, ``op``, ``is_handler``
``retire``     ``seq``, ``pc``, ``op``, ``is_handler``
``squash``     ``seq``, ``pc``, ``op``, ``is_handler``
``exception``  ``seq``, ``pc``, and the exception type in ``op``
               (``dtlb_miss`` / ``emul``), emitted at detection,
               before the mechanism reacts

Tracers detach by unsubscribing, so any number may observe one core and
they may attach/detach in any order -- detaching one never disturbs
another (the historical monkey-patch implementation restored saved
method pointers and could resurrect a stale spy on out-of-order
detach).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.events import ObsEvent, attach_bus
from repro.pipeline.core import SMTCore


@dataclass(frozen=True)
class TraceEvent:
    kind: str
    cycle: int
    tid: int
    seq: int
    pc: int
    op: str
    is_handler: bool = False


@dataclass
class ExceptionEpisode:
    """One exception's life: detection to completion."""

    start_cycle: int
    end_cycle: int
    handler_instructions: int
    tid: int = -1

    @property
    def latency(self) -> int:
        return self.end_cycle - self.start_cycle


def group_handler_episodes(
    events: Sequence[TraceEvent],
) -> list[ExceptionEpisode]:
    """Split a retirement stream into handler episodes.

    An episode is the spliced block of handler retirements for one
    exception.  Within the stream a new episode starts at a handler
    retire that (a) follows a non-handler retire, (b) runs on a
    different thread than the previous handler retire, or (c) follows a
    retired ``reti`` -- the handler terminator, which is what separates
    back-to-back episodes that the splice leaves with no user
    retirement in between.  Traditional traps run their handler on the
    faulting (often tid-0) thread, so no thread id is excluded.
    """
    episodes: list[ExceptionEpisode] = []
    current: list[TraceEvent] = []

    def flush() -> None:
        if current:
            episodes.append(
                ExceptionEpisode(
                    start_cycle=current[0].cycle,
                    end_cycle=current[-1].cycle,
                    handler_instructions=len(current),
                    tid=current[0].tid,
                )
            )
            current.clear()

    for event in events:
        if event.kind != "retire" or not event.is_handler:
            flush()
            continue
        if current and event.tid != current[-1].tid:
            flush()
        current.append(event)
        if event.op == "reti":
            flush()
    flush()
    return episodes


class PipelineTracer:
    """Records core events; detach unsubscribes from the bus."""

    def __init__(self, core: SMTCore, kinds: Iterable[str] = ("retire",)) -> None:
        self.core = core
        self.kinds = frozenset(kinds)
        self.events: list[TraceEvent] = []
        self._bus = attach_bus(core)
        self._bus.subscribe(self)

    # ------------------------------------------------------------------
    def on_event(self, event: ObsEvent) -> None:
        kind = event.kind
        if kind not in self.kinds:
            return
        # Exception detections carry their type where ops go elsewhere.
        op = event.exc_type if kind == "exception" else event.op
        self.events.append(
            TraceEvent(
                kind, event.cycle, event.tid, event.seq, event.pc, op,
                event.is_handler,
            )
        )

    def detach(self) -> None:
        """Stop recording.  Safe in any order across nested tracers."""
        self._bus.unsubscribe(self)

    def __enter__(self) -> "PipelineTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def retirement_order(self) -> list[TraceEvent]:
        return self.of_kind("retire")

    def handler_episodes(self) -> list[ExceptionEpisode]:
        """Handler-retirement episodes (splice occurrences)."""
        return group_handler_episodes(self.retirement_order())

    def format(self, limit: int = 50) -> str:
        """Human-readable event listing."""
        lines = []
        for event in self.events[:limit]:
            tag = "PAL" if event.is_handler else "   "
            lines.append(
                f"cycle {event.cycle:6d}  {event.kind:7s} T{event.tid} "
                f"{tag} seq={event.seq:<6d} pc={event.pc:<5d} {event.op}"
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
