"""Pipeline tracing: observe what the machine does, cycle by cycle.

A :class:`PipelineTracer` attaches to a core non-invasively (it wraps
the retire/issue/squash entry points) and records typed events.  It
powers the examples' retirement-order dumps, debugging sessions, and
the tests that assert ordering properties without reaching into core
internals.

Event kinds:

``retire``   (cycle, tid, seq, pc, op, is_handler)
``issue``    (cycle, tid, seq, pc, op)
``squash``   (cycle, tid, seq, pc, op)
``exception``(cycle, tid, seq, kind)   -- via mechanism stats deltas
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.pipeline.core import SMTCore


@dataclass(frozen=True)
class TraceEvent:
    kind: str
    cycle: int
    tid: int
    seq: int
    pc: int
    op: str
    is_handler: bool = False


@dataclass
class ExceptionEpisode:
    """One exception's life: detection to completion."""

    start_cycle: int
    end_cycle: int
    handler_instructions: int

    @property
    def latency(self) -> int:
        return self.end_cycle - self.start_cycle


class PipelineTracer:
    """Records core events; detach restores the original methods."""

    def __init__(self, core: SMTCore, kinds: Iterable[str] = ("retire",)) -> None:
        self.core = core
        self.kinds = frozenset(kinds)
        self.events: list[TraceEvent] = []
        self._originals: dict[str, object] = {}
        self._attach()

    # ------------------------------------------------------------------
    def _attach(self) -> None:
        core = self.core
        if "retire" in self.kinds:
            self._originals["_do_retire"] = core.__dict__.get("_do_retire")

            def retire_spy(thread, uop, now, _orig=core._do_retire):
                self.events.append(
                    TraceEvent(
                        "retire", now, thread.tid, uop.seq, uop.pc,
                        uop.inst.op.value, uop.is_handler,
                    )
                )
                return _orig(thread, uop, now)

            core._do_retire = retire_spy
        if "issue" in self.kinds:
            self._originals["_issue"] = core.__dict__.get("_issue")

            def issue_spy(uop, now, _orig=core._issue):
                result = _orig(uop, now)
                if uop.issued:
                    self.events.append(
                        TraceEvent(
                            "issue", now, uop.thread_id, uop.seq, uop.pc,
                            uop.inst.op.value, uop.is_handler,
                        )
                    )
                return result

            core._issue = issue_spy
        if "squash" in self.kinds:
            self._originals["_squash_uop"] = core.__dict__.get("_squash_uop")

            def squash_spy(thread, victim, now, _orig=core._squash_uop):
                self.events.append(
                    TraceEvent(
                        "squash", now, thread.tid, victim.seq, victim.pc,
                        victim.inst.op.value, victim.is_handler,
                    )
                )
                return _orig(thread, victim, now)

            core._squash_uop = squash_spy

    def detach(self) -> None:
        """Restore the core's pre-attach state.

        The spies live in the instance ``__dict__``; we saved what (if
        anything) was there before -- ``None`` means attribute lookup fell
        through to the class method, an earlier tracer's spy otherwise.
        """
        for name, previous in self._originals.items():
            if previous is None:
                self.core.__dict__.pop(name, None)
            else:
                self.core.__dict__[name] = previous
        self._originals.clear()

    def __enter__(self) -> "PipelineTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def retirement_order(self) -> list[TraceEvent]:
        return self.of_kind("retire")

    def handler_episodes(self) -> list[ExceptionEpisode]:
        """Contiguous handler-retirement episodes (splice occurrences)."""
        episodes: list[ExceptionEpisode] = []
        current: list[TraceEvent] = []
        for event in self.retirement_order():
            if event.is_handler and event.tid != 0:
                current.append(event)
            elif current:
                episodes.append(
                    ExceptionEpisode(
                        start_cycle=current[0].cycle,
                        end_cycle=current[-1].cycle,
                        handler_instructions=len(current),
                    )
                )
                current = []
        if current:
            episodes.append(
                ExceptionEpisode(
                    start_cycle=current[0].cycle,
                    end_cycle=current[-1].cycle,
                    handler_instructions=len(current),
                )
            )
        return episodes

    def format(self, limit: int = 50) -> str:
        """Human-readable event listing."""
        lines = []
        for event in self.events[:limit]:
            tag = "PAL" if event.is_handler else "   "
            lines.append(
                f"cycle {event.cycle:6d}  {event.kind:7s} T{event.tid} "
                f"{tag} seq={event.seq:<6d} pc={event.pc:<5d} {event.op}"
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
