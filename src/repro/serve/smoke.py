"""The service smoke check: N concurrent clients, one overlapping grid.

This is the executable form of the service's contract (run in CI as
``python -m repro.serve smoke``):

* **in-flight dedupe** -- every client submits the same grid at once,
  so the number of cells actually simulated must be the unique grid
  size, strictly below the number requested;
* **store effectiveness** -- the follow-up sweep after the storm is
  served entirely from the store, and ``/stats`` reports the hits;
* **consistency** -- every client sees identical cycles for identical
  cells;
* **bit-identity** -- results reconstructed from the service's pickled
  payload equal running the same cells serially in-process
  (:func:`~repro.sim.parallel.run_cell`), the same oracle the parallel
  runner's determinism tests use.

Everything runs in one process (server on the loop, simulations in its
worker pools), so the check needs no orchestration beyond asyncio.

With ``--nodes N`` (N > 1) the smoke becomes the *cluster* smoke
(:func:`run_cluster_smoke`): N real server processes under
:class:`~repro.serve.cluster.LocalCluster`, the whole storm aimed at
one node so consistent-hash forwarding must carry most of the grid,
plus a persistent job that gets its node SIGKILLed mid-drain and must
finish after restart with zero lost and zero duplicated cells.

Both smokes run hermetically: the engine backend is resolved once
(``--engine`` flag > ``REPRO_ENGINE`` > reference) and pinned into the
server/cluster *and* this process before anything starts, so the
serial in-process oracle always runs the same kernel the service did
and a stray parent environment cannot skew the check.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field


@dataclass
class SmokeReport:
    """What the smoke run saw (JSON-printed by the CLI)."""

    clients: int = 0
    nodes: int = 1
    engine_backend: str = ""
    grid_cells: int = 0
    cells_requested: int = 0
    cells_simulated: int = 0
    deduped_total: int = 0
    cache_hits: int = 0
    inflight_hits: int = 0
    warm_sweep_cached: int = 0
    # Cluster-mode extras (zero in the single-node smoke).
    cells_forwarded: int = 0
    forward_fallbacks: int = 0
    job_cells: int = 0
    job_done_before_kill: int = 0
    job_done: int = 0
    job_duplicate_done: int = 0
    failures: list[str] = field(default_factory=list)

    def check(self, ok: bool, message: str) -> None:
        if not ok:
            self.failures.append(message)


async def run_smoke(args) -> SmokeReport:
    """Start a server, fire ``args.clients`` concurrent sweeps, assert
    the dedupe/caching/consistency contract, and return the report."""
    import asyncio

    from repro.serve.cli import _build_server
    from repro.serve.client import async_sweep, decode_result
    from repro.serve.loadgen import hermetic_env
    from repro.sim.parallel import run_cell
    from repro.serve.service import expand_sweep

    # Hermetic run: resolve the backend now and pin it (plus the cache)
    # into this process before the server -- and its pool workers --
    # exist, so nothing is silently inherited from the caller.
    env, engine = hermetic_env(getattr(args, "engine", None))
    os.environ.update(env)

    report = SmokeReport(clients=args.clients, engine_backend=engine)
    payload = {
        "workloads": args.workload,
        "mechanisms": args.mechanism,
        "user_insts": args.insts,
        "warmup_insts": args.warmup,
        "max_cycles": 2_000_000,
        "include_results": False,
    }
    specs, _ = expand_sweep(payload)
    report.grid_cells = len(specs)

    args.port = 0  # always ephemeral: the smoke must not collide
    server = _build_server(args)
    await server.start()
    try:
        # One reference client carries full payloads for the
        # bit-identity check; the other clients are metric-only.
        storm = [
            async_sweep(
                server.host,
                server.port,
                {**payload, "include_results": i == 0},
            )
            for i in range(args.clients)
        ]
        streams = await asyncio.gather(*storm)

        stats = server.service.stats_dict()
        report.cells_requested = stats["cells_requested"]
        report.cells_simulated = stats["cells_simulated"]
        report.cache_hits = stats["cache"]["hits"]
        report.inflight_hits = stats["cache"]["inflight_hits"]

        # Every client finished its whole grid and said so.
        for i, events in enumerate(streams):
            cells = [e for e in events if e["kind"] == "cell"]
            summaries = [e for e in events if e["kind"] == "summary"]
            report.check(
                len(cells) == len(specs) and len(summaries) == 1,
                f"client {i} saw {len(cells)} cells / "
                f"{len(summaries)} summaries (wanted {len(specs)}/1)",
            )
            report.deduped_total += sum(c["deduped"] for c in cells)

        # Dedupe collapsed the storm: the grid was simulated once-ish,
        # far below clients x cells.
        report.check(
            report.cells_simulated < report.cells_requested,
            f"no dedupe: simulated {report.cells_simulated} of "
            f"{report.cells_requested} requested",
        )
        report.check(
            report.cells_simulated >= len(specs),
            f"only {report.cells_simulated} cells simulated for a "
            f"{len(specs)}-cell grid",
        )
        report.check(
            report.cache_hits + report.inflight_hits > 0,
            "store reported neither cache hits nor in-flight dedupes",
        )

        # Identical cells resolved to identical cycles for every client.
        cycles: dict[tuple, set[int]] = {}
        for events in streams:
            for event in events:
                if event["kind"] != "cell":
                    continue
                key = (str(event["workload"]), event["mechanism"])
                cycles.setdefault(key, set()).add(event["cycles"])
        for key, seen in sorted(cycles.items()):
            report.check(
                len(seen) == 1,
                f"cell {key} resolved to differing cycles {sorted(seen)}",
            )

        # Bit-identity: the reference client's payloads equal serial
        # in-process runs of the same specs.
        reference = {
            e["index"]: e
            for e in streams[0]
            if e["kind"] == "cell" and "result_b64" in e
        }
        report.check(
            len(reference) == len(specs),
            f"reference client carried {len(reference)} payloads "
            f"(wanted {len(specs)})",
        )
        for index, spec in enumerate(specs):
            if index not in reference:
                continue
            served = decode_result(reference[index])
            local = await asyncio.get_running_loop().run_in_executor(
                None, run_cell, spec
            )
            report.check(
                dataclasses.asdict(served) == dataclasses.asdict(local),
                f"cell {index} served result differs from serial run_cell",
            )

        # The storm left the store warm: a fresh sweep is all hits.
        warm_events = await async_sweep(server.host, server.port, payload)
        warm_cells = [e for e in warm_events if e["kind"] == "cell"]
        report.warm_sweep_cached = sum(c["cached"] for c in warm_cells)
        report.check(
            report.warm_sweep_cached == len(specs),
            f"follow-up sweep hit the store on "
            f"{report.warm_sweep_cached}/{len(specs)} cells",
        )
    finally:
        await server.close()
    return report


# ----------------------------------------------------------------------
# Cluster smoke (``--nodes N``): real processes, forwarding, kill -9.

def _write_artifacts(
    directory, streams: list[list[dict]], extras: dict[str, object]
) -> None:
    """NDJSON client streams plus named JSON blobs, for CI upload."""
    import json
    from pathlib import Path

    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for index, events in enumerate(streams):
        lines = "".join(
            json.dumps(event, sort_keys=True) + "\n" for event in events
        )
        (root / f"client{index:03d}.ndjson").write_text(lines)
    for name, blob in extras.items():
        (root / f"{name}.json").write_text(
            json.dumps(blob, indent=2, sort_keys=True, default=str) + "\n"
        )


def run_cluster_smoke(args) -> SmokeReport:
    """Boot ``args.nodes`` real server processes and prove the cluster
    contract end to end:

    * the whole storm hits node 0, so every cell node 0 does not own
      must travel the forwarding path -- and still come back
      bit-identical to a serial in-process run;
    * the aggregate cluster simulated the grid once-ish (dedupe works
      across forwarding);
    * a persistent job survives SIGKILL of its node mid-drain: after
      restart it completes with zero lost and zero duplicated cells,
      and every finished cell's content address matches one computed
      locally -- the bit-identity invariant, queue edition.
    """
    import asyncio
    import time

    from repro.serve.client import (
        async_sweep,
        decode_result,
        job_results,
        job_status,
        split_server_url,
        submit_job,
    )
    from repro.serve.cluster import LocalCluster
    from repro.serve.loadgen import hermetic_env
    from repro.serve.service import expand_sweep, spec_to_dict
    from repro.serve.store import ContentStore
    from repro.sim.parallel import run_cell

    env, engine = hermetic_env(getattr(args, "engine", None))
    os.environ.update(env)  # the serial oracle must run the same kernel

    report = SmokeReport(
        clients=args.clients, nodes=args.nodes, engine_backend=engine
    )
    payload = {
        "workloads": args.workload,
        "mechanisms": args.mechanism,
        "user_insts": args.insts,
        "warmup_insts": args.warmup,
        "max_cycles": 2_000_000,
        "include_results": False,
    }
    specs, _ = expand_sweep(payload)
    report.grid_cells = len(specs)
    streams: list[list[dict]] = []
    job_trace: dict[str, object] = {}

    cluster = LocalCluster(
        root=args.cache_dir, nodes=args.nodes, pools=1, workers=1, env=env
    )
    try:
        with cluster:
            target = cluster.nodes[0].url
            host, port = split_server_url(target)

            async def storm() -> list[list[dict]]:
                return await asyncio.gather(
                    *(
                        async_sweep(
                            host, port, {**payload, "include_results": i == 0}
                        )
                        for i in range(args.clients)
                    )
                )

            streams = asyncio.run(storm())
            for i, events in enumerate(streams):
                cells = [e for e in events if e["kind"] == "cell"]
                report.check(
                    len(cells) == len(specs),
                    f"client {i} saw {len(cells)} cells "
                    f"(wanted {len(specs)})",
                )
                report.deduped_total += sum(c["deduped"] for c in cells)

            stats = [s for s in cluster.stats() if s is not None]
            report.check(
                len(stats) == args.nodes, "a node died during the storm"
            )
            report.cells_requested = sum(s["cells_requested"] for s in stats)
            report.cells_simulated = sum(s["cells_simulated"] for s in stats)
            report.cache_hits = sum(s["cache"]["hits"] for s in stats)
            report.inflight_hits = sum(
                s["cache"]["inflight_hits"] for s in stats
            )
            report.cells_forwarded = sum(
                s.get("node", {}).get("forwarded", 0) for s in stats
            )
            report.forward_fallbacks = sum(
                s.get("node", {}).get("fallbacks", 0) for s in stats
            )

            # The storm all hit node 0; with 3+ nodes and 64 vnodes the
            # ring owns most of the grid elsewhere, so forwarding must
            # have carried cells (fallbacks would mean peers looked
            # dead while provably healthy).
            report.check(
                report.cells_forwarded > 0,
                "storm at a non-owner node forwarded zero cells",
            )
            report.check(
                report.forward_fallbacks == 0,
                f"{report.forward_fallbacks} forwards fell back to "
                f"local execution with all peers healthy",
            )
            # Dedupe held across the cluster: the grid simulated
            # once-ish, nowhere near clients x cells.
            report.check(
                len(specs)
                <= report.cells_simulated
                < args.clients * len(specs),
                f"cluster simulated {report.cells_simulated} cells for "
                f"a {len(specs)}-cell grid under {args.clients} clients",
            )

            # Bit-identity across the forwarding path: the reference
            # client's payloads equal serial in-process runs.
            reference = {
                e["index"]: e
                for e in streams[0]
                if e["kind"] == "cell" and "result_b64" in e
            }
            report.check(
                len(reference) == len(specs),
                f"reference client carried {len(reference)} payloads "
                f"(wanted {len(specs)})",
            )
            for index, spec in enumerate(specs):
                if index not in reference:
                    continue
                served = decode_result(reference[index])
                report.check(
                    dataclasses.asdict(served)
                    == dataclasses.asdict(run_cell(spec)),
                    f"cell {index} served result differs from serial "
                    f"run_cell",
                )

            # ----------------------------------------------------------
            # Persistent job + kill -9: fresh cells (new run lengths ->
            # new content addresses) so the drain does real work.
            job_specs = [
                dataclasses.replace(
                    spec, user_insts=spec.user_insts + 101 + 13 * i
                )
                for i in range(3)
                for spec in specs
            ]
            submitted = submit_job(
                target,
                {
                    "cells": [spec_to_dict(s) for s in job_specs],
                    "include_results": False,
                },
            )
            job_id = submitted["job_id"]
            report.job_cells = submitted["cells"]
            job_trace["submitted"] = submitted

            status: dict | None = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                status = job_status(target, job_id)
                report.job_done_before_kill = status["done"]
                if status["done"] >= 2 or status["complete"]:
                    break
                time.sleep(0.02)
            job_trace["at_kill"] = status

            cluster.kill(0)
            report.check(
                not cluster.nodes[0].alive(), "node 0 survived SIGKILL"
            )
            cluster.restart(0)

            status = None
            deadline = time.monotonic() + 240
            while time.monotonic() < deadline:
                status = job_status(target, job_id)
                if status["complete"]:
                    break
                time.sleep(0.1)
            job_trace["final"] = status
            report.check(
                bool(status and status["complete"]),
                f"job never completed after restart: {status}",
            )
            if status:
                report.job_done = status["done"]
                report.job_duplicate_done = status["duplicate_done"]
                report.check(
                    status["done"] == len(job_specs),
                    f"job lost cells: {status['done']} done of "
                    f"{len(job_specs)}",
                )
                report.check(
                    status["duplicate_done"] == 0,
                    f"job journalled {status['duplicate_done']} "
                    f"duplicate completions",
                )

            # Zero lost, zero duplicated, and every key is the content
            # address this process computes for the same spec.
            lines = job_results(target, job_id, include_results=False)
            job_trace["results"] = lines
            served_keys = {
                line["index"]: line["key"]
                for line in lines
                if line.get("kind") == "cell"
            }
            oracle = ContentStore(
                directory=os.path.join(args.cache_dir, "oracle")
            )
            for index, spec in enumerate(job_specs):
                report.check(
                    served_keys.get(index) == oracle.key(spec),
                    f"job cell {index} finished under key "
                    f"{served_keys.get(index)!r}, expected the locally "
                    f"computed content address",
                )
            job_trace["final_stats"] = cluster.stats()
    finally:
        if args.artifacts:
            _write_artifacts(
                args.artifacts,
                streams,
                {
                    "job": job_trace,
                    "report": dataclasses.asdict(report),
                },
            )
    return report
