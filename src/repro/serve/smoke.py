"""The service smoke check: N concurrent clients, one overlapping grid.

This is the executable form of the service's contract (run in CI as
``python -m repro.serve smoke``):

* **in-flight dedupe** -- every client submits the same grid at once,
  so the number of cells actually simulated must be the unique grid
  size, strictly below the number requested;
* **store effectiveness** -- the follow-up sweep after the storm is
  served entirely from the store, and ``/stats`` reports the hits;
* **consistency** -- every client sees identical cycles for identical
  cells;
* **bit-identity** -- results reconstructed from the service's pickled
  payload equal running the same cells serially in-process
  (:func:`~repro.sim.parallel.run_cell`), the same oracle the parallel
  runner's determinism tests use.

Everything runs in one process (server on the loop, simulations in its
worker pools), so the check needs no orchestration beyond asyncio.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass
class SmokeReport:
    """What the smoke run saw (JSON-printed by the CLI)."""

    clients: int = 0
    grid_cells: int = 0
    cells_requested: int = 0
    cells_simulated: int = 0
    deduped_total: int = 0
    cache_hits: int = 0
    inflight_hits: int = 0
    warm_sweep_cached: int = 0
    failures: list[str] = field(default_factory=list)

    def check(self, ok: bool, message: str) -> None:
        if not ok:
            self.failures.append(message)


async def run_smoke(args) -> SmokeReport:
    """Start a server, fire ``args.clients`` concurrent sweeps, assert
    the dedupe/caching/consistency contract, and return the report."""
    import asyncio

    from repro.serve.cli import _build_server
    from repro.serve.client import async_sweep, decode_result
    from repro.sim.parallel import run_cell
    from repro.serve.service import expand_sweep

    report = SmokeReport(clients=args.clients)
    payload = {
        "workloads": args.workload,
        "mechanisms": args.mechanism,
        "user_insts": args.insts,
        "warmup_insts": args.warmup,
        "max_cycles": 2_000_000,
        "include_results": False,
    }
    specs, _ = expand_sweep(payload)
    report.grid_cells = len(specs)

    args.port = 0  # always ephemeral: the smoke must not collide
    server = _build_server(args)
    await server.start()
    try:
        # One reference client carries full payloads for the
        # bit-identity check; the other clients are metric-only.
        storm = [
            async_sweep(
                server.host,
                server.port,
                {**payload, "include_results": i == 0},
            )
            for i in range(args.clients)
        ]
        streams = await asyncio.gather(*storm)

        stats = server.service.stats_dict()
        report.cells_requested = stats["cells_requested"]
        report.cells_simulated = stats["cells_simulated"]
        report.cache_hits = stats["cache"]["hits"]
        report.inflight_hits = stats["cache"]["inflight_hits"]

        # Every client finished its whole grid and said so.
        for i, events in enumerate(streams):
            cells = [e for e in events if e["kind"] == "cell"]
            summaries = [e for e in events if e["kind"] == "summary"]
            report.check(
                len(cells) == len(specs) and len(summaries) == 1,
                f"client {i} saw {len(cells)} cells / "
                f"{len(summaries)} summaries (wanted {len(specs)}/1)",
            )
            report.deduped_total += sum(c["deduped"] for c in cells)

        # Dedupe collapsed the storm: the grid was simulated once-ish,
        # far below clients x cells.
        report.check(
            report.cells_simulated < report.cells_requested,
            f"no dedupe: simulated {report.cells_simulated} of "
            f"{report.cells_requested} requested",
        )
        report.check(
            report.cells_simulated >= len(specs),
            f"only {report.cells_simulated} cells simulated for a "
            f"{len(specs)}-cell grid",
        )
        report.check(
            report.cache_hits + report.inflight_hits > 0,
            "store reported neither cache hits nor in-flight dedupes",
        )

        # Identical cells resolved to identical cycles for every client.
        cycles: dict[tuple, set[int]] = {}
        for events in streams:
            for event in events:
                if event["kind"] != "cell":
                    continue
                key = (str(event["workload"]), event["mechanism"])
                cycles.setdefault(key, set()).add(event["cycles"])
        for key, seen in sorted(cycles.items()):
            report.check(
                len(seen) == 1,
                f"cell {key} resolved to differing cycles {sorted(seen)}",
            )

        # Bit-identity: the reference client's payloads equal serial
        # in-process runs of the same specs.
        reference = {
            e["index"]: e
            for e in streams[0]
            if e["kind"] == "cell" and "result_b64" in e
        }
        report.check(
            len(reference) == len(specs),
            f"reference client carried {len(reference)} payloads "
            f"(wanted {len(specs)})",
        )
        for index, spec in enumerate(specs):
            if index not in reference:
                continue
            served = decode_result(reference[index])
            local = await asyncio.get_running_loop().run_in_executor(
                None, run_cell, spec
            )
            report.check(
                dataclasses.asdict(served) == dataclasses.asdict(local),
                f"cell {index} served result differs from serial run_cell",
            )

        # The storm left the store warm: a fresh sweep is all hits.
        warm_events = await async_sweep(server.host, server.port, payload)
        warm_cells = [e for e in warm_events if e["kind"] == "cell"]
        report.warm_sweep_cached = sum(c["cached"] for c in warm_cells)
        report.check(
            report.warm_sweep_cached == len(specs),
            f"follow-up sweep hit the store on "
            f"{report.warm_sweep_cached}/{len(specs)} cells",
        )
    finally:
        await server.close()
    return report
