"""``repro-serve`` / ``python -m repro.serve``: the sweep service CLI.

Subcommands:

``serve``
    Run the HTTP sweep service in the foreground until interrupted.
``sweep``
    Submit one sweep (grid flags or a JSON spec file) to a running
    server and print its NDJSON stream.
``stats``
    Print a running server's ``/stats``.
``smoke``
    Self-contained load check (the CI job): start an in-process server
    on an ephemeral port, fire N concurrent clients over one
    overlapping grid, and assert the service contract -- in-flight
    dedupe collapsed the grid (simulated < requested), the store
    reports hits, every client saw identical cycles, a follow-up sweep
    is served entirely warm, and payload results are bit-identical to
    running the cells serially in-process.  With ``--nodes N`` the
    smoke instead boots a real N-process cluster and additionally
    proves peer forwarding, warm handoff, and the job queue's kill -9
    resume contract (zero lost, zero duplicated cells).
``loadgen``
    Boot a local multi-process cluster and benchmark it: cells/sec,
    dedupe ratio, store hit-rate, p50/p99 sweep latency.  With
    ``--baseline BENCH_serve.json --max-drop 0.2`` it fails on
    regression (the nightly ``loadgen-bench`` CI job).

Ops knobs (``REPRO_SERVE_*``) are documented in ``docs/SERVICE.md``;
flags override the environment.  ``--engine`` pins ``REPRO_ENGINE``
for the server *and its pool workers* -- without it the backend is
inherited from the caller's environment (see "Hermetic smoke runs" in
docs/SERVICE.md for why smoke/loadgen resolve it explicitly).
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import os
import sys
import tempfile


def _add_server_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8712,
        help="TCP port (0 picks an ephemeral one)",
    )
    parser.add_argument(
        "--pools", type=int, default=None, metavar="N",
        help="worker-pool shards (default REPRO_SERVE_POOLS or 1; "
        "0 runs cells inline on threads)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="processes per pool (default REPRO_SERVE_WORKERS or "
        "cpu_count/pools)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content store location (default REPRO_CACHE_DIR or "
        "~/.cache/repro-sim)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=None, metavar="N",
        help="LRU-evict above N cached cells (default "
        "REPRO_SERVE_CACHE_ENTRIES; 0 = unlimited)",
    )
    parser.add_argument(
        "--cache-mb", type=int, default=None, metavar="MB",
        help="LRU-evict above MB of pickles (default "
        "REPRO_SERVE_CACHE_MB; 0 = unlimited)",
    )
    parser.add_argument(
        "--engine", default=None, metavar="BACKEND",
        help="pin the engine backend (sets REPRO_ENGINE for this "
        "process and its pool workers; default: inherit environment)",
    )


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--node-url", default=None, metavar="URL",
        help="this node's advertised URL; enables cluster mode when "
        "--peer is also given",
    )
    parser.add_argument(
        "--peer", action="append", default=[], metavar="URL",
        help="a peer node's URL (repeatable); with --node-url, cells "
        "are routed to their consistent-hash owner",
    )
    parser.add_argument(
        "--jobs-dir", default=None, metavar="DIR",
        help="persistent job-queue directory (enables POST /jobs; "
        "jobs resume after a crash)",
    )
    parser.add_argument(
        "--handoff", action="store_true",
        help="on start, pull store entries this node now owns from "
        "its peers (warm handoff after join/restart)",
    )


def _apply_engine(engine: str | None) -> None:
    """Pin REPRO_ENGINE process-wide *before* any pool spawns, so the
    workers inherit the same backend the server resolves with."""
    if engine:
        os.environ["REPRO_ENGINE"] = engine


def _build_server(args: argparse.Namespace):
    from repro.serve.http import SweepHTTPServer
    from repro.serve.queue import JobQueue
    from repro.serve.service import SweepService
    from repro.serve.store import ContentStore

    _apply_engine(getattr(args, "engine", None))
    store = ContentStore(
        directory=args.cache_dir,
        max_entries=args.cache_entries,
        max_bytes=None if args.cache_mb is None else args.cache_mb * 1024 * 1024,
    )
    jobs_dir = getattr(args, "jobs_dir", None)
    service = SweepService(
        store=store,
        pools=args.pools,
        workers=args.workers,
        node_id=getattr(args, "node_url", None),
        peers=tuple(getattr(args, "peer", []) or []),
        queue=JobQueue(jobs_dir) if jobs_dir else None,
        handoff=getattr(args, "handoff", False),
    )
    return SweepHTTPServer(service, host=args.host, port=args.port)


def _cmd_serve(args: argparse.Namespace) -> int:
    async def main() -> int:
        server = _build_server(args)
        await server.start()
        cluster = (
            f", peers={len(server.service.peers)}"
            if server.service.peers
            else ""
        )
        print(
            f"repro-serve: listening on http://{server.host}:{server.port} "
            f"(pools={server.service.pools}, workers={server.service.workers}, "
            f"store={server.service.store.directory}{cluster})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down")
        return 0


def _sweep_payload(args: argparse.Namespace) -> dict:
    if args.spec:
        with open(args.spec) as fh:
            return json.load(fh)
    return {
        "workloads": args.workload,
        "mechanisms": args.mechanism,
        "user_insts": args.insts,
        "warmup_insts": args.warmup,
        "warm": args.warm,
        "include_results": False,
    }


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeError, SweepClient

    try:
        for event in SweepClient(args.server).sweep(_sweep_payload(args)):
            print(json.dumps(event, sort_keys=True), flush=True)
    except ServeError as exc:
        print(f"repro-serve sweep: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeError, SweepClient

    try:
        print(json.dumps(SweepClient(args.server).stats(), indent=2))
    except ServeError as exc:
        print(f"repro-serve stats: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.serve.smoke import run_cluster_smoke, run_smoke

    if args.cache_dir is None:
        args.cache_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    if args.nodes > 1:
        report = run_cluster_smoke(args)
    else:
        report = asyncio.run(run_smoke(args))
    print(json.dumps(dataclasses.asdict(report), indent=2, sort_keys=True))
    if report.failures:
        for failure in report.failures:
            print(f"repro-serve smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"repro-serve smoke: OK ({report.clients} clients, "
        f"{report.cells_requested} cells requested, "
        f"{report.cells_simulated} simulated)"
    )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import main as loadgen_main

    if args.cluster_dir is None:
        args.cluster_dir = tempfile.mkdtemp(prefix="repro-serve-loadgen-")
    return loadgen_main(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Sharded sweep service over the content-addressed "
        "result store (docs/SERVICE.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP service")
    _add_server_args(serve)
    _add_cluster_args(serve)
    serve.set_defaults(func=_cmd_serve)

    sweep = sub.add_parser("sweep", help="submit one sweep to a server")
    sweep.add_argument("--server", required=True, metavar="URL")
    sweep.add_argument("--spec", metavar="FILE", help="JSON sweep spec")
    sweep.add_argument(
        "--workload", action="append", default=None,
        help="grid workload (repeatable; default compress)",
    )
    sweep.add_argument(
        "--mechanism", action="append", default=None,
        help="grid mechanism (repeatable; default multithreaded)",
    )
    sweep.add_argument("--insts", type=int, default=12_000)
    sweep.add_argument("--warmup", type=int, default=3_000)
    sweep.add_argument(
        "--warm", action="store_true",
        help="share warm checkpoints across the grid's workload families",
    )
    sweep.set_defaults(func=_cmd_sweep)

    stats = sub.add_parser("stats", help="print a server's /stats")
    stats.add_argument("--server", required=True, metavar="URL")
    stats.set_defaults(func=_cmd_stats)

    smoke = sub.add_parser(
        "smoke", help="self-contained concurrency/dedupe check (CI)"
    )
    _add_server_args(smoke)
    smoke.add_argument(
        "--clients", type=int, default=100,
        help="concurrent sweep clients to fire (default 100)",
    )
    smoke.add_argument(
        "--workload", action="append", default=None,
        help="grid workload (repeatable; default compress+murphi)",
    )
    smoke.add_argument(
        "--mechanism", action="append", default=None,
        help="grid mechanism (repeatable; default "
        "traditional+multithreaded)",
    )
    smoke.add_argument("--insts", type=int, default=500)
    smoke.add_argument("--warmup", type=int, default=120)
    smoke.add_argument(
        "--nodes", type=int, default=1,
        help="cluster smoke: boot N real server processes and also "
        "assert forwarding, handoff, and kill -9 job resume (default "
        "1 = in-process smoke)",
    )
    smoke.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="write NDJSON streams and node stats here (CI uploads "
        "them on failure)",
    )
    smoke.set_defaults(func=_cmd_smoke)

    loadgen = sub.add_parser(
        "loadgen", help="benchmark a local cluster (cells/sec, latency)"
    )
    loadgen.add_argument(
        "--nodes", type=int, default=3, help="cluster size (default 3)"
    )
    loadgen.add_argument(
        "--clients", type=int, default=32,
        help="concurrent sweep clients (default 32)",
    )
    loadgen.add_argument(
        "--reps", type=int, default=4,
        help="sweeps per client (default 4; later reps measure the "
        "warm path)",
    )
    loadgen.add_argument(
        "--workers", type=int, default=1,
        help="simulator processes per node (default 1)",
    )
    loadgen.add_argument(
        "--workload", action="append", default=None,
        help="grid workload (repeatable; default compress+murphi)",
    )
    loadgen.add_argument(
        "--mechanism", action="append", default=None,
        help="grid mechanism (repeatable; default "
        "traditional+multithreaded)",
    )
    loadgen.add_argument("--insts", type=int, default=500)
    loadgen.add_argument("--warmup", type=int, default=120)
    loadgen.add_argument(
        "--engine", default=None, metavar="BACKEND",
        help="pin the engine backend for every node (default: inherit "
        "REPRO_ENGINE, else reference)",
    )
    loadgen.add_argument(
        "--cluster-dir", default=None, metavar="DIR",
        help="cluster scratch root (default: fresh temp dir)",
    )
    loadgen.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the JSON report here (e.g. BENCH_serve.json)",
    )
    loadgen.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="committed baseline report to gate against",
    )
    loadgen.add_argument(
        "--max-drop", type=float, default=0.2,
        help="max tolerated cells/sec drop vs baseline (default 0.2)",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    args = parser.parse_args(argv)
    if getattr(args, "workload", None) is not None and not args.workload:
        args.workload = None
    if args.command == "sweep":
        args.workload = args.workload or ["compress"]
        args.mechanism = args.mechanism or ["multithreaded"]
    if args.command in ("smoke", "loadgen"):
        args.workload = args.workload or ["compress", "murphi"]
        args.mechanism = args.mechanism or ["traditional", "multithreaded"]
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
