"""Asyncio HTTP/1.1 front end for the sweep service (stdlib only).

A deliberately small server -- request line, headers, Content-Length
body -- because its job is narrow: accept sweep specs as JSON, stream
newline-delimited JSON back, and expose counters.  Routes:

``POST /sweep``
    Body: a sweep spec (see :func:`repro.serve.service.expand_sweep`).
    Response: ``application/x-ndjson``, chunked -- one ``cell`` line per
    resolved cell *as it completes* (ragged order, ``index`` gives the
    spec position), then one ``summary`` line.  Cell lines carry
    headline metrics plus, unless the request set
    ``"include_results": false``, the full pickled
    :class:`~repro.sim.simulator.SimResult` (base64) so clients
    reconstruct bit-identical results.
``GET /stats``
    Service + store counters as JSON (hits/misses/evictions/in-flight
    dedupes, pool shape, uptime).
``GET /healthz``
    Liveness probe.

Malformed specs get a 400 with a JSON error body; an internal failure
mid-stream becomes a terminal ``{"kind": "error"}`` line (the status
line has already been sent).  One connection handles one request
(``Connection: close``), which keeps the protocol state machine
trivial -- concurrency comes from asyncio, not keep-alive.
"""

from __future__ import annotations

import asyncio
import base64
import json
import pickle

from repro.serve.service import (
    CellOutcome,
    SweepRequestError,
    SweepService,
    expand_sweep,
    summarize,
)

#: Largest accepted request body (sweep specs are small; 8 MiB leaves
#: room for huge explicit cell lists without inviting memory abuse).
MAX_BODY = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def cell_line(
    index: int, outcome: CellOutcome, include_results: bool
) -> dict:
    """The NDJSON line for one resolved cell."""
    line = {
        "kind": "cell",
        "index": index,
        "key": outcome.key,
        "workload": list(outcome.spec.workload)
        if isinstance(outcome.spec.workload, tuple)
        else outcome.spec.workload,
        "mechanism": outcome.spec.config.mechanism,
        "cycles": outcome.result.cycles,
        "retired_user": outcome.result.retired_user,
        "committed_fills": outcome.result.committed_fills,
        "ipc": round(outcome.result.ipc, 6),
        "cached": outcome.cached,
        "deduped": outcome.deduped,
    }
    if include_results:
        line["result_b64"] = base64.b64encode(
            pickle.dumps(outcome.result)
        ).decode("ascii")
    return line


class SweepHTTPServer:
    """Bind a :class:`SweepService` to a TCP port."""

    def __init__(
        self,
        service: SweepService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else SweepService()
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()

    # -- one connection, one request ------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
            except _HTTPError as exc:
                await self._respond_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            if target == "/healthz" and method == "GET":
                await self._respond_json(writer, 200, {"ok": True})
            elif target == "/stats" and method == "GET":
                await self._respond_json(
                    writer, 200, self.service.stats_dict()
                )
            elif target == "/sweep":
                if method != "POST":
                    await self._respond_json(
                        writer, 405, {"error": "POST /sweep"}
                    )
                else:
                    await self._handle_sweep(writer, body)
            else:
                await self._respond_json(
                    writer, 404, {"error": f"no route {method} {target}"}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-stream; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _HTTPError(400, "request line too long") from None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HTTPError(400, "malformed request line")
        method, target, _version = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HTTPError(400, "bad Content-Length") from None
        if content_length > MAX_BODY:
            raise _HTTPError(413, f"body over {MAX_BODY} bytes")
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, target, body

    async def _handle_sweep(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond_json(
                writer, 400, {"error": f"body is not JSON: {exc}"}
            )
            return
        try:
            specs, options = expand_sweep(payload)
        except SweepRequestError as exc:
            await self._respond_json(writer, 400, {"error": str(exc)})
            return

        await self._send_headers(
            writer,
            200,
            {
                "Content-Type": "application/x-ndjson",
                "Transfer-Encoding": "chunked",
            },
        )
        outcomes: list[CellOutcome | None] = [None] * len(specs)
        try:
            async for index, outcome in self.service.stream_cells(
                specs, warm=options["warm"]
            ):
                outcomes[index] = outcome
                await self._send_chunk(
                    writer,
                    cell_line(index, outcome, options["include_results"]),
                )
            await self._send_chunk(
                writer, summarize([o for o in outcomes if o is not None])
            )
        except Exception as exc:  # noqa: BLE001 - stream must terminate
            await self._send_chunk(
                writer,
                {"kind": "error", "error": f"{type(exc).__name__}: {exc}"},
            )
        await self._end_chunks(writer)

    # -- wire helpers ----------------------------------------------------
    @staticmethod
    async def _send_headers(
        writer: asyncio.StreamWriter, status: int, headers: dict[str, str]
    ) -> None:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    @staticmethod
    async def _send_chunk(writer: asyncio.StreamWriter, obj: dict) -> None:
        data = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        writer.write(data)
        writer.write(b"\r\n")
        await writer.drain()

    @staticmethod
    async def _end_chunks(writer: asyncio.StreamWriter) -> None:
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, obj: dict
    ) -> None:
        data = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
        await self._send_headers(
            writer,
            status,
            {
                "Content-Type": "application/json",
                "Content-Length": str(len(data)),
            },
        )
        writer.write(data)
        await writer.drain()


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
